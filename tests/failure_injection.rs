//! Failure injection: the parameter server must degrade gracefully when
//! its worker disappears mid-run — no panics, no lost updates for
//! gradients that did arrive, clean shutdown of the serving loop.

use el_rec::data::{DatasetSpec, SyntheticDataset};
use el_rec::dlrm::embedding_bag::{EmbeddingBag, SparseGrad};
use el_rec::pipeline::server::{
    make_queues, GradientPush, HostServer, ServingLoop, ServingSchedule,
};
use rand::SeedableRng;

fn dataset() -> SyntheticDataset {
    SyntheticDataset::new(DatasetSpec::toy(2, 100, 1_000_000), 31)
}

fn server() -> HostServer {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let tables = vec![
        (0usize, EmbeddingBag::new(100, 8, 0.2, &mut rng)),
        (1usize, EmbeddingBag::new(100, 8, 0.2, &mut rng)),
    ];
    HostServer::new(tables, 0.1)
}

fn serving(count: u64, pipelined: bool) -> ServingLoop {
    let schedule = ServingSchedule { first: 0, count, batch_size: 16, pipelined };
    ServingLoop::new(server(), schedule).expect("dense-mode server serves any schedule")
}

fn unit_push(pf: &el_rec::pipeline::server::PrefetchedBatch) -> GradientPush {
    let tables = pf
        .tables
        .iter()
        .map(|(t, unique, rows)| {
            (
                *t,
                SparseGrad {
                    indices: unique.clone(),
                    values: vec![1.0; rows.len()],
                    dim: rows.cols(),
                },
            )
        })
        .collect();
    GradientPush { batch_seq: pf.batch_seq, tables, pooled: vec![] }
}

#[test]
fn worker_vanishing_mid_run_stops_the_server_cleanly() {
    let ds = dataset();
    let (ptx, prx, gtx, grx) = make_queues(2);
    let handle = std::thread::spawn({
        let ds = ds.clone();
        move || serving(100, true).run(&ds, ptx, grx)
    });

    // the "worker" processes three batches, then dies without warning
    for _ in 0..3 {
        let pf = prx.recv().unwrap();
        gtx.send(unit_push(&pf)).unwrap();
    }
    drop(prx);
    drop(gtx);

    let report = handle.join().expect("server must not panic when the worker dies");
    assert!(
        report.server.applied >= 3,
        "updates that arrived must be applied: {}",
        report.server.applied
    );
    assert!(report.server.applied < 100, "the run cannot have completed");
}

#[test]
fn worker_that_never_pushes_gradients_does_not_wedge_the_server() {
    let ds = dataset();
    let (ptx, prx, gtx, grx) = make_queues(1);
    let handle = std::thread::spawn({
        let ds = ds.clone();
        move || serving(10, false).run(&ds, ptx, grx) // sequential: blocks on grads
    });
    // consume one prefetch, never push, then hang up
    let _ = prx.recv().unwrap();
    drop(prx);
    drop(gtx);
    let report = handle.join().expect("server must unblock when channels close");
    assert_eq!(report.server.applied, 0);
}

#[test]
fn server_tail_drain_applies_late_gradients() {
    // the worker is slower than the server: pushes arrive after the server
    // finished prefetching everything.
    let ds = dataset();
    let (ptx, prx, gtx, grx) = make_queues(4);
    let handle = std::thread::spawn({
        let ds = ds.clone();
        move || serving(5, true).run(&ds, ptx, grx)
    });
    let prefetched: Vec<_> = (0..5).map(|_| prx.recv().unwrap()).collect();
    // server has now sent everything and is waiting in the drain loop
    for pf in &prefetched {
        gtx.send(unit_push(pf)).unwrap();
    }
    drop(gtx);
    let report = handle.join().unwrap();
    assert_eq!(report.server.applied, 5, "tail drain must apply every late push");
}

#[test]
fn bounded_prefetch_queue_applies_backpressure() {
    // with depth 1 and a worker that never consumes, the server must stall
    // after ~2 batches (1 in the channel + 1 in flight), not run ahead.
    let ds = dataset();
    let (ptx, prx, gtx, grx) = make_queues(1);
    let handle = std::thread::spawn({
        let ds = ds.clone();
        move || serving(50, true).run(&ds, ptx, grx)
    });
    std::thread::sleep(std::time::Duration::from_millis(200));
    // nothing consumed: the channel holds exactly its capacity
    let first = prx.try_recv().expect("one batch must be queued");
    assert_eq!(first.batch_seq, 0);
    drop(prx);
    drop(gtx);
    let report = handle.join().unwrap();
    assert!(
        report.server.applied <= 2,
        "server ran ahead of the bounded queue: applied {}",
        report.server.applied
    );
    let _ = first;
}

// ---------------------------------------------------------------------------
// Simulator-based failure injection: the cases below drive the same
// HostServer/EmbeddingCache protocol through the deterministic
// discrete-event simulator (`el_rec::sim`), where faults are expressed as
// replayable FaultPlans instead of racing real threads against sleeps.
// ---------------------------------------------------------------------------

use el_rec::sim::{
    check_run, run as sim_run, sequential_prefix, Fault, FaultPlan, Outcome, SimConfig, TraceEvent,
};

#[test]
fn worker_death_mid_epoch_replays_byte_identical() {
    // the acceptance criterion: a seeded plan that kills the worker
    // mid-epoch must replay to byte-identical final embedding tables.
    let cfg = SimConfig::default();
    let plan = FaultPlan::with(vec![Fault::WorkerDeath { at_batch: cfg.num_batches / 2 }]);
    let a = sim_run(&cfg, &plan, 0xD1E);
    let b = sim_run(&cfg, &plan, 0xD1E);
    assert_eq!(a.outcome, Outcome::Stalled);
    assert_eq!(a.applied, cfg.num_batches / 2, "everything before the death must be applied");
    assert_eq!(a.table_digest, b.table_digest, "replay must reproduce the digest");
    for ((ta, bag_a), (tb, bag_b)) in a.tables.iter().zip(&b.tables) {
        assert_eq!(ta, tb);
        let bytes_a: Vec<u32> = bag_a.weight.as_slice().iter().map(|v| v.to_bits()).collect();
        let bytes_b: Vec<u32> = bag_b.weight.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bytes_a, bytes_b, "table {ta} diverged between replays");
    }
    assert_eq!(a.trace, b.trace, "the full event history must replay identically");
}

#[test]
fn server_death_mid_epoch_preserves_applied_prefix() {
    let cfg = SimConfig::default();
    let oracle = sequential_prefix(&cfg);
    let plan = FaultPlan::with(vec![Fault::ServerDeath { after_applied: 7 }]);
    let report = check_run(&cfg, &plan, 21, &oracle).expect("invariants must survive the death");
    assert_eq!(report.outcome, Outcome::Stalled);
    assert_eq!(report.applied, 7);
    assert!(report.trace.any(|e| matches!(e, TraceEvent::ServerDied { applied: 7 })));
    // the worker notices via retry exhaustion and halts instead of spinning
    assert!(report.trace.any(|e| matches!(e, TraceEvent::GaveUp { .. })));
    // what was applied is exactly the sequential prefix
    assert_eq!(report.table_digest, oracle.prefix_digests[7]);
}

#[test]
fn gradient_queue_saturation_is_ridden_out_by_retries() {
    let cfg = SimConfig::default();
    let oracle = sequential_prefix(&cfg);
    let plan = FaultPlan::with(vec![
        Fault::GradQueueSaturation { start: 8, ticks: 50 },
        Fault::DropPush { seq: 0, delivery: 1 },
    ]);
    let report = check_run(&cfg, &plan, 4, &oracle).expect("saturation must not break invariants");
    assert_eq!(report.outcome, Outcome::Completed, "retries must outlast the window");
    assert!(
        report.trace.any(|e| matches!(e, TraceEvent::PushBounced { .. })),
        "the window must actually bounce deliveries"
    );
    // every batch still applied exactly once, in order
    let applied = report.trace.count(|e| matches!(e, TraceEvent::Applied { .. }));
    assert_eq!(applied as u64, cfg.num_batches);
}
