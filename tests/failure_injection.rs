//! Failure injection: the parameter server must degrade gracefully when
//! its worker disappears mid-run — no panics, no lost updates for
//! gradients that did arrive, clean shutdown of the serving loop.

use el_rec::data::{DatasetSpec, SyntheticDataset};
use el_rec::dlrm::embedding_bag::{EmbeddingBag, SparseGrad};
use el_rec::pipeline::server::{make_queues, GradientPush, HostServer};
use rand::SeedableRng;

fn dataset() -> SyntheticDataset {
    SyntheticDataset::new(DatasetSpec::toy(2, 100, 1_000_000), 31)
}

fn server() -> HostServer {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let tables = vec![
        (0usize, EmbeddingBag::new(100, 8, 0.2, &mut rng)),
        (1usize, EmbeddingBag::new(100, 8, 0.2, &mut rng)),
    ];
    HostServer::new(tables, 0.1)
}

fn unit_push(pf: &el_rec::pipeline::server::PrefetchedBatch) -> GradientPush {
    let tables = pf
        .tables
        .iter()
        .map(|(t, unique, rows)| {
            (
                *t,
                SparseGrad {
                    indices: unique.clone(),
                    values: vec![1.0; rows.len()],
                    dim: rows.cols(),
                },
            )
        })
        .collect();
    GradientPush { batch_seq: pf.batch_seq, tables, pooled: vec![] }
}

#[test]
fn worker_vanishing_mid_run_stops_the_server_cleanly() {
    let ds = dataset();
    let (ptx, prx, gtx, grx) = make_queues(2);
    let handle = std::thread::spawn({
        let ds = ds.clone();
        move || server().run(&ds, 0, 100, 16, ptx, grx, true)
    });

    // the "worker" processes three batches, then dies without warning
    for _ in 0..3 {
        let pf = prx.recv().unwrap();
        gtx.send(unit_push(&pf)).unwrap();
    }
    drop(prx);
    drop(gtx);

    let report = handle.join().expect("server must not panic when the worker dies");
    assert!(
        report.server.applied >= 3,
        "updates that arrived must be applied: {}",
        report.server.applied
    );
    assert!(report.server.applied < 100, "the run cannot have completed");
}

#[test]
fn worker_that_never_pushes_gradients_does_not_wedge_the_server() {
    let ds = dataset();
    let (ptx, prx, gtx, grx) = make_queues(1);
    let handle = std::thread::spawn({
        let ds = ds.clone();
        move || server().run(&ds, 0, 10, 16, ptx, grx, false) // sequential: blocks on grads
    });
    // consume one prefetch, never push, then hang up
    let _ = prx.recv().unwrap();
    drop(prx);
    drop(gtx);
    let report = handle.join().expect("server must unblock when channels close");
    assert_eq!(report.server.applied, 0);
}

#[test]
fn server_tail_drain_applies_late_gradients() {
    // the worker is slower than the server: pushes arrive after the server
    // finished prefetching everything.
    let ds = dataset();
    let (ptx, prx, gtx, grx) = make_queues(4);
    let handle = std::thread::spawn({
        let ds = ds.clone();
        move || server().run(&ds, 0, 5, 16, ptx, grx, true)
    });
    let prefetched: Vec<_> = (0..5).map(|_| prx.recv().unwrap()).collect();
    // server has now sent everything and is waiting in the drain loop
    for pf in &prefetched {
        gtx.send(unit_push(pf)).unwrap();
    }
    drop(gtx);
    let report = handle.join().unwrap();
    assert_eq!(report.server.applied, 5, "tail drain must apply every late push");
}

#[test]
fn bounded_prefetch_queue_applies_backpressure() {
    // with depth 1 and a worker that never consumes, the server must stall
    // after ~2 batches (1 in the channel + 1 in flight), not run ahead.
    let ds = dataset();
    let (ptx, prx, gtx, grx) = make_queues(1);
    let handle = std::thread::spawn({
        let ds = ds.clone();
        move || server().run(&ds, 0, 50, 16, ptx, grx, true)
    });
    std::thread::sleep(std::time::Duration::from_millis(200));
    // nothing consumed: the channel holds exactly its capacity
    let first = prx.try_recv().expect("one batch must be queued");
    assert_eq!(first.batch_seq, 0);
    drop(prx);
    drop(gtx);
    let report = handle.join().unwrap();
    assert!(
        report.server.applied <= 2,
        "server ran ahead of the bounded queue: applied {}",
        report.server.applied
    );
    let _ = first;
}
