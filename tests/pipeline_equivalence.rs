//! The paper's read-after-write guarantee (Figure 10), tested across the
//! full stack: pipelined training with pre-fetching must produce exactly
//! the parameter trajectory of sequential training, for hybrid models that
//! mix device-resident TT tables with host-resident dense tables.

use el_rec::data::{DatasetSpec, SyntheticDataset};
use el_rec::dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer};
use el_rec::pipeline::server::{HostServer, ServerMode};
use el_rec::pipeline::trainer::{PipelineConfig, PipelineReport, PipelineTrainer};
use rand::SeedableRng;

fn dataset() -> SyntheticDataset {
    let mut spec = DatasetSpec::toy(4, 500, usize::MAX / 2);
    spec.num_dense = 4;
    SyntheticDataset::new(spec, 777)
}

/// Largest table TT on the worker, tables 1/2 hosted, table 3 dense on the
/// worker — the full Figure 9 placement.
fn setup() -> (DlrmModel, HostServer) {
    let cfg = DlrmConfig {
        num_dense: 4,
        table_cardinalities: vec![500; 4],
        dim: 8,
        bottom_hidden: vec![16],
        top_hidden: vec![16],
        tt_threshold: usize::MAX,
        tt_rank: 8,
        lr: 0.05,
        optimizer: el_dlrm::OptimizerKind::Sgd,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut model = DlrmModel::new(&cfg, &mut rng);
    // table 0 -> TT on device (deterministic kernels for bit-equality)
    let tt_cfg = el_rec::core::TtConfig::new(500, 8, 8);
    let mut tt = el_rec::core::TtEmbeddingBag::new(&tt_cfg, &mut rng);
    tt.options.deterministic = true;
    model.tables[0] = EmbeddingLayer::Tt(Box::new(tt), el_rec::core::TtWorkspace::new());

    let mut host = Vec::new();
    for t in [1usize, 2] {
        if let EmbeddingLayer::Dense(bag) =
            std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim: 8 })
        {
            host.push((t, bag));
        }
    }
    (model, HostServer::new(host, 0.05))
}

fn run(pipelined: bool, depth: usize) -> PipelineReport {
    let (model, server) = setup();
    let config = PipelineConfig {
        batch_size: 64,
        first_batch: 0,
        num_batches: 20,
        prefetch_depth: depth,
        pipelined,
        overlap_analysis: pipelined,
    };
    PipelineTrainer::train(model, server, &dataset(), &config)
}

#[test]
fn pipelined_training_is_bitwise_equal_to_sequential() {
    let seq = run(false, 1);
    for depth in [2usize, 4, 8] {
        let pipe = run(true, depth);
        assert_eq!(seq.losses, pipe.losses, "loss trajectory diverged at queue depth {depth}");
        for ((ta, a), (tb, b)) in seq.host_tables.iter().zip(&pipe.host_tables) {
            assert_eq!(ta, tb);
            assert_eq!(
                a.weight.as_slice(),
                b.weight.as_slice(),
                "host table {ta} diverged at depth {depth}"
            );
        }
    }
}

#[test]
fn deeper_queues_need_more_cache_corrections() {
    let d2 = run(true, 2);
    let d8 = run(true, 8);
    assert!(d2.stale_hits > 0, "depth 2 should already see staleness");
    assert!(
        d8.stale_hits >= d2.stale_hits,
        "deeper pipeline cannot need fewer corrections: {} vs {}",
        d8.stale_hits,
        d2.stale_hits
    );
}

#[test]
fn worker_tt_tables_also_stay_in_sync() {
    // The TT table lives on the worker, so its final cores must agree
    // between modes as well (it never crosses the queues).
    let seq = run(false, 1);
    let pipe = run(true, 4);
    let (a, b) = (&seq.model.tables[0], &pipe.model.tables[0]);
    match (a, b) {
        (EmbeddingLayer::Tt(x, _), EmbeddingLayer::Tt(y, _)) => {
            for (ca, cb) in x.cores().cores.iter().zip(&y.cores().cores) {
                assert_eq!(ca, cb, "worker TT cores diverged");
            }
        }
        _ => panic!("table 0 should be TT"),
    }
}

#[test]
fn pooled_mode_trains_the_same_model_as_unique_rows() {
    // The reference-DLRM serving mode moves different payloads but must
    // implement the same mathematics (sequentially).
    let unique = run(false, 1);

    let (model, server) = setup();
    let server = HostServer { mode: ServerMode::PooledEmbeddings, ..server };
    let config = PipelineConfig {
        batch_size: 64,
        first_batch: 0,
        num_batches: 20,
        prefetch_depth: 1,
        pipelined: false,
        overlap_analysis: false,
    };
    let pooled = PipelineTrainer::train(model, server, &dataset(), &config);

    for (a, b) in unique.losses.iter().zip(&pooled.losses) {
        assert!((a - b).abs() < 1e-5, "serving modes diverged: {a} vs {b}");
    }
    // pooled mode ships batch x dim matrices: more bytes than unique rows
    assert!(pooled.server_meter.total_bytes() > unique.server_meter.total_bytes());
}
