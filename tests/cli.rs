//! Smoke tests of the `el-rec` CLI binary: every subcommand must run end
//! to end, and train -> checkpoint -> eval must round-trip.

use std::process::Command;

fn el_rec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_el-rec"))
}

#[test]
fn help_prints_usage() {
    let out = el_rec().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("train"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = el_rec().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn stats_reports_skew() {
    let out = el_rec()
        .args(["stats", "--dataset", "toy", "--scale", "0.05", "--batch-size", "128"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("accesses"), "missing skew report: {text}");
}

#[test]
fn plan_places_every_table() {
    let out = el_rec()
        .args(["plan", "--dataset", "kaggle", "--scale", "1.0", "--dim", "64", "--device", "t4"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("summary:"));
    // 26 tables must all be listed
    assert!(text.matches("table ").count() >= 26, "{text}");
}

#[test]
fn train_checkpoint_eval_round_trip() {
    let ckpt = std::env::temp_dir().join("el_rec_cli_test.json");
    let out = el_rec()
        .args([
            "train",
            "--dataset",
            "toy",
            "--batches",
            "6",
            "--batch-size",
            "64",
            "--optimizer",
            "adagrad",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(ckpt.exists(), "checkpoint file missing");

    let out = el_rec()
        .args([
            "eval",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--dataset",
            "toy",
            "--batches",
            "2",
            "--batch-size",
            "64",
        ])
        .output()
        .expect("spawn");
    std::fs::remove_file(&ckpt).ok();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("accuracy"), "{text}");
    assert!(text.contains("auc"));
}

#[test]
fn eval_without_checkpoint_fails_with_message() {
    let out = el_rec().args(["eval"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --checkpoint"));
}
