//! Cross-crate equivalence: the Eff-TT table against the dense
//! `EmbeddingBag` reference, through the TT-SVD bridge.
//!
//! A dense table is decomposed with TT-SVD at full rank, wrapped in an
//! Eff-TT bag, and must then produce the same pooled embeddings as the
//! dense bag on arbitrary batches — the strongest statement that the
//! compressed representation and its optimized kernels compute the same
//! function.

use el_rec::core::{BackwardStrategy, ForwardStrategy, TtEmbeddingBag, TtOptions, TtWorkspace};
use el_rec::dlrm::EmbeddingBag;
use el_rec::tensor::shape::{balanced_factorization, factorize};
use el_rec::tensor::tt::TtCores;
use proptest::prelude::*;
use rand::SeedableRng;

fn build_pair(rows: usize, dim: usize, seed: u64) -> (EmbeddingBag, TtEmbeddingBag) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dense = EmbeddingBag::new(rows, dim, 0.5, &mut rng);
    let row_dims = balanced_factorization(rows, 3);
    let col_dims = factorize(dim, 3);
    // Full-rank TT-SVD: exact representation.
    let cores = TtCores::from_dense(&dense.weight, row_dims, col_dims, 512);
    let tt = TtEmbeddingBag::from_cores(cores, rows);
    (dense, tt)
}

#[test]
fn tt_svd_bridge_preserves_pooled_lookups() {
    let (dense, tt) = build_pair(48, 8, 1);
    let mut ws = TtWorkspace::new();
    let indices = [0u32, 47, 13, 13, 7, 22];
    let offsets = [0u32, 3, 3, 6];
    let want = dense.forward(&indices, &offsets);
    let got = tt.forward(&indices, &offsets, &mut ws);
    assert!(got.max_abs_diff(&want) < 1e-3, "TT-SVD bridge mismatch: {}", got.max_abs_diff(&want));
}

#[test]
fn all_kernel_variants_agree_on_the_bridge() {
    let (dense, tt) = build_pair(36, 8, 2);
    let indices = [1u32, 35, 1, 20, 20, 20];
    let offsets = [0u32, 2, 6];
    let want = dense.forward(&indices, &offsets);
    for forward in [ForwardStrategy::Naive, ForwardStrategy::Reuse] {
        let mut tt = TtEmbeddingBag::from_cores(tt.cores().clone(), 36)
            .with_options(TtOptions { forward, ..TtOptions::default() });
        let mut ws = TtWorkspace::new();
        let got = tt.forward(&indices, &offsets, &mut ws);
        assert!(got.max_abs_diff(&want) < 1e-3, "{forward:?} diverged");
        let _ = &mut tt;
    }
}

#[test]
fn gradient_updates_match_between_strategy_pairs() {
    // Same initial cores, same batches, different kernel strategies:
    // parameters must evolve identically (within float tolerance).
    let (_, reference) = build_pair(30, 8, 3);
    let indices: Vec<u32> = (0..40).map(|i| (i * 7) % 30).collect();
    let offsets: Vec<u32> = (0..=8).map(|s| s * 5).collect();

    let run = |options: TtOptions| {
        let mut tt =
            TtEmbeddingBag::from_cores(reference.cores().clone(), 30).with_options(options);
        let mut ws = TtWorkspace::new();
        for _ in 0..5 {
            let out = tt.forward(&indices, &offsets, &mut ws);
            tt.backward_sgd(&out, &mut ws, 0.02);
        }
        tt.cores().cores.clone()
    };

    let eff = run(TtOptions::default());
    let ttrec = run(TtOptions::tt_rec_baseline());
    let mixed = run(TtOptions {
        forward: ForwardStrategy::Reuse,
        backward: BackwardStrategy::PerLookup,
        fused_update: false,
        deterministic: false,
        parallel_analysis: true,
        fused_pooling: false,
    });
    for (a, b) in eff.iter().zip(&ttrec) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-3, "Eff-TT vs TT-Rec drifted: {x} vs {y}");
        }
    }
    for (a, b) in eff.iter().zip(&mixed) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-3, "mixed strategy drifted: {x} vs {y}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes, random batches: TT(full-rank SVD of dense) == dense.
    #[test]
    fn prop_bridge_equivalence(
        rows in 8usize..60,
        seed in 0u64..1000,
        lookups in proptest::collection::vec(0usize..1_000_000, 1..24),
    ) {
        let (dense, tt) = build_pair(rows, 8, seed);
        let indices: Vec<u32> = lookups.iter().map(|&l| (l % rows) as u32).collect();
        // split into two samples at an arbitrary point
        let cut = (seed as usize) % (indices.len() + 1);
        let offsets = vec![0u32, cut as u32, indices.len() as u32];
        let mut ws = TtWorkspace::new();
        let want = dense.forward(&indices, &offsets);
        let got = tt.forward(&indices, &offsets, &mut ws);
        prop_assert!(got.max_abs_diff(&want) < 5e-3,
            "mismatch {} at rows={rows}", got.max_abs_diff(&want));
    }
}
