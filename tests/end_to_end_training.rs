//! End-to-end training across the full stack: data generator -> DLRM with
//! mixed dense/TT tables -> metrics.

use el_rec::data::{DatasetSpec, MiniBatch, SyntheticDataset};
use el_rec::dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer};
use rand::SeedableRng;

fn dataset() -> SyntheticDataset {
    let mut spec = DatasetSpec::toy(4, 3000, usize::MAX / 2);
    spec.num_dense = 6;
    SyntheticDataset::new(spec, 404)
}

fn config() -> DlrmConfig {
    DlrmConfig {
        num_dense: 6,
        table_cardinalities: vec![3000; 4],
        dim: 16,
        bottom_hidden: vec![32],
        top_hidden: vec![32],
        tt_threshold: 2000, // every table compressed
        tt_rank: 16,
        lr: 0.05,
        optimizer: el_dlrm::OptimizerKind::Sgd,
    }
}

#[test]
fn tt_dlrm_learns_signal() {
    let ds = dataset();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut model = DlrmModel::new(&config(), &mut rng);

    let mut early = 0.0f32;
    let mut late = 0.0f32;
    for k in 0..80u64 {
        let loss = model.train_step(&ds.batch(k, 256));
        if k < 10 {
            early += loss / 10.0;
        }
        if k >= 70 {
            late += loss / 10.0;
        }
    }
    assert!(late < early, "training loss did not fall: {early} -> {late}");

    let eval: Vec<MiniBatch> = (9_000..9_006u64).map(|b| ds.batch(b, 256)).collect();
    let metrics = model.evaluate(&eval);
    assert!(
        metrics.auc > 0.55,
        "model failed to beat chance on held-out data: auc {}",
        metrics.auc
    );
}

#[test]
fn tt_and_dense_models_reach_similar_quality() {
    // Table IV's claim across the crate boundary: compressing the tables
    // does not meaningfully change what the model learns.
    let ds = dataset();
    let eval: Vec<MiniBatch> = (9_000..9_006u64).map(|b| ds.batch(b, 256)).collect();

    let train = |tt_threshold: usize| {
        let mut cfg = config();
        cfg.tt_threshold = tt_threshold;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut model = DlrmModel::new(&cfg, &mut rng);
        for k in 0..80u64 {
            let _ = model.train_step(&ds.batch(k, 256));
        }
        model.evaluate(&eval)
    };
    let dense = train(usize::MAX);
    let tt = train(2000);
    assert!(
        (dense.auc - tt.auc).abs() < 0.05,
        "dense auc {} vs TT auc {} diverged",
        dense.auc,
        tt.auc
    );
}

#[test]
fn deferred_gradient_training_matches_direct() {
    let ds = dataset();
    let make = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut m = DlrmModel::new(&config(), &mut rng);
        for t in &mut m.tables {
            if let EmbeddingLayer::Tt(bag, _) = t {
                bag.options.deterministic = true;
                bag.options.fused_update = false;
            }
        }
        m
    };
    let mut direct = make();
    let mut deferred = make();
    for k in 0..6u64 {
        let batch = ds.batch(k, 128);
        let l1 = direct.train_step(&batch);
        let (l2, flat) = deferred.train_step_defer(&batch);
        deferred.apply_grad_vector(&flat);
        assert!((l1 - l2).abs() < 1e-5, "step {k}: loss diverged {l1} vs {l2}");
    }
    let check = ds.batch(500, 64);
    let p1 = direct.predict(&check);
    let p2 = deferred.predict(&check);
    for (a, b) in p1.iter().zip(&p2) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }
}

#[test]
fn hosted_hybrid_training_converges() {
    // One table hosted externally; gradients flow back through the hybrid
    // step and the externally-updated embeddings keep improving the loss.
    let ds = dataset();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut cfg = config();
    cfg.tt_threshold = usize::MAX;
    let mut model = DlrmModel::new(&cfg, &mut rng);
    let host_table = 2usize;
    let mut host = match std::mem::replace(
        &mut model.tables[host_table],
        EmbeddingLayer::Hosted { dim: 16 },
    ) {
        EmbeddingLayer::Dense(bag) => bag,
        _ => unreachable!(),
    };

    let mut early = 0.0f32;
    let mut late = 0.0f32;
    for k in 0..60u64 {
        let batch = ds.batch(k, 256);
        let field = &batch.fields[host_table];
        let pooled = host.forward(&field.indices, &field.offsets);
        let out = model.train_step_hybrid(&batch, &[(host_table, pooled)]);
        for (t, grad) in &out.hosted_grads {
            assert_eq!(*t, host_table);
            host.backward_sgd(&field.indices, &field.offsets, grad, 0.05);
        }
        if k < 10 {
            early += out.loss / 10.0;
        }
        if k >= 50 {
            late += out.loss / 10.0;
        }
    }
    assert!(late < early, "hybrid training did not improve: {early} -> {late}");
}
