//! Cross-crate properties of index reordering: it must help the Eff-TT
//! kernels without changing what the model computes.

use el_rec::core::{LookupPlan, TtConfig};
use el_rec::data::{DatasetSpec, SyntheticDataset};
use el_rec::reorder::metrics::mean_reuse_opportunity;
use el_rec::reorder::{ReorderConfig, Reorderer};

fn dataset(rows: usize) -> SyntheticDataset {
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    SyntheticDataset::new(spec, 606)
}

#[test]
fn reordering_raises_reuse_opportunity_on_synthetic_communities() {
    let rows = 50_000;
    let ds = dataset(rows);
    let profile: Vec<_> = (0..8u64).map(|b| ds.batch(b, 1024)).collect();
    let lists: Vec<&[u32]> = profile.iter().map(|b| &b.fields[0].indices[..]).collect();
    let bij =
        Reorderer::new(ReorderConfig { hot_ratio: 0.05, seed: 1, ..ReorderConfig::default() })
            .fit(rows, &lists);
    bij.validate().unwrap();

    let eval: Vec<_> = (100..106u64).map(|b| ds.batch(b, 1024)).collect();
    let raw: Vec<Vec<u32>> = eval.iter().map(|b| b.fields[0].indices.clone()).collect();
    let remapped: Vec<Vec<u32>> = raw
        .iter()
        .map(|v| {
            let mut v = v.clone();
            bij.apply(&mut v);
            v
        })
        .collect();
    let raw_refs: Vec<&[u32]> = raw.iter().map(|v| v.as_slice()).collect();
    let new_refs: Vec<&[u32]> = remapped.iter().map(|v| v.as_slice()).collect();

    let cfg = TtConfig::new(rows, 32, 16);
    let last = *cfg.row_dims.last().unwrap();
    let before = mean_reuse_opportunity(&raw_refs, last);
    let after = mean_reuse_opportunity(&new_refs, last);
    assert!(after > before, "reordering should raise prefix sharing: {before:.4} -> {after:.4}");
}

#[test]
fn reordering_reduces_forward_gemm_tasks() {
    // The plan's task count is the direct work metric of the reuse buffer.
    let rows = 20_000;
    let ds = dataset(rows);
    let profile: Vec<_> = (0..8u64).map(|b| ds.batch(b, 2048)).collect();
    let lists: Vec<&[u32]> = profile.iter().map(|b| &b.fields[0].indices[..]).collect();
    let bij =
        Reorderer::new(ReorderConfig { hot_ratio: 0.05, seed: 2, ..ReorderConfig::default() })
            .fit(rows, &lists);

    let cfg = TtConfig::new(rows, 32, 16);
    let batch = ds.batch(200, 2048);
    let field = &batch.fields[0];
    let raw_plan = LookupPlan::build(&field.indices, &field.offsets, &cfg.row_dims, true);
    let mut remapped = field.indices.clone();
    bij.apply(&mut remapped);
    let new_plan = LookupPlan::build(&remapped, &field.offsets, &cfg.row_dims, true);
    assert!(
        new_plan.forward_tasks() < raw_plan.forward_tasks(),
        "reordering should shrink the GEMM task count: {} -> {}",
        raw_plan.forward_tasks(),
        new_plan.forward_tasks()
    );
}

#[test]
fn remapped_training_is_a_relabeling() {
    // Training on remapped indices must be exactly training on raw indices
    // with relabeled rows: same losses when the tables start from the
    // "same" (relabeled) initialization. We verify the weaker but
    // end-to-end-meaningful form: same loss statistics and final quality.
    use el_rec::dlrm::{DlrmConfig, DlrmModel};
    use rand::SeedableRng;

    let rows = 5_000;
    let ds = dataset(rows);
    let profile: Vec<_> = (0..6u64).map(|b| ds.batch(b, 512)).collect();
    let lists: Vec<&[u32]> = profile.iter().map(|b| &b.fields[0].indices[..]).collect();
    let bij = Reorderer::default().fit(rows, &lists);

    let cfg = DlrmConfig {
        num_dense: 4,
        table_cardinalities: vec![rows],
        dim: 8,
        bottom_hidden: vec![16],
        top_hidden: vec![16],
        tt_threshold: usize::MAX, // dense table: relabeling is exact here
        tt_rank: 8,
        lr: 0.05,
        optimizer: el_dlrm::OptimizerKind::Sgd,
    };

    let train = |remap: bool| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut model = DlrmModel::new(&cfg, &mut rng);
        let mut last = 0.0;
        for k in 0..40u64 {
            let mut batch = ds.batch(k, 512);
            if remap {
                batch.fields[0].remap(&bij.forward);
            }
            last = model.train_step(&batch);
        }
        last
    };
    let raw_loss = train(false);
    let remapped_loss = train(true);
    assert!(
        (raw_loss - remapped_loss).abs() < 0.05,
        "relabeling changed training quality: {raw_loss} vs {remapped_loss}"
    );
}
