//! Quickstart: the Eff-TT table as an `EmbeddingBag` drop-in.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 1M-row embedding table compressed into three TT cores, looks
//! up a batch, trains a few steps, and shows the footprint the compression
//! saves — the paper's core promise in ~60 lines.

use el_rec::core::{TtConfig, TtEmbeddingBag, TtWorkspace};
use el_rec::tensor::Matrix;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // A 1M-row, 64-dimensional embedding table at TT rank 32.
    let config = TtConfig::new(1_000_000, 64, 32);
    let mut table = TtEmbeddingBag::new(&config, &mut rng);
    let mut ws = TtWorkspace::new();

    let dense_bytes = 1_000_000 * 64 * 4;
    println!("dense table:  {:>12} bytes", dense_bytes);
    println!("Eff-TT table: {:>12} bytes", table.footprint_bytes());
    println!("compression:  {:>11.0}x", table.compression_ratio());
    println!(
        "TT factors:   rows {:?} x cols {:?}, ranks {:?}",
        table.cores().row_dims,
        table.cores().col_dims,
        table.cores().ranks
    );

    // One batch in CSR (indices, offsets) form — the nn.EmbeddingBag
    // contract: sample 0 pools rows {3, 999999}, sample 1 pools {3, 17, 17}.
    let indices = [3u32, 999_999, 3, 17, 17];
    let offsets = [0u32, 2, 5];
    let pooled = table.forward(&indices, &offsets, &mut ws);
    println!(
        "\nlookup: batch of {} samples -> {}x{} pooled embeddings",
        offsets.len() - 1,
        pooled.rows(),
        pooled.cols()
    );

    // Train the table to pull those pooled embeddings toward zero:
    // d(0.5*||out||^2)/d(out) = out.
    let mut norm_before = 0.0;
    for step in 0..20 {
        let out = table.forward(&indices, &offsets, &mut ws);
        let norm = out.frobenius_norm();
        if step == 0 {
            norm_before = norm;
        }
        table.backward_sgd(&out, &mut ws, 0.05);
    }
    let out = table.forward(&indices, &offsets, &mut ws);
    println!(
        "training:     ||pooled|| {:.4} -> {:.4} after 20 SGD steps",
        norm_before,
        out.frobenius_norm()
    );

    // The same rows are recoverable individually (the reference path).
    let mut row = vec![0.0f32; 64];
    table.reconstruct_row(3, &mut row);
    let direct = Matrix::from_vec(1, 64, row);
    println!("row 3 reconstructs to a vector of norm {:.4}", direct.frobenius_norm());
}
