//! End-to-end CTR training: a DLRM with Eff-TT tables on a synthetic
//! Criteo-Kaggle-shaped workload.
//!
//! ```text
//! cargo run --release --example ctr_training
//! ```
//!
//! Demonstrates the drop-in property: the model config decides per table
//! whether it is a dense `EmbeddingBag` or an Eff-TT table; nothing else
//! changes. Prints training loss and held-out accuracy/AUC.

use el_rec::data::{DatasetSpec, MiniBatch, SyntheticDataset};
use el_rec::dlrm::{DlrmConfig, DlrmModel};
use rand::SeedableRng;

fn main() {
    // Criteo-Kaggle schema at 1/500 scale: 13 dense + 26 sparse features.
    let spec = DatasetSpec::criteo_kaggle(0.002);
    let dataset = SyntheticDataset::new(spec, 2024);

    // Tables with >= 2000 rows are TT-compressed at rank 16.
    let mut config = DlrmConfig::for_spec(dataset.spec(), 16, 2_000, 16);
    config.lr = 0.05;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut model = DlrmModel::new(&config, &mut rng);

    let compressed = dataset.spec().large_tables(2_000).len();
    println!(
        "model: {} embedding tables ({} TT-compressed), {:.2} MB device embeddings",
        model.num_tables(),
        compressed,
        model.embedding_footprint_bytes() as f64 / 1e6
    );

    let batch_size = 512;
    let train_batches = 100u64;
    println!("\ntraining {train_batches} batches of {batch_size}:");
    let mut window = 0.0f32;
    for k in 0..train_batches {
        let batch = dataset.batch(k, batch_size);
        window += model.train_step(&batch);
        if (k + 1) % 20 == 0 {
            println!("  batch {:>3}: mean loss {:.4}", k + 1, window / 20.0);
            window = 0.0;
        }
    }

    // Held-out evaluation on unseen batches.
    let eval: Vec<MiniBatch> = (10_000..10_008u64).map(|b| dataset.batch(b, 512)).collect();
    let metrics = model.evaluate(&eval);
    println!(
        "\nheld-out: accuracy {:.2}%  auc {:.3}  log-loss {:.4}",
        metrics.accuracy * 100.0,
        metrics.auc,
        metrics.log_loss
    );
}
