//! TT-rank sweep: footprint vs reconstruction fidelity vs accuracy.
//!
//! ```text
//! cargo run --release --example compression_sweep
//! ```
//!
//! Two experiments:
//!
//! 1. **TT-SVD fidelity** — decompose a trained dense table at increasing
//!    rank and watch the reconstruction error vanish (the `el-tensor`
//!    TT-SVD substrate at work);
//! 2. **Training accuracy** — train the same DLRM with TT tables at
//!    several ranks and compare held-out accuracy against the dense
//!    baseline (the paper's Table IV trade-off, swept).

use el_rec::data::{DatasetSpec, MiniBatch, SyntheticDataset};
use el_rec::dlrm::{DlrmConfig, DlrmModel};
use el_rec::tensor::tt::decompose;
use el_rec::tensor::Matrix;
use rand::SeedableRng;

fn main() {
    // --- Part 1: TT-SVD of a structured matrix.
    println!("TT-SVD reconstruction error vs rank (64x32 structured table):");
    let table = Matrix::from_fn(64, 32, |r, c| {
        ((r as f32) * 0.1).sin() * ((c as f32) * 0.2).cos() + 0.01 * ((r * 31 + c * 7) % 13) as f32
    });
    for rank in [1usize, 2, 4, 8, 16] {
        let dec = decompose(&table, 3, rank);
        println!(
            "  rank {rank:>2}: max|err| = {:<10.6} params = {:>5} ({:.1}x smaller)",
            dec.max_error,
            dec.cores.param_count(),
            (64.0 * 32.0) / dec.cores.param_count() as f64
        );
    }

    // --- Part 2: end-to-end accuracy at several ranks.
    let spec = DatasetSpec::toy(4, 20_000, usize::MAX / 2);
    let dataset = SyntheticDataset::new(spec, 31);
    let eval: Vec<MiniBatch> = (5_000..5_006u64).map(|b| dataset.batch(b, 512)).collect();

    println!("\nDLRM accuracy vs TT rank (4 tables x 20k rows, 40 training batches):");
    let mut results = Vec::new();
    for rank in [0usize, 4, 8, 16, 32] {
        let mut config = DlrmConfig::for_spec(dataset.spec(), 16, 1, rank.max(1));
        if rank == 0 {
            config.tt_threshold = usize::MAX; // dense baseline
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut model = DlrmModel::new(&config, &mut rng);
        for k in 0..40 {
            let _ = model.train_step(&dataset.batch(k, 512));
        }
        let metrics = model.evaluate(&eval);
        let label = if rank == 0 { "dense".to_string() } else { format!("rank {rank}") };
        println!(
            "  {label:>7}: accuracy {:.2}%  auc {:.3}  device bytes {:>9}",
            metrics.accuracy * 100.0,
            metrics.auc,
            model.embedding_footprint_bytes()
        );
        results.push((label, metrics.accuracy));
    }
    let dense_acc = results[0].1;
    let best_tt = results[1..].iter().map(|(_, a)| *a).fold(0.0, f64::max);
    println!(
        "\nbest TT accuracy within {:.2} points of dense — the paper's\n\
         'negligible accuracy loss' claim, swept across ranks.",
        (dense_acc - best_tt).abs() * 100.0
    );
}
