//! Inference serving: frozen model, placement plan, hot-prefix cache.
//!
//! ```text
//! cargo run --release --example inference_serving
//! ```
//!
//! After training, EL-Rec's artifacts serve lookups too: the placement
//! planner sizes the deployment, the checkpoint round-trips the model, and
//! `TtInferenceSession` accelerates frozen-table lookups with a persistent
//! cache of hot prefix products (the cross-batch extension of §III-A's
//! reuse idea).

use el_rec::core::{TtConfig, TtEmbeddingBag, TtInferenceSession, TtWorkspace};
use el_rec::data::{DatasetSpec, SyntheticDataset};
use el_rec::pipeline::device::DeviceSpec;
use el_rec::pipeline::placement::{plan_placement, uniform_profiles, PlannerConfig};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // 1. Size a deployment for the Criteo-Kaggle schema on a V100.
    let spec = DatasetSpec::criteo_kaggle(1.0);
    let plan = plan_placement(
        &uniform_profiles(&spec.table_cardinalities),
        64,
        &DeviceSpec::v100(),
        &PlannerConfig::default(),
    );
    let (dense, tt, hosted) = plan.class_counts();
    println!(
        "placement plan (full Kaggle schema, dim 64, V100): {dense} dense + {tt} TT + \
         {hosted} hosted; {:.1} MB on device",
        plan.device_bytes as f64 / 1e6
    );

    // 2. Serve zipf traffic from one frozen TT table with and without the
    //    hot-prefix cache.
    let rows = 500_000;
    let mut gen_spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    gen_spec.indices_per_sample = 1;
    let ds = SyntheticDataset::new(gen_spec, 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let table = TtEmbeddingBag::new(&TtConfig::new(rows, 64, 16), &mut rng);

    let batches: Vec<(Vec<u32>, Vec<u32>)> = (0..20u64)
        .map(|b| {
            let batch = ds.batch(b, 1024);
            (batch.fields[0].indices.clone(), batch.fields[0].offsets.clone())
        })
        .collect();

    let mut ws = TtWorkspace::new();
    let t0 = Instant::now();
    for (idx, off) in &batches {
        let _ = table.forward(idx, off, &mut ws);
    }
    let baseline = t0.elapsed();

    let mut session = TtInferenceSession::new(&table, 32_768);
    for (idx, off) in &batches {
        let _ = session.lookup(idx, off); // warm the cache
    }
    let t0 = Instant::now();
    for (idx, off) in &batches {
        let _ = session.lookup(idx, off);
    }
    let cached = t0.elapsed();

    println!(
        "\nserving 20 x 1024-lookup batches from a {rows}-row TT table:\n\
         training kernel: {baseline:.2?}\n\
         cached session:  {cached:.2?}  (hit rate {:.1}%, cache {:.1} MB, {:.2}x)",
        session.hit_rate() * 100.0,
        session.footprint_bytes() as f64 / 1e6,
        baseline.as_secs_f64() / cached.as_secs_f64()
    );

    // 3. Correctness: the cached path returns the training kernel's values.
    let (idx, off) = &batches[0];
    let a = table.forward(idx, off, &mut ws);
    let b = session.lookup(idx, off);
    println!("max deviation between paths: {:.2e}", a.max_abs_diff(&b));
    assert!(a.max_abs_diff(&b) < 1e-5);
}
