//! Pipeline training with host-memory embedding tables (paper §V).
//!
//! ```text
//! cargo run --release --example pipeline_training
//! ```
//!
//! Puts the model's large tables behind the CPU parameter server, trains
//! with the pre-fetch/gradient queues, and shows two facts the paper
//! claims:
//!
//! 1. the embedding cache makes pipelined training *numerically identical*
//!    to sequential training (RAW conflicts resolved), and
//! 2. the stale-row synchronizations the cache performs are real and
//!    frequent under skewed access.

use el_rec::data::{DatasetSpec, SyntheticDataset};
use el_rec::dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer};
use el_rec::pipeline::server::HostServer;
use el_rec::pipeline::trainer::{PipelineConfig, PipelineTrainer};
use rand::SeedableRng;

fn build(dataset: &SyntheticDataset) -> (DlrmModel, HostServer) {
    let mut config = DlrmConfig::for_spec(dataset.spec(), 16, usize::MAX, 16);
    config.lr = 0.05;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut model = DlrmModel::new(&config, &mut rng);

    // Host every table with >= 1000 rows; the rest stay on the worker.
    let mut host = Vec::new();
    for (t, &card) in dataset.spec().table_cardinalities.iter().enumerate() {
        if card >= 1000 {
            if let EmbeddingLayer::Dense(bag) =
                std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim: 16 })
            {
                host.push((t, bag));
            }
        }
    }
    (model, HostServer::new(host, config.lr))
}

fn main() {
    let dataset = SyntheticDataset::new(DatasetSpec::avazu(0.002), 5);
    let (model, server) = build(&dataset);
    println!(
        "hosted tables: {} of {} (device keeps the small ones)",
        server.tables.len(),
        model.num_tables()
    );

    let run = |pipelined: bool, depth: usize| {
        let (model, server) = build(&dataset);
        let config = PipelineConfig {
            batch_size: 256,
            first_batch: 0,
            num_batches: 30,
            prefetch_depth: depth,
            pipelined,
            overlap_analysis: pipelined,
        };
        // The Result API surfaces schedule/mode mismatches as a typed
        // error before any thread spawns (`train` is the panicking strict
        // wrapper around this).
        PipelineTrainer::try_train(model, server, &dataset, &config).expect("schedule is servable")
    };

    println!("\nsequential run (queue depth 1)...");
    let seq = run(false, 1);
    println!("pipelined run (queue depth 4)...");
    let pipe = run(true, 4);

    println!(
        "\nsequential: final loss {:.5}, stale rows corrected: {}",
        seq.losses.last().unwrap(),
        seq.stale_hits
    );
    println!(
        "pipelined:  final loss {:.5}, stale rows corrected: {}",
        pipe.losses.last().unwrap(),
        pipe.stale_hits
    );
    println!("peak embedding-cache footprint: {:.1} KB", pipe.cache_peak_bytes as f64 / 1e3);

    let identical = seq.losses.iter().zip(&pipe.losses).all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "\nloss trajectories bit-identical: {identical} \
         (the RAW-conflict cache at work — paper Figure 10)"
    );
    assert!(identical, "pipelined training must match sequential exactly");
}
