//! Locality-based index reordering (paper §IV).
//!
//! ```text
//! cargo run --release --example index_reordering
//! ```
//!
//! Profiles batches of one embedding table, builds the co-occurrence index
//! graph, detects communities with Louvain, assembles the index bijection,
//! and measures what it buys the Eff-TT table: more shared TT prefixes
//! (reuse-buffer hits) and tighter per-batch index windows (cache
//! locality).

use el_rec::core::{TtConfig, TtEmbeddingBag, TtWorkspace};
use el_rec::data::{DatasetSpec, SyntheticDataset};
use el_rec::reorder::metrics::{mean_compactness, mean_reuse_opportunity};
use el_rec::reorder::{ReorderConfig, Reorderer};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let rows = 200_000usize;
    let mut spec = DatasetSpec::toy(1, rows, usize::MAX / 2);
    spec.indices_per_sample = 2;
    let dataset = SyntheticDataset::new(spec, 99);

    // Offline profiling: collect batches and fit the bijection.
    let profile: Vec<_> = (0..10u64).map(|b| dataset.batch(b, 1024)).collect();
    let lists: Vec<&[u32]> = profile.iter().map(|b| &b.fields[0].indices[..]).collect();
    let reorderer =
        Reorderer::new(ReorderConfig { hot_ratio: 0.05, seed: 1, ..ReorderConfig::default() });
    let t0 = Instant::now();
    let bijection = reorderer.fit(rows, &lists);
    println!("fitted bijection over {rows} indices in {:.2?}", t0.elapsed());
    bijection.validate().expect("must be a bijection");

    // Fresh evaluation batches, raw vs remapped.
    let eval: Vec<_> = (50..60u64).map(|b| dataset.batch(b, 1024)).collect();
    let raw: Vec<Vec<u32>> = eval.iter().map(|b| b.fields[0].indices.clone()).collect();
    let remapped: Vec<Vec<u32>> = raw
        .iter()
        .map(|idx| {
            let mut idx = idx.clone();
            bijection.apply(&mut idx);
            idx
        })
        .collect();
    let raw_refs: Vec<&[u32]> = raw.iter().map(|v| v.as_slice()).collect();
    let new_refs: Vec<&[u32]> = remapped.iter().map(|v| v.as_slice()).collect();

    let config = TtConfig::new(rows, 32, 32);
    let last_dim = *config.row_dims.last().unwrap();
    println!("\nTT row factors {:?} (reuse prefix = index / {last_dim})", config.row_dims);
    println!(
        "reuse opportunity: {:.3} -> {:.3}",
        mean_reuse_opportunity(&raw_refs, last_dim),
        mean_reuse_opportunity(&new_refs, last_dim)
    );
    println!(
        "batch compactness: {:.4} -> {:.4}",
        mean_compactness(&raw_refs, rows),
        mean_compactness(&new_refs, rows)
    );

    // And the effect on actual lookup latency.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let table = TtEmbeddingBag::new(&config, &mut rng);
    let mut ws = TtWorkspace::new();
    let offsets: Vec<u32> = (0..=1024u32).map(|s| s * 2).collect();
    let mut time = |lists: &[Vec<u32>]| {
        let t0 = Instant::now();
        for _ in 0..3 {
            for idx in lists {
                let _ = table.forward(idx, &offsets, &mut ws);
            }
        }
        t0.elapsed() / (3 * lists.len() as u32)
    };
    let t_raw = time(&raw);
    let t_new = time(&remapped);
    println!(
        "\nEff-TT lookup: {:.2?} raw vs {:.2?} reordered ({:.2}x)",
        t_raw,
        t_new,
        t_raw.as_secs_f64() / t_new.as_secs_f64()
    );
}
