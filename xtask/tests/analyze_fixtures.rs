//! End-to-end analyzer tests over the seeded-violation fixture
//! workspace in `tests/fixtures/`.
//!
//! Each test copies the pristine `base/` tree into a scratch directory
//! under `CARGO_TARGET_TMPDIR`, optionally replaces
//! `crates/fxcore/src/lib.rs` with one of the `overlays/` files (each
//! seeds exactly one violation), and drives the real
//! [`xtask::analyze::run`] entry point — the same code path as
//! `cargo xtask analyze` — asserting on its exit status and on the
//! `target/analyze/report.txt` artifact (file, span, call chain).

use std::fs;
use std::path::{Path, PathBuf};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

/// Fresh scratch copy of the clean fixture workspace.
fn scratch(name: &str) -> PathBuf {
    let dst = Path::new(env!("CARGO_TARGET_TMPDIR")).join("analyze-fixtures").join(name);
    let _ = fs::remove_dir_all(&dst);
    copy_tree(&fixtures().join("base"), &dst);
    dst
}

fn copy_tree(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create scratch dir");
    for e in fs::read_dir(src).expect("read fixture dir") {
        let e = e.expect("fixture dir entry");
        let from = e.path();
        let to = dst.join(e.file_name());
        if from.is_dir() {
            copy_tree(&from, &to);
        } else {
            fs::copy(&from, &to).expect("copy fixture file");
        }
    }
}

/// Replaces `crates/fxcore/src/lib.rs` with an overlay; returns the
/// overlay source for line-number lookups.
fn seed(root: &Path, overlay: &str) -> String {
    let src = fs::read_to_string(fixtures().join("overlays").join(overlay)).expect("read overlay");
    fs::write(root.join("crates/fxcore/src/lib.rs"), &src).expect("seed violation");
    src
}

/// 1-based line of the first occurrence of `needle` in `src`.
fn line_of(src: &str, needle: &str) -> usize {
    let off = src.find(needle).unwrap_or_else(|| panic!("overlay lacks `{needle}`"));
    src[..off].matches('\n').count() + 1
}

fn report(root: &Path) -> String {
    fs::read_to_string(root.join("target/analyze/report.txt")).expect("report artifact")
}

#[test]
fn clean_base_tree_passes() {
    let root = scratch("clean");
    assert_eq!(xtask::analyze::run(&root, false), Ok(()));
    let rep = report(&root);
    assert!(rep.contains("0 finding(s)"), "{rep}");
}

#[test]
fn alloc_two_hops_fails_with_call_chain() {
    let root = scratch("alloc");
    let src = seed(&root, "alloc_two_hops.rs");
    let sink_line = line_of(&src, "with_capacity");
    assert!(xtask::analyze::run(&root, false).is_err());
    let rep = report(&root);
    assert!(rep.contains("[zero-alloc]"), "{rep}");
    // span of the allocating call
    assert!(rep.contains(&format!("crates/fxcore/src/lib.rs:{sink_line}")), "{rep}");
    // full offending chain, root to sink
    for hop in ["hot", "mid", "deep", "with_capacity"] {
        assert!(rep.contains(hop), "missing chain hop `{hop}`:\n{rep}");
    }
}

#[test]
fn panic_reachable_fails_across_crates() {
    let root = scratch("panic");
    let src = seed(&root, "panic_reachable.rs");
    let site_line = line_of(&src, ".unwrap()");
    assert!(xtask::analyze::run(&root, false).is_err());
    let rep = report(&root);
    assert!(rep.contains("[panic-path]"), "{rep}");
    assert!(rep.contains(&format!("crates/fxcore/src/lib.rs:{site_line}")), "{rep}");
    // chain starts at the contract root in the *other* crate
    assert!(rep.contains("drive"), "{rep}");
    assert!(rep.contains("crates/fxpipe/src/lib.rs"), "{rep}");
    assert!(rep.contains("unwrap()"), "{rep}");
}

#[test]
fn unregistered_env_var_fails() {
    let root = scratch("env");
    seed(&root, "env_unregistered.rs");
    assert!(xtask::analyze::run(&root, false).is_err());
    let rep = report(&root);
    assert!(rep.contains("[env-registry]"), "{rep}");
    assert!(rep.contains("EL_FIXTURE_UNREGISTERED"), "{rep}");
    assert!(rep.contains("docs/env-vars.md"), "{rep}");
}

#[test]
fn stale_registry_row_fails() {
    let root = scratch("env-stale");
    // registry row whose variable nobody reads
    let reg = root.join("docs/env-vars.md");
    let mut text = fs::read_to_string(&reg).unwrap();
    text.push_str("| `EL_FIXTURE_GHOST` | nowhere | A knob nobody reads. |\n");
    fs::write(&reg, text).unwrap();
    assert!(xtask::analyze::run(&root, false).is_err());
    let rep = report(&root);
    assert!(rep.contains("EL_FIXTURE_GHOST"), "{rep}");
}

#[test]
fn unsafe_without_safety_comment_fails() {
    let root = scratch("unsafe");
    let src = seed(&root, "unsafe_no_safety.rs");
    let kw = ["un", "safe"].concat(); // keep this test file lint-clean
    let site_line = line_of(&src, &format!("{kw} {{"));
    assert!(xtask::analyze::run(&root, false).is_err());
    let rep = report(&root);
    assert!(rep.contains("[safety-comment]"), "{rep}");
    assert!(rep.contains(&format!("crates/fxcore/src/lib.rs:{site_line}")), "{rep}");
}

#[test]
fn baseline_ratchet_tolerates_then_forces_shrink() {
    let root = scratch("ratchet");
    let clean = fs::read_to_string(root.join("crates/fxcore/src/lib.rs")).unwrap();
    seed(&root, "panic_reachable.rs");

    // 1. new violation with an empty baseline: fail
    assert!(xtask::analyze::run(&root, false).is_err());

    // 2. baseline it: subsequent runs tolerate it
    assert_eq!(xtask::analyze::run(&root, true), Ok(()));
    let baseline = fs::read_to_string(root.join("analysis-baseline.toml")).unwrap();
    assert!(baseline.contains("[[violation]]"), "{baseline}");
    assert_eq!(xtask::analyze::run(&root, false), Ok(()));

    // 3. a *second* new violation is still rejected (ratchet, not a cap):
    //    keep the baselined panic, add an unregistered env read
    let p = root.join("crates/fxcore/src/lib.rs");
    let mut s = fs::read_to_string(&p).unwrap();
    s.push_str("\n/// Reads a knob nobody registered (second seeded violation).\n");
    s.push_str("pub fn knob2() -> Option<String> {\n");
    s.push_str("    std::env::var(\"EL_FIXTURE_SECOND\").ok()\n}\n");
    fs::write(&p, &s).unwrap();
    assert!(xtask::analyze::run(&root, false).is_err());

    // 4. fix everything: the stale baseline row itself now fails the run
    fs::write(root.join("crates/fxcore/src/lib.rs"), &clean).unwrap();
    assert!(xtask::analyze::run(&root, false).is_err(), "stale baseline row must fail");

    // 5. shrinking the baseline restores a clean run
    assert_eq!(xtask::analyze::run(&root, true), Ok(()));
    let baseline = fs::read_to_string(root.join("analysis-baseline.toml")).unwrap();
    assert!(!baseline.contains("[[violation]]"), "{baseline}");
    assert_eq!(xtask::analyze::run(&root, false), Ok(()));
}
