//! Seeded violation: an `unsafe` block with no adjacent `// SAFETY:`
//! comment (the comment present here talks about something else, so
//! token-level adjacency must still flag it).

/// Reused scratch buffers so the hot path allocates nothing.
#[derive(Default)]
pub struct Scratch {
    pub acc: Vec<f32>,
}

// CONTRACT: zero-alloc
pub fn hot(s: &mut Scratch, xs: &[f32]) -> f32 {
    mid(s, xs)
}

fn mid(s: &mut Scratch, xs: &[f32]) -> f32 {
    deep(s, xs)
}

fn deep(s: &mut Scratch, xs: &[f32]) -> f32 {
    s.acc.clear();
    s.acc.extend_from_slice(xs);
    s.acc.iter().sum()
}

/// One pipeline step; must stay panic-free (see `fxpipe::drive`).
pub fn step(xs: &[f32]) -> f32 {
    let mut t = 0.0;
    for x in xs {
        t += x;
    }
    t
}

/// Reads the registered fixture mode knob.
pub fn mode() -> Option<String> {
    std::env::var("EL_FIXTURE_MODE").ok()
}

/// Reads the first element without a bounds check (the seeded
/// violation: the block below carries no SAFETY justification).
pub fn peek(xs: &[f32]) -> f32 {
    // speed matters here
    unsafe { *xs.as_ptr() }
}
