//! Seeded violation: an unjustified `unwrap()` reachable from the
//! `// CONTRACT: panic-free` pipeline root in the sibling crate
//! (`fxpipe::drive -> step -> unwrap`).

/// Reused scratch buffers so the hot path allocates nothing.
#[derive(Default)]
pub struct Scratch {
    pub acc: Vec<f32>,
}

// CONTRACT: zero-alloc
pub fn hot(s: &mut Scratch, xs: &[f32]) -> f32 {
    mid(s, xs)
}

fn mid(s: &mut Scratch, xs: &[f32]) -> f32 {
    deep(s, xs)
}

fn deep(s: &mut Scratch, xs: &[f32]) -> f32 {
    s.acc.clear();
    s.acc.extend_from_slice(xs);
    s.acc.iter().sum()
}

/// One pipeline step; panics on an empty batch (the seeded bug).
pub fn step(xs: &[f32]) -> f32 {
    let mut t = *xs.first().unwrap();
    for x in &xs[1..] {
        t += x;
    }
    t
}

/// Reads the registered fixture mode knob.
pub fn mode() -> Option<String> {
    std::env::var("EL_FIXTURE_MODE").ok()
}
