//! Seeded violation: an allocating call two hops below the
//! `// CONTRACT: zero-alloc` root (`hot -> mid -> deep -> with_capacity`).

/// Reused scratch buffers so the hot path allocates nothing.
#[derive(Default)]
pub struct Scratch {
    pub acc: Vec<f32>,
}

// CONTRACT: zero-alloc
pub fn hot(s: &mut Scratch, xs: &[f32]) -> f32 {
    mid(s, xs)
}

fn mid(s: &mut Scratch, xs: &[f32]) -> f32 {
    deep(s, xs)
}

fn deep(s: &mut Scratch, xs: &[f32]) -> f32 {
    let mut v: Vec<f32> = Vec::with_capacity(xs.len());
    v.extend_from_slice(xs);
    s.acc.clear();
    s.acc.extend_from_slice(&v);
    s.acc.iter().sum()
}

/// One pipeline step; must stay panic-free (see `fxpipe::drive`).
pub fn step(xs: &[f32]) -> f32 {
    let mut t = 0.0;
    for x in xs {
        t += x;
    }
    t
}

/// Reads the registered fixture mode knob.
pub fn mode() -> Option<String> {
    std::env::var("EL_FIXTURE_MODE").ok()
}
