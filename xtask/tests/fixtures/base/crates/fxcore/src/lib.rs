//! Analyzer fixture crate: hot-path contracts the engine must prove
//! clean in the pristine tree. The overlay files under
//! `xtask/tests/fixtures/overlays/` each replace this file with a copy
//! seeded with exactly one violation.

/// Reused scratch buffers so the hot path allocates nothing.
#[derive(Default)]
pub struct Scratch {
    pub acc: Vec<f32>,
}

// CONTRACT: zero-alloc
pub fn hot(s: &mut Scratch, xs: &[f32]) -> f32 {
    mid(s, xs)
}

fn mid(s: &mut Scratch, xs: &[f32]) -> f32 {
    deep(s, xs)
}

fn deep(s: &mut Scratch, xs: &[f32]) -> f32 {
    s.acc.clear();
    s.acc.extend_from_slice(xs);
    s.acc.iter().sum()
}

/// One pipeline step; must stay panic-free (see `fxpipe::drive`).
pub fn step(xs: &[f32]) -> f32 {
    let mut t = 0.0;
    for x in xs {
        t += x;
    }
    t
}

/// Reads the registered fixture mode knob.
pub fn mode() -> Option<String> {
    std::env::var("EL_FIXTURE_MODE").ok()
}
