//! Analyzer fixture pipeline crate: the panic-free contract root lives
//! here so violations seeded into `fxcore` are reported with a
//! cross-crate call chain.

use fxcore::step;

// CONTRACT: panic-free
pub fn drive(xs: &[f32]) -> f32 {
    step(xs)
}
