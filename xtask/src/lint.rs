//! Source-level invariant lints.
//!
//! These checks encode repo conventions the compiler cannot express:
//!
//! 1. **`SAFETY` comments** — every occurrence of the `unsafe` keyword in
//!    code must be justified by an adjacent `// SAFETY`-prefixed comment
//!    (or a `/// # Safety` doc section) explaining why the invariants
//!    hold.
//! 2. **`deny(unsafe_op_in_unsafe_fn)`** — every compilation unit that
//!    contains `unsafe` must carry the attribute on its crate root, so
//!    unsafe operations are always wrapped in (and attributable to) an
//!    explicit `unsafe {}` block.
//! 3. **`forbid(unsafe_code)`** — library crates that are unsafe-free must
//!    say so irrevocably, turning any future creep of `unsafe` into a
//!    compile error reviewed on purpose.
//! 4. **no `unwrap()`/`expect()` on lock results in library code** — lock
//!    poisoning is either meaningful (then it deserves handling) or noise
//!    (then `unwrap_or_else(PoisonError::into_inner)`); a bare unwrap
//!    turns one worker panic into a cascading wedge.
//! 5. **vendored-crate drift** — `vendor/` content must match the checked
//!    in FNV-1a manifest (see [`crate::hash`]), so silent edits to the
//!    "frozen" stand-ins fail CI instead of hiding in a large diff.
//! 6. **no `Instant::now()` in library code** — wall-clock probes in hot
//!    loops cost a vDSO call per use and creep in silently; library crates
//!    must route timing through `el-core`'s `timing` module (which owns the
//!    enable/disable switch), or justify a direct read with an adjacent
//!    `// TIMING:` comment explaining why it is off the hot path.
//!
//! The scanner is deliberately *textual* (a stripped-line tokenizer, not a
//! full parser): it strips `//` comments, string/char literals and block
//! comments before matching, which is exact on rustfmt-formatted code. The
//! one known blind spot is multi-line raw string literals containing Rust
//! code — the repo avoids those (and the lint's own tests construct such
//! content with `format!` instead).

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding, pointing at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in (repo-relative when produced by [`run`]).
    pub file: PathBuf,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    /// Short rule identifier (stable, greppable).
    pub rule: &'static str,
    /// Human explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.msg)
    }
}

// ---------------------------------------------------------------------------
// Line sanitizing
// ---------------------------------------------------------------------------

/// Strips string literals, char literals, `//` comments and `/* */` block
/// comments from the lines of a file, so token searches only see code.
/// Returns one sanitized string per input line (same line numbering).
pub fn sanitize_lines(content: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    // String state persists across lines: ordinary string literals may span
    // lines in Rust (with or without a trailing `\`).
    let mut in_string = false;
    for line in content.lines() {
        let mut s = String::with_capacity(line.len());
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                }
                continue;
            }
            if in_string {
                match c {
                    '\\' => {
                        chars.next(); // skip escaped char
                    }
                    '"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '\'' => {
                    // Char literal or lifetime. A lifetime ('a) has no
                    // closing quote; a char literal does. Consume a char
                    // literal (incl. '\x' escapes); leave lifetimes alone.
                    let mut look = chars.clone();
                    match look.next() {
                        Some('\\') => {
                            // escaped char literal: skip to closing quote
                            while let Some(c2) = chars.next() {
                                if c2 == '\\' {
                                    chars.next();
                                } else if c2 == '\'' {
                                    break;
                                }
                            }
                        }
                        Some(_) if look.next() == Some('\'') => {
                            chars.next();
                            chars.next();
                        }
                        _ => s.push(c), // lifetime marker; keep
                    }
                }
                '/' if chars.peek() == Some(&'/') => break, // line comment
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                }
                _ => s.push(c),
            }
        }
        out.push(s);
    }
    out
}

/// True when `needle` occurs in `hay` as a standalone word (neighbors are
/// not identifier characters).
fn contains_word(hay: &str, needle: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !hay[..at].chars().next_back().is_some_and(ident);
        let after_ok = !hay[at + needle.len()..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// The keyword, assembled so the lint's own source never contains a bare
/// code-position token of it.
fn unsafe_kw() -> &'static str {
    "unsafe"
}

/// True when the (unsanitized) line carries a `SAFETY` justification or a
/// `# Safety` doc heading in a comment.
fn is_safety_comment(raw_line: &str) -> bool {
    let t = raw_line.trim_start();
    if let Some(rest) = t.strip_prefix("//") {
        let rest = rest.trim_start_matches(['/', '!']).trim_start();
        rest.starts_with("SAFETY") || rest.starts_with("# Safety")
    } else {
        false
    }
}

/// Rule 1: every code occurrence of the `unsafe` keyword needs an adjacent
/// `// SAFETY` comment — on the same line, or directly above with only
/// comment/attribute lines in between.
pub fn safety_comment_violations(file: &Path, content: &str) -> Vec<Violation> {
    let raw: Vec<&str> = content.lines().collect();
    let code = sanitize_lines(content);
    let mut out = Vec::new();
    for (i, line) in code.iter().enumerate() {
        if !contains_word(line, unsafe_kw()) {
            continue;
        }
        // Same-line trailing justification?
        if raw[i].contains("SAFETY") {
            continue;
        }
        // Walk upward through contiguous comment/attribute lines (and the
        // unsafe construct's own preceding signature lines are *not*
        // skipped: the comment must sit directly on the construct).
        let mut justified = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = raw[j].trim_start();
            if is_safety_comment(raw[j]) {
                justified = true;
                break;
            }
            if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") {
                continue;
            }
            break;
        }
        if !justified {
            out.push(Violation {
                file: file.to_path_buf(),
                line: i + 1,
                rule: "safety-comment",
                msg: format!("`{}` without an adjacent `// SAFETY:` justification", unsafe_kw()),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Compilation units and crate-root attributes
// ---------------------------------------------------------------------------

/// A compilation unit: one crate root plus every file compiled into it.
#[derive(Debug)]
pub struct Unit {
    /// The crate root file (`lib.rs`, `main.rs`, a test/bench/example/bin).
    pub root: PathBuf,
    /// All files of the unit, root included.
    pub files: Vec<PathBuf>,
    /// Whether rule 3 (`forbid(unsafe_code)` when unsafe-free) applies —
    /// true for `lib.rs`/`main.rs` roots, not for tests/benches/bins.
    pub wants_forbid: bool,
}

fn rs_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rs_files_under(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn files_in_dir_flat(dir: &Path) -> Vec<PathBuf> {
    let mut v = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return v };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_file() && p.extension().is_some_and(|e| e == "rs") {
            v.push(p);
        }
    }
    v.sort();
    v
}

/// Collects the compilation units of one cargo package directory.
pub fn package_units(pkg: &Path) -> Vec<Unit> {
    let mut units = Vec::new();
    let src = pkg.join("src");
    let lib = src.join("lib.rs");
    let main = src.join("main.rs");
    if lib.is_file() {
        let mut files = Vec::new();
        rs_files_under(&src, &mut files);
        files.retain(|p| *p != main && !p.starts_with(src.join("bin")));
        units.push(Unit { root: lib, files, wants_forbid: true });
    }
    if main.is_file() {
        units.push(Unit { root: main.clone(), files: vec![main], wants_forbid: true });
    }
    for root in files_in_dir_flat(&src.join("bin")) {
        units.push(Unit { root: root.clone(), files: vec![root], wants_forbid: false });
    }
    for dir in ["tests", "benches", "examples"] {
        for root in files_in_dir_flat(&pkg.join(dir)) {
            units.push(Unit { root: root.clone(), files: vec![root], wants_forbid: false });
        }
    }
    units
}

/// Rules 2 and 3 over one unit: unsafe-using units must `deny` unsafe ops
/// in unsafe fns at the root; unsafe-free lib/main roots must `forbid`
/// unsafe code outright.
pub fn attribute_violations(unit: &Unit) -> Vec<Violation> {
    let mut uses_unsafe = false;
    for f in &unit.files {
        let Ok(content) = std::fs::read_to_string(f) else { continue };
        if sanitize_lines(&content).iter().any(|l| contains_word(l, unsafe_kw())) {
            uses_unsafe = true;
            break;
        }
    }
    let Ok(root_content) = std::fs::read_to_string(&unit.root) else {
        return vec![Violation {
            file: unit.root.clone(),
            line: 0,
            rule: "crate-attrs",
            msg: "crate root unreadable".into(),
        }];
    };
    let has = |attr: &str| root_content.lines().any(|l| l.trim() == attr);
    let deny_attr = format!("#![deny({}_op_in_{}_fn)]", unsafe_kw(), unsafe_kw());
    let forbid_attr = format!("#![forbid({}_code)]", unsafe_kw());
    let mut out = Vec::new();
    if uses_unsafe && !has(&deny_attr) {
        out.push(Violation {
            file: unit.root.clone(),
            line: 0,
            rule: "deny-unsafe-op",
            msg: format!("unit uses `{}` but its root lacks `{deny_attr}`", unsafe_kw()),
        });
    }
    if !uses_unsafe && unit.wants_forbid && !has(&forbid_attr) {
        out.push(Violation {
            file: unit.root.clone(),
            line: 0,
            rule: "forbid-unsafe",
            msg: format!("{}-free crate root lacks `{forbid_attr}`", unsafe_kw()),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Lock-result unwraps
// ---------------------------------------------------------------------------

/// Rule 4: `.lock()/.read()/.write()` immediately followed by
/// `.unwrap()`/`.expect(` in library code. Checking stops at the first
/// `#[cfg(test)]` line — test modules sit at the bottom of files in this
/// repo, and tests may legitimately assert on poisoning.
pub fn lock_unwrap_violations(file: &Path, content: &str) -> Vec<Violation> {
    const ACQUIRERS: [&str; 3] = [".lock()", ".read()", ".write()"];
    const SINKS: [&str; 2] = [".unwrap()", ".expect("];
    let mut out = Vec::new();
    for (i, line) in sanitize_lines(content).iter().enumerate() {
        if content.lines().nth(i).is_some_and(|raw| raw.trim() == "#[cfg(test)]") {
            break;
        }
        for acq in ACQUIRERS {
            let mut start = 0;
            while let Some(pos) = line[start..].find(acq) {
                let rest = &line[start + pos + acq.len()..];
                if SINKS.iter().any(|s| rest.starts_with(s)) {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: i + 1,
                        rule: "lock-unwrap",
                        msg: format!(
                            "`{acq}` result unwrapped in library code; handle poisoning \
                             explicitly (e.g. `unwrap_or_else(PoisonError::into_inner)`)"
                        ),
                    });
                }
                start += pos + acq.len();
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Instant::now() in library code
// ---------------------------------------------------------------------------

/// True when the (unsanitized) line carries a `// TIMING:` justification.
fn is_timing_comment(raw_line: &str) -> bool {
    let t = raw_line.trim_start();
    t.strip_prefix("//")
        .map(|rest| rest.trim_start_matches(['/', '!']).trim_start())
        .is_some_and(|rest| rest.starts_with("TIMING"))
}

/// Rule 6: `Instant::now()` in library sources needs an adjacent
/// `// TIMING:` comment — same line or directly above, with only
/// comment/attribute lines in between (the `SAFETY` walk-up, verbatim).
/// `src/timing.rs` is the sanctioned home of clock reads and is exempted
/// by the driver, not here.
pub fn instant_now_violations(file: &Path, content: &str) -> Vec<Violation> {
    let raw: Vec<&str> = content.lines().collect();
    let mut out = Vec::new();
    for (i, line) in sanitize_lines(content).iter().enumerate() {
        if !line.contains("Instant::now()") {
            continue;
        }
        if raw[i].contains("TIMING") {
            continue;
        }
        let mut justified = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = raw[j].trim_start();
            if is_timing_comment(raw[j]) {
                justified = true;
                break;
            }
            if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") {
                continue;
            }
            break;
        }
        if !justified {
            out.push(Violation {
                file: file.to_path_buf(),
                line: i + 1,
                rule: "instant-now",
                msg: "`Instant::now()` in library code; use the `timing` module, or \
                      justify with an adjacent `// TIMING:` comment"
                    .into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// target_feature caller contracts
// ---------------------------------------------------------------------------

/// Rule 7: every `#[target_feature]` function must document its caller
/// contract — a `# Safety` doc heading that mentions the *caller* — because
/// calling such a function from code compiled without the feature is UB,
/// and the obligation lives at every call site, not in the body. The walk
/// mirrors the `SAFETY` rule: contiguous doc/attribute lines directly above
/// the attribute.
pub fn target_feature_violations(file: &Path, content: &str) -> Vec<Violation> {
    let raw: Vec<&str> = content.lines().collect();
    let mut out = Vec::new();
    for (i, line) in sanitize_lines(content).iter().enumerate() {
        if !line.contains("#[target_feature") {
            continue;
        }
        let mut has_heading = false;
        let mut names_caller = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = raw[j].trim_start();
            if t.starts_with("///") || t.starts_with("//!") || t.starts_with("//") {
                let body = t.trim_start_matches('/').trim_start_matches('!').trim_start();
                if body.starts_with("# Safety") {
                    has_heading = true;
                }
                if body.to_ascii_lowercase().contains("caller") {
                    names_caller = true;
                }
                continue;
            }
            if t.starts_with("#[") || t.starts_with("#![") {
                continue;
            }
            break;
        }
        if !(has_heading && names_caller) {
            out.push(Violation {
                file: file.to_path_buf(),
                line: i + 1,
                rule: "target-feature-contract",
                msg: "`#[target_feature]` function without a `# Safety` doc section \
                      naming the caller's obligation (the CPU-support precondition \
                      binds every call site)"
                    .into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Whole-repo driver
// ---------------------------------------------------------------------------

pub fn package_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.to_path_buf(), root.join("xtask")];
    for parent in ["crates", "vendor"] {
        let Ok(entries) = std::fs::read_dir(root.join(parent)) else { continue };
        let mut v: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        v.sort();
        dirs.extend(v);
    }
    dirs
}

/// Runs every lint over the repo rooted at `root`; returns all findings.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    let rel = |p: &Path| p.strip_prefix(root).unwrap_or(p).to_path_buf();
    for pkg in package_dirs(root) {
        let lib_crate = pkg.starts_with(root.join("crates"));
        for unit in package_units(&pkg) {
            for v in attribute_violations(&unit) {
                out.push(Violation { file: rel(&v.file), ..v });
            }
            let in_src = unit.root.parent().is_some_and(|d| d.ends_with("src"))
                || unit.root.parent().is_some_and(|d| d.ends_with("bin"));
            for f in &unit.files {
                let Ok(content) = std::fs::read_to_string(f) else { continue };
                for v in safety_comment_violations(&rel(f), &content) {
                    out.push(v);
                }
                for v in target_feature_violations(&rel(f), &content) {
                    out.push(v);
                }
                if in_src {
                    for v in lock_unwrap_violations(&rel(f), &content) {
                        out.push(v);
                    }
                    // Benchmark/CLI binaries under src/bin are measurement
                    // harnesses; the clock-read rule is for library code.
                    let in_bin = f.starts_with(pkg.join("src").join("bin"));
                    if lib_crate && !in_bin && !f.ends_with("src/timing.rs") {
                        for v in instant_now_violations(&rel(f), &content) {
                            out.push(v);
                        }
                    }
                }
            }
        }
    }
    out.extend(crate::hash::drift_violations(root));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a line containing the unsafe keyword in code position without
    /// the lint's own source carrying one.
    fn kw() -> String {
        ["un", "safe"].concat()
    }

    #[test]
    fn sanitizer_strips_strings_comments_and_chars() {
        let content = format!(
            "let a = \"{} {{}}\"; // {} in comment\nlet b = '\\n'; /* {} */ let c = 1;",
            kw(),
            kw(),
            kw()
        );
        let lines = sanitize_lines(&content);
        assert!(!lines[0].contains(&kw()), "string/comment content leaked: {:?}", lines[0]);
        assert!(lines[1].contains("let c = 1"));
        assert!(!lines[1].contains(&kw()));
    }

    #[test]
    fn sanitizer_tracks_strings_across_lines() {
        let content = format!("let s = \"first\n {} second\n third\"; let x = 3;", kw());
        let lines = sanitize_lines(&content);
        assert!(!lines[1].contains(&kw()), "multi-line string content leaked: {:?}", lines[1]);
        assert!(lines[2].contains("let x = 3"));
    }

    #[test]
    fn sanitizer_handles_multiline_block_comments() {
        let content = format!("/*\n {} {{ bad }}\n*/\nlet x = 2;", kw());
        let lines = sanitize_lines(&content);
        assert!(!lines[1].contains(&kw()));
        assert_eq!(lines[3], "let x = 2;");
    }

    #[test]
    fn keyword_matches_are_word_bounded() {
        assert!(contains_word(&format!("{} {{", kw()), &kw()));
        assert!(contains_word(&format!("pub {} fn f()", kw()), &kw()));
        assert!(!contains_word(&format!("#![deny({}_op_in_{}_fn)]", kw(), kw()), &kw()));
        assert!(!contains_word(&format!("{}_code", kw()), &kw()));
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let content = format!("fn f() {{\n    {} {{ g() }}\n}}\n", kw());
        let v = safety_comment_violations(Path::new("a.rs"), &content);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, "safety-comment");
    }

    #[test]
    fn safety_comment_above_or_trailing_satisfies() {
        let above = format!("// SAFETY: g is fine\n{} {{ g() }}\n", kw());
        assert!(safety_comment_violations(Path::new("a.rs"), &above).is_empty());
        let trailing = format!("{} {{ g() }} // SAFETY: g is fine\n", kw());
        assert!(safety_comment_violations(Path::new("a.rs"), &trailing).is_empty());
        let parenthetical = format!("// SAFETY (lifetime erasure): ok\n{} {{ g() }}\n", kw());
        assert!(safety_comment_violations(Path::new("a.rs"), &parenthetical).is_empty());
    }

    #[test]
    fn target_feature_without_contract_is_flagged() {
        let bare = format!("#[target_feature(enable = \"avx2\")]\n{} fn kernel() {{}}\n", kw());
        let v = target_feature_violations(Path::new("k.rs"), &bare);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "target-feature-contract");
        assert_eq!(v[0].line, 1);

        // A `# Safety` heading that never names the caller is not a
        // contract — the obligation must be pinned to call sites.
        let headed = format!(
            "/// # Safety\n/// avx2 must exist.\n#[target_feature(enable = \"avx2\")]\n\
             {} fn kernel() {{}}\n",
            kw()
        );
        assert_eq!(target_feature_violations(Path::new("k.rs"), &headed).len(), 1);
    }

    #[test]
    fn target_feature_with_caller_contract_passes() {
        let good = format!(
            "/// Fancy kernel.\n///\n/// # Safety\n/// The caller must verify AVX2 support \
             first.\n#[inline]\n#[target_feature(enable = \"avx2\")]\n{} fn kernel() {{}}\n",
            kw()
        );
        assert!(target_feature_violations(Path::new("k.rs"), &good).is_empty());
        // the attribute inside a string/comment is not code
        let quoted = "let s = \"#[target_feature(enable)]\";\n";
        assert!(target_feature_violations(Path::new("k.rs"), quoted).is_empty());
    }

    #[test]
    fn attributes_between_comment_and_construct_are_transparent() {
        let content = format!(
            "/// docs\n/// # Safety\n/// caller checked\n#[inline]\npub {} fn f() {{}}\n",
            kw()
        );
        assert!(safety_comment_violations(Path::new("a.rs"), &content).is_empty());
    }

    #[test]
    fn blank_line_breaks_the_justification_chain() {
        let content = format!("// SAFETY: stale note\n\n{} {{ g() }}\n", kw());
        assert_eq!(safety_comment_violations(Path::new("a.rs"), &content).len(), 1);
    }

    #[test]
    fn lock_unwrap_patterns_are_flagged_outside_tests() {
        let bad = format!("let g = m.lock().{}();\n", "unwrap");
        let v = lock_unwrap_violations(Path::new("a.rs"), &bad);
        assert_eq!(v.len(), 1, "{bad:?} must be flagged");
        let bad2 = format!("let g = m.read().{}(\"poisoned\");\n", "expect");
        assert_eq!(lock_unwrap_violations(Path::new("a.rs"), &bad2).len(), 1);
        let good = "let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n";
        assert!(lock_unwrap_violations(Path::new("a.rs"), good).is_empty());
        let in_tests =
            format!("#[cfg(test)]\nmod tests {{\n let g = m.lock().{}();\n}}\n", "unwrap");
        assert!(lock_unwrap_violations(Path::new("a.rs"), &in_tests).is_empty());
    }

    #[test]
    fn instant_now_without_timing_comment_is_flagged() {
        let bad = "fn f() {\n    let t = Instant::now();\n}\n";
        let v = instant_now_violations(Path::new("a.rs"), bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, "instant-now");
    }

    #[test]
    fn timing_comment_above_or_trailing_satisfies_instant_now() {
        let above = "// TIMING: once per run, off the hot path\nlet t = Instant::now();\n";
        assert!(instant_now_violations(Path::new("a.rs"), above).is_empty());
        let trailing = "let t = Instant::now(); // TIMING: cold start-up stamp\n";
        assert!(instant_now_violations(Path::new("a.rs"), trailing).is_empty());
        let comment_only = "// mentions Instant::now() in prose\n";
        assert!(instant_now_violations(Path::new("a.rs"), comment_only).is_empty());
        let blank_breaks = "// TIMING: stale\n\nlet t = Instant::now();\n";
        assert_eq!(instant_now_violations(Path::new("a.rs"), blank_breaks).len(), 1);
    }

    /// Temp-tree helper for unit-collection tests.
    struct TempTree(PathBuf);

    impl TempTree {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("xtask-lint-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempTree(dir)
        }

        fn write(&self, rel: &str, content: &str) -> PathBuf {
            let p = self.0.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(&p, content).unwrap();
            p
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn seeded_violation_fails_and_clean_unit_passes() {
        let t = TempTree::new("attrs");
        // Seeded violation: module uses unsafe, root lacks the deny attr.
        t.write("pkg/src/lib.rs", "mod m;\n");
        t.write(
            "pkg/src/m.rs",
            &format!("pub fn f() {{\n    // SAFETY: seeded\n    {} {{}}\n}}\n", kw()),
        );
        t.write("pkg/Cargo.toml", "[package]\nname = \"pkg\"\n");
        let units = package_units(&t.0.join("pkg"));
        assert_eq!(units.len(), 1);
        let v = attribute_violations(&units[0]);
        assert_eq!(v.len(), 1, "seeded deny-attr violation must be caught: {v:?}");
        assert_eq!(v[0].rule, "deny-unsafe-op");

        // Fix the root: violation disappears.
        t.write("pkg/src/lib.rs", &format!("#![deny({}_op_in_{}_fn)]\nmod m;\n", kw(), kw()));
        let units = package_units(&t.0.join("pkg"));
        assert!(attribute_violations(&units[0]).is_empty());
    }

    #[test]
    fn unsafe_free_lib_requires_forbid_but_tests_do_not() {
        let t = TempTree::new("forbid");
        t.write("pkg/src/lib.rs", "pub fn f() {}\n");
        t.write("pkg/tests/t.rs", "#[test]\nfn t() {}\n");
        let units = package_units(&t.0.join("pkg"));
        assert_eq!(units.len(), 2);
        let (lib, test): (Vec<_>, Vec<_>) = units.iter().partition(|u| u.root.ends_with("lib.rs"));
        let v = attribute_violations(lib[0]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "forbid-unsafe");
        assert!(attribute_violations(test[0]).is_empty());
    }
}
