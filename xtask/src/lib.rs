//! Repo automation library (`cargo xtask …`).
//!
//! Split out of the binary so integration tests (and the fixture-driven
//! analyzer tests in particular) can call the lint/analysis engines as a
//! library instead of shelling out.
//!
//! * [`lint`] — the legacy stripped-line lints + crate-attribute and
//!   vendor-drift checks.
//! * [`analyze`] — the token-level workspace analyzer behind
//!   `cargo xtask analyze` (lexer, item parser, call graph, contract
//!   checks, ratcheted baseline).
//! * [`hash`] — the FNV-1a vendor manifest.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod hash;
pub mod lint;
