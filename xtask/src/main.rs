//! Repo automation entry point (`cargo xtask <cmd>`).
//!
//! Commands:
//!
//! * `lint` — the custom source-level lints of [`lint`] plus the vendored
//!   crate drift check of [`hash`]; exits nonzero on any finding. Also
//!   runs the token-level `analyze` engine, so the old rules and their
//!   stronger ports stay in lockstep.
//! * `analyze [--update-baseline]` — the token-level workspace analyzer
//!   ([`xtask::analyze`]): zero-alloc reachability for `// CONTRACT:
//!   zero-alloc` fns, panic-path audit for `// CONTRACT: panic-free`
//!   loops, env-var registry drift against `docs/env-vars.md`, and the
//!   token-level ports of the legacy lints. Findings are diffed against
//!   the `analysis-baseline.toml` ratchet; `--update-baseline`
//!   regenerates it. Writes `target/analyze/report.txt` (the CI
//!   artifact).
//! * `vendor-hash [--update]` — verify (or regenerate) the FNV-1a content
//!   manifest `vendor/MANIFEST.fnv1a`.
//! * `miri` — run the Miri-sized unsafe-surface test subset under Miri.
//!   Skips with exit 0 (and a loud message) when the nightly `miri`
//!   component is not installed — e.g. in offline containers; it never
//!   masks actual findings.
//! * `tsan` — run the pool stress harness under ThreadSanitizer. Needs
//!   nightly + the `rust-src` component (`-Zbuild-std`); same
//!   skip-when-unavailable / fail-on-findings policy.
//! * `sim [args...]` — run the deterministic pipeline simulator
//!   (`crates/sim`): `--sweep N` for a seed sweep (CI mode), `--seed N`
//!   to replay one failing seed with full diagnostics, `--crash-sweep N`
//!   for the crash-recovery sweep (process crashes, torn checkpoint
//!   writes, at-rest rot), `--crash-seed N` to replay one crash-recovery
//!   scenario, `--shard-sweep` / `--reshard-sweep` for the multi-shard
//!   and elasticity matrices, and `--failover-sweep N` /
//!   `--netfault-sweep N` (with `--failover-seed` / `--netfault-seed`
//!   replay) for the replicated tier: kill-the-primary schedules,
//!   heartbeat loss, and partitions that must complete byte-identical to
//!   the sequential oracle. Arguments pass through to the `sim` binary;
//!   see DESIGN.md §10–§11 and §15.
//! * `ckpt [args...]` — checkpoint tooling: `verify <path>` fully checks
//!   one `.elck` file or a whole store directory, `ls <dir>` lists a
//!   store, `bench` measures checkpoint size and save/restore time.
//!   Arguments pass through to the `ckpt` binary; see DESIGN.md §11.
//!
//! The exact invocations these commands issue are documented in DESIGN.md
//! ("Safety & analysis architecture").

#![forbid(unsafe_code)]

use xtask::{analyze, hash, lint};

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn repo_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the repo root is the parent of the
    // manifest dir.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask must live one level below the repo root")
        .to_path_buf()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         lint                 run custom source lints + vendor drift check + analyzer\n  \
         analyze [--update-baseline]  token-level workspace analysis vs the\n                       \
         analysis-baseline.toml ratchet\n  \
         vendor-hash [--update]  verify (or regenerate) vendor/MANIFEST.fnv1a\n  \
         miri                 run the Miri unsafe-surface subset (needs nightly miri)\n  \
         tsan                 run the pool stress harness under ThreadSanitizer\n                       \
         (needs nightly + rust-src)\n  \
         sim [args...]        run the pipeline simulator (--sweep N | --seed N |\n                       \
         --crash-sweep N | --crash-seed N | --shard-sweep N |\n                       \
         --reshard-sweep N | --failover-sweep N | --netfault-sweep N)\n  \
         ckpt [args...]       checkpoint tooling (verify <path> | ls <dir> | bench)"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = repo_root();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&root),
        Some("analyze") => cmd_analyze(&root, args.iter().any(|a| a == "--update-baseline")),
        Some("vendor-hash") => cmd_vendor_hash(&root, args.iter().any(|a| a == "--update")),
        Some("miri") => cmd_miri(&root),
        Some("tsan") => cmd_tsan(&root),
        Some("sim") => cmd_sim(&root, &args[1..]),
        Some("ckpt") => cmd_ckpt(&root, &args[1..]),
        Some("help") | None => usage(),
        Some(other) => {
            eprintln!("error: unknown xtask command `{other}`\n");
            usage()
        }
    }
}

fn cmd_lint(root: &Path) -> ExitCode {
    let violations = lint::run(root);
    for v in &violations {
        eprintln!("{v}");
    }
    // `lint` is an alias for old-rule parity *plus* the token-level
    // engine: the legacy rules and their stronger ports run in lockstep.
    let analyze_ok = analyze::run(root, false).is_ok();
    if violations.is_empty() && analyze_ok {
        println!("xtask lint: clean");
        return ExitCode::SUCCESS;
    }
    if !violations.is_empty() {
        eprintln!("xtask lint: {} violation(s)", violations.len());
    }
    ExitCode::FAILURE
}

fn cmd_analyze(root: &Path, update_baseline: bool) -> ExitCode {
    match analyze::run(root, update_baseline) {
        Ok(()) => ExitCode::SUCCESS,
        Err(_) => ExitCode::FAILURE,
    }
}

fn cmd_vendor_hash(root: &Path, do_update: bool) -> ExitCode {
    if do_update {
        match hash::update(root) {
            Ok(n) => {
                println!("xtask vendor-hash: wrote {} ({n} files)", hash::MANIFEST);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xtask vendor-hash: writing {} failed: {e}", hash::MANIFEST);
                ExitCode::FAILURE
            }
        }
    } else {
        let violations = hash::drift_violations(root);
        if violations.is_empty() {
            println!("xtask vendor-hash: vendor/ matches {}", hash::MANIFEST);
            return ExitCode::SUCCESS;
        }
        for v in &violations {
            eprintln!("{v}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_sim(root: &Path, pass_through: &[String]) -> ExitCode {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .args(["run", "--quiet", "--release", "-p", "el-sim", "--bin", "sim", "--"])
        .args(pass_through);
    match status_of(&mut cmd) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask sim: spawning cargo failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_ckpt(root: &Path, pass_through: &[String]) -> ExitCode {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .args(["run", "--quiet", "--release", "-p", "el-pipeline", "--bin", "ckpt", "--"])
        .args(pass_through);
    match status_of(&mut cmd) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask ckpt: spawning cargo failed: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Analysis runners (miri / tsan)
// ---------------------------------------------------------------------------

/// Runs `cmd`, returns whether it exited successfully; `Err` if it could
/// not be spawned at all.
fn status_of(cmd: &mut Command) -> std::io::Result<bool> {
    cmd.status().map(|s| s.success())
}

/// True when `rustup run nightly <probe...>` exits 0 with output captured.
fn nightly_has(probe: &[&str]) -> bool {
    Command::new("rustup")
        .args(["run", "nightly"])
        .args(probe)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn skip(what: &str, how: &str) -> ExitCode {
    eprintln!(
        "xtask {what}: SKIPPED — {how}.\n\
         This is an environment limitation, not a pass: rerun where the \
         toolchain component is available (CI runs it on nightly)."
    );
    ExitCode::SUCCESS
}

fn cmd_miri(root: &Path) -> ExitCode {
    if !nightly_has(&["cargo", "miri", "--version"]) {
        return skip(
            "miri",
            "the nightly `miri` component is not installed \
             (`rustup component add miri --toolchain nightly`)",
        );
    }
    // Two pool configurations: RAYON_NUM_THREADS=1 keeps the pool
    // worker-free, so the caller-drains-queue protocol runs deterministically
    // and leak checking stays strict; a second pass with workers enabled
    // exercises cross-thread dispatch/latch ordering and needs
    // -Zmiri-ignore-leaks because pool workers are detached by design.
    let runs: &[(&str, &str, &[&str])] = &[
        (
            "pool protocol, caller-drain (RAYON_NUM_THREADS=1)",
            "1",
            &["test", "-p", "rayon", "--lib", "--tests"],
        ),
        (
            "pool protocol, 3 workers (leak check off: detached workers)",
            "3",
            &["test", "-p", "rayon", "--lib", "--tests"],
        ),
        (
            "tensor unsafe surface (portable kernel, miri-sized blocks)",
            "1",
            &["test", "-p", "el-tensor", "--lib", "micro::", "batched::"],
        ),
    ];
    for (what, threads, args) in runs {
        println!("xtask miri: {what}");
        let mut cmd = Command::new("rustup");
        cmd.args(["run", "nightly", "cargo", "miri"])
            .args(*args)
            .current_dir(root)
            .env("RAYON_NUM_THREADS", threads)
            .env("EL_FORCE_PORTABLE", "1")
            .env("MIRIFLAGS", if *threads == "1" { "" } else { "-Zmiri-ignore-leaks" });
        match status_of(&mut cmd) {
            Ok(true) => {}
            Ok(false) => {
                eprintln!("xtask miri: FAILED during `{what}`");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask miri: could not spawn rustup: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("xtask miri: clean");
    ExitCode::SUCCESS
}

fn cmd_tsan(root: &Path) -> ExitCode {
    if !nightly_has(&["rustc", "--version"]) {
        return skip("tsan", "no nightly toolchain installed");
    }
    // -Zsanitizer=thread requires rebuilding std with the sanitizer
    // (-Zbuild-std), which needs the rust-src component.
    let src_installed = Command::new("rustup")
        .args(["component", "list", "--installed", "--toolchain", "nightly"])
        .output()
        .map(|o| o.status.success() && String::from_utf8_lossy(&o.stdout).contains("rust-src"))
        .unwrap_or(false);
    if !src_installed {
        return skip(
            "tsan",
            "the nightly `rust-src` component is not installed \
             (`rustup component add rust-src --toolchain nightly`)",
        );
    }
    let host = Command::new("rustc").args(["-vV"]).output().ok().and_then(|o| {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .find_map(|l| l.strip_prefix("host: ").map(str::to_string))
    });
    let Some(host) = host else {
        eprintln!("xtask tsan: could not determine the host target triple");
        return ExitCode::FAILURE;
    };
    println!("xtask tsan: pool stress harness on {host} (1/2/4/8-thread subprocesses)");
    let mut cmd = Command::new("rustup");
    cmd.args(["run", "nightly", "cargo", "test"])
        .args(["-Zbuild-std", "--target", &host])
        .args(["-p", "rayon", "--test", "stress"])
        .current_dir(root)
        .env("RUSTFLAGS", "-Zsanitizer=thread")
        .env("CARGO_TARGET_DIR", root.join("target/tsan"))
        // TSan reports must fail the run, not just print.
        .env("TSAN_OPTIONS", "halt_on_error=1");
    match status_of(&mut cmd) {
        Ok(true) => {
            println!("xtask tsan: clean");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("xtask tsan: FAILED (test failure or data race report)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask tsan: could not spawn rustup: {e}");
            ExitCode::FAILURE
        }
    }
}
