//! Vendored-crate drift check.
//!
//! `vendor/` holds frozen API-compatible stand-ins (see `vendor/README.md`);
//! edits there must be deliberate and reviewed as such. This module keeps a
//! content-hash manifest at `vendor/MANIFEST.fnv1a` — one sorted line per
//! file, `{fnv1a64:016x}  {repo-relative path}` — and reports any file
//! whose hash differs, is missing, or is new.
//!
//! FNV-1a is not cryptographic; the manifest defends against *accidental*
//! drift (a stray edit riding along in a big diff), not adversaries — an
//! adversary could just regenerate the manifest anyway.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lint::Violation;

pub const MANIFEST: &str = "vendor/MANIFEST.fnv1a";

/// FNV-1a, 64-bit.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            // Skip build artifacts should any ever appear under vendor/.
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&p, out);
        } else if p.is_file() {
            out.push(p);
        }
    }
}

/// Hashes every file under `vendor/` (except the manifest itself), keyed by
/// repo-relative path with `/` separators.
pub fn current_hashes(root: &Path) -> BTreeMap<String, u64> {
    let mut files = Vec::new();
    walk(&root.join("vendor"), &mut files);
    let mut map = BTreeMap::new();
    for p in files {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if rel == MANIFEST {
            continue;
        }
        if let Ok(bytes) = std::fs::read(&p) {
            map.insert(rel, fnv1a64(&bytes));
        }
    }
    map
}

fn parse_manifest(content: &str) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((hash, path)) = line.split_once("  ") {
            if let Ok(h) = u64::from_str_radix(hash, 16) {
                map.insert(path.to_string(), h);
            }
        }
    }
    map
}

fn render_manifest(map: &BTreeMap<String, u64>) -> String {
    let mut s = String::from(
        "# FNV-1a 64 content hashes of vendor/ (regenerate: cargo xtask vendor-hash --update)\n",
    );
    for (path, hash) in map {
        s.push_str(&format!("{hash:016x}  {path}\n"));
    }
    s
}

/// Regenerates the manifest from the working tree.
pub fn update(root: &Path) -> std::io::Result<usize> {
    let map = current_hashes(root);
    std::fs::write(root.join(MANIFEST), render_manifest(&map))?;
    Ok(map.len())
}

/// Compares the working tree against the manifest; one violation per
/// changed, missing or untracked file (or for a missing manifest).
pub fn drift_violations(root: &Path) -> Vec<Violation> {
    let manifest_path = root.join(MANIFEST);
    let Ok(content) = std::fs::read_to_string(&manifest_path) else {
        return vec![Violation {
            file: PathBuf::from(MANIFEST),
            line: 0,
            rule: "vendor-drift",
            msg: "manifest missing; run `cargo xtask vendor-hash --update`".into(),
        }];
    };
    let recorded = parse_manifest(&content);
    let actual = current_hashes(root);
    let mut out = Vec::new();
    for (path, hash) in &recorded {
        match actual.get(path) {
            None => out.push(Violation {
                file: PathBuf::from(path),
                line: 0,
                rule: "vendor-drift",
                msg: "tracked vendored file deleted (manifest stale?)".into(),
            }),
            Some(h) if h != hash => out.push(Violation {
                file: PathBuf::from(path),
                line: 0,
                rule: "vendor-drift",
                msg: format!(
                    "content changed (recorded {hash:016x}, actual {h:016x}); if intentional, \
                     run `cargo xtask vendor-hash --update` and review the manifest diff"
                ),
            }),
            Some(_) => {}
        }
    }
    for path in actual.keys() {
        if !recorded.contains_key(path) {
            out.push(Violation {
                file: PathBuf::from(path),
                line: 0,
                rule: "vendor-drift",
                msg: "untracked vendored file; run `cargo xtask vendor-hash --update`".into(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_roundtrip_and_drift_detection() {
        let dir = std::env::temp_dir().join(format!("xtask-hash-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("vendor/x/src")).unwrap();
        std::fs::write(dir.join("vendor/x/src/lib.rs"), "pub fn f() {}\n").unwrap();

        // Fresh manifest: clean.
        update(&dir).unwrap();
        assert!(drift_violations(&dir).is_empty());

        // Seeded drift: edit a tracked file → exactly one finding.
        std::fs::write(dir.join("vendor/x/src/lib.rs"), "pub fn f() { let _ = 1; }\n").unwrap();
        let v = drift_violations(&dir);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "vendor-drift");
        assert!(v[0].msg.contains("content changed"));

        // New untracked file also flagged.
        std::fs::write(dir.join("vendor/x/src/extra.rs"), "\n").unwrap();
        assert_eq!(drift_violations(&dir).len(), 2);

        // --update re-blesses the tree.
        update(&dir).unwrap();
        assert!(drift_violations(&dir).is_empty());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
