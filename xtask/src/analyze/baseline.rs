//! The ratcheted violation baseline.
//!
//! Findings are keyed line-number-independently by `(rule, file, context,
//! detail)` with a count, so reformatting or unrelated edits don't churn
//! the baseline, but adding a second identical violation in the same fn
//! does fail. The committed `analysis-baseline.toml` is the ratchet:
//!
//! - a finding **not** in the baseline (or exceeding its count) is a *new
//!   violation* → fail;
//! - a baseline row with **no** matching finding (or an inflated count)
//!   is *stale* → fail, forcing `--update-baseline` so fixes shrink the
//!   committed file and the codebase monotonically improves;
//! - findings covered by the baseline are tolerated (reported in the
//!   artifact, not fatal).
//!
//! The TOML subset is hand-rolled (xtask has no dependencies): an array
//! of `[[violation]]` tables with bare `key = "value"` / `key = int`
//! pairs, written sorted so regeneration is deterministic.

use super::Finding;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Baseline key -> tolerated count.
pub type Baseline = BTreeMap<(String, String, String, String), usize>;

/// Result of diffing current findings against the baseline.
pub struct Diff {
    /// Human-readable blocking problems (new violations, stale rows).
    pub problems: Vec<String>,
    pub tolerated: usize,
    pub new_count: usize,
    pub stale_count: usize,
}

fn key(f: &Finding) -> (String, String, String, String) {
    (f.rule.clone(), f.file.clone(), f.context.clone(), f.detail.clone())
}

/// Groups findings into baseline form.
pub fn keyed(findings: &[Finding]) -> Baseline {
    let mut out = Baseline::new();
    for f in findings {
        *out.entry(key(f)).or_insert(0) += 1;
    }
    out
}

/// Renders findings as a sorted `analysis-baseline.toml`.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# Tolerated pre-existing findings for `cargo xtask analyze` (the ratchet).\n\
         # New violations fail the build; fixing one requires shrinking this file\n\
         # via `cargo xtask analyze --update-baseline`. Keys are line-independent:\n\
         # (rule, file, enclosing context, detail) with an occurrence count.\n",
    );
    for ((rule, file, context, detail), count) in keyed(findings) {
        out.push_str("\n[[violation]]\n");
        out.push_str(&format!("rule = \"{}\"\n", escape(&rule)));
        out.push_str(&format!("file = \"{}\"\n", escape(&file)));
        out.push_str(&format!("context = \"{}\"\n", escape(&context)));
        out.push_str(&format!("detail = \"{}\"\n", escape(&detail)));
        out.push_str(&format!("count = {count}\n"));
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Loads the baseline; a missing file is an empty baseline (fresh repos
/// start strict).
pub fn load(path: &Path) -> Baseline {
    match fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(_) => Baseline::new(),
    }
}

/// Parses the `[[violation]]` subset written by [`render`].
pub fn parse(text: &str) -> Baseline {
    let mut out = Baseline::new();
    let mut cur: BTreeMap<String, String> = BTreeMap::new();
    let mut in_violation = false;
    let flush = |cur: &mut BTreeMap<String, String>, out: &mut Baseline| {
        if cur.is_empty() {
            return;
        }
        let get = |k: &str| cur.get(k).cloned().unwrap_or_default();
        let count = cur.get("count").and_then(|c| c.parse().ok()).unwrap_or(1);
        let k = (get("rule"), get("file"), get("context"), get("detail"));
        *out.entry(k).or_insert(0) += count;
        cur.clear();
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[violation]]" {
            flush(&mut cur, &mut out);
            in_violation = true;
            continue;
        }
        if line.starts_with('[') {
            flush(&mut cur, &mut out);
            in_violation = false;
            continue;
        }
        if !in_violation {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let k = line[..eq].trim().to_string();
            let v = line[eq + 1..].trim();
            let v = v
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(unescape)
                .unwrap_or_else(|| v.to_string());
            cur.insert(k, v);
        }
    }
    flush(&mut cur, &mut out);
    out
}

/// Diffs current findings against the baseline; see module docs for the
/// ratchet rules.
pub fn check(findings: &[Finding], base: &Baseline) -> Diff {
    let cur = keyed(findings);
    let mut problems = Vec::new();
    let mut tolerated = 0usize;
    let mut new_count = 0usize;
    let mut stale_count = 0usize;

    for (k, &n) in &cur {
        let allowed = base.get(k).copied().unwrap_or(0);
        tolerated += n.min(allowed);
        if n > allowed {
            let extra = n - allowed;
            new_count += extra;
            // attach the full diagnostics (with chains) for the offending key
            for f in findings.iter().filter(|f| key(f) == *k).take(extra.max(1)) {
                problems.push(format!("NEW violation ({extra} over baseline {allowed}): {f}"));
            }
        }
    }
    for (k, &allowed) in base {
        let n = cur.get(k).copied().unwrap_or(0);
        if n < allowed {
            stale_count += allowed - n;
            problems.push(format!(
                "STALE baseline row (baseline {allowed}, found {n}): [{}] {} — context `{}`, detail `{}`; \
                 run `cargo xtask analyze --update-baseline` to shrink the ratchet",
                k.0, k.1, k.2, k.3
            ));
        }
    }
    Diff { problems, tolerated, new_count, stale_count }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, context: &str, detail: &str) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            context: context.into(),
            detail: detail.into(),
            line: 1,
            msg: format!("{rule} in {context}"),
            chain: vec!["root (a.rs:1)".into()],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let fs = vec![
            finding("panic-path", "crates/p/src/lib.rs", "run", "train reaches unwrap()"),
            finding("panic-path", "crates/p/src/lib.rs", "run", "train reaches unwrap()"),
            finding("env-registry", "crates/b/src/lib.rs", "", "unregistered EL_X"),
        ];
        let text = render(&fs);
        let parsed = parse(&text);
        assert_eq!(parsed, keyed(&fs));
        assert_eq!(
            parsed[&(
                "panic-path".into(),
                "crates/p/src/lib.rs".into(),
                "run".into(),
                "train reaches unwrap()".into()
            )],
            2
        );
    }

    #[test]
    fn clean_run_against_matching_baseline() {
        let fs = vec![finding("r", "f", "c", "d")];
        let base = keyed(&fs);
        let d = check(&fs, &base);
        assert!(d.problems.is_empty(), "{:?}", d.problems);
        assert_eq!(d.tolerated, 1);
    }

    #[test]
    fn new_violation_fails() {
        let base = keyed(&[finding("r", "f", "c", "d")]);
        let fs = vec![finding("r", "f", "c", "d"), finding("r", "f", "c2", "d")];
        let d = check(&fs, &base);
        assert_eq!(d.new_count, 1);
        assert!(d.problems.iter().any(|p| p.contains("NEW violation")), "{:?}", d.problems);
        // the diagnostic carries the chain
        assert!(d.problems.iter().any(|p| p.contains("root (a.rs:1)")), "{:?}", d.problems);
    }

    #[test]
    fn count_growth_on_same_key_fails() {
        let base = keyed(&[finding("r", "f", "c", "d")]);
        let fs = vec![finding("r", "f", "c", "d"), finding("r", "f", "c", "d")];
        let d = check(&fs, &base);
        assert_eq!(d.new_count, 1);
    }

    #[test]
    fn fixed_violation_makes_baseline_stale() {
        let base = keyed(&[finding("r", "f", "c", "d")]);
        let d = check(&[], &base);
        assert_eq!(d.stale_count, 1);
        assert!(d.problems.iter().any(|p| p.contains("STALE baseline row")), "{:?}", d.problems);
    }

    #[test]
    fn empty_baseline_is_strict() {
        let fs = vec![finding("r", "f", "c", "d")];
        let d = check(&fs, &Baseline::new());
        assert_eq!(d.new_count, 1);
        assert!(!d.problems.is_empty());
    }

    #[test]
    fn escaped_quotes_roundtrip() {
        let f = finding("r", "f", "c", "reaches `panic!(\"boom\")`");
        let parsed = parse(&render(std::slice::from_ref(&f)));
        assert_eq!(parsed, keyed(&[f]));
    }
}
