//! The legacy `xtask lint` rules, re-implemented on the token stream.
//!
//! Same conventions, stronger matching: the regex/stripped-line versions
//! in [`crate::lint`] can be fooled by multi-line raw strings containing
//! Rust code (their documented blind spot) and accept a same-line
//! `"SAFETY"` *string* as a justification. Here every trigger is a token
//! and every justification is a comment token, so strings and comments
//! can neither trigger nor suppress a rule.
//!
//! Rules ported (the crate-attribute and vendor-drift checks stay in
//! `lint`, which `cargo xtask lint` still runs for parity):
//!
//! - `safety-comment` — the unsafe keyword at a code position needs an
//!   adjacent `// SAFETY:` comment (same line, or directly above across
//!   comment/attribute lines).
//! - `lock-unwrap` — `.lock()/.read()/.write()` immediately unwrapped in
//!   non-test library code.
//! - `instant-now` — `Instant::now()` in library crates outside
//!   `src/timing.rs`/`src/bin` needs an adjacent `// TIMING:` comment.
//! - `target-feature-contract` — `#[target_feature]` fns must carry a
//!   `# Safety` doc heading that names the caller's obligation.

use super::parser::{parse_file, ParsedFile};
use super::Finding;
use crate::lint::{package_dirs, package_units};
use std::fs;
use std::path::Path;

/// Strips doc-comment decoration (`/`, `!`, `*`) and leading whitespace
/// from a comment token's text.
fn comment_body(text: &str) -> &str {
    text.trim_start().trim_start_matches(['/', '!', '*']).trim_start()
}

fn is_safety_comment(text: &str) -> bool {
    let b = comment_body(text);
    b.starts_with("SAFETY") || b.starts_with("# Safety")
}

fn is_timing_comment(text: &str) -> bool {
    comment_body(text).starts_with("TIMING")
}

/// Adjacency walk shared by `safety-comment` and `instant-now`: justified
/// when `pred` holds for a comment on `line` itself, or on a comment-only
/// line walked up from it across contiguous comment/attribute lines. A
/// code line stops the walk — a trailing comment on someone else's
/// statement is not an adjacent justification.
fn justified(pf: &ParsedFile, line: u32, pred: impl Fn(&str) -> bool) -> bool {
    if pf.comment_lines.get(&line).is_some_and(|c| pred(c)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if pf.is_comment_only_line(l) {
            if pred(&pf.comment_lines[&l]) {
                return true;
            }
            continue;
        }
        if pf.attr_lines.contains(&l) {
            continue;
        }
        return false;
    }
    false
}

/// `safety-comment` over one parsed file.
pub fn safety_findings(pf: &ParsedFile) -> Vec<Finding> {
    let kw = ["un", "safe"].concat();
    pf.unsafe_lines
        .iter()
        .filter(|&&l| !justified(pf, l, |c| c.contains("SAFETY") || is_safety_comment(c)))
        .map(|&l| Finding {
            rule: "safety-comment".into(),
            file: pf.path.clone(),
            context: enclosing_fn(pf, l),
            detail: format!("{kw} keyword"),
            line: l,
            msg: format!("`{kw}` without an adjacent `// SAFETY:` justification"),
            chain: Vec::new(),
        })
        .collect()
}

/// `lock-unwrap` over one parsed file.
pub fn lock_findings(pf: &ParsedFile) -> Vec<Finding> {
    pf.locks
        .iter()
        .filter(|l| l.unwrapped && !l.in_test)
        .map(|l| Finding {
            rule: "lock-unwrap".into(),
            file: pf.path.clone(),
            context: enclosing_fn(pf, l.line),
            detail: format!(".{}().unwrap", l.method),
            line: l.line,
            msg: format!(
                "`.{}()` result unwrapped in library code; handle poisoning explicitly \
                 (e.g. `unwrap_or_else(PoisonError::into_inner)`)",
                l.method
            ),
            chain: Vec::new(),
        })
        .collect()
}

/// `instant-now` over one parsed file.
pub fn instant_findings(pf: &ParsedFile) -> Vec<Finding> {
    pf.instant_now
        .iter()
        .filter(|(l, in_test)| !in_test && !justified(pf, *l, is_timing_comment))
        .map(|(l, _)| Finding {
            rule: "instant-now".into(),
            file: pf.path.clone(),
            context: enclosing_fn(pf, *l),
            detail: "Instant::now".into(),
            line: *l,
            msg: "`Instant::now()` in library code; use the `timing` module, or justify \
                  with an adjacent `// TIMING:` comment"
                .into(),
            chain: Vec::new(),
        })
        .collect()
}

/// `target-feature-contract` over one parsed file: the fn's attached docs
/// must contain a `# Safety` heading and name the caller.
pub fn target_feature_findings(pf: &ParsedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &pf.fns {
        if !f.has_target_feature() {
            continue;
        }
        let has_heading = f.docs.iter().any(|d| comment_body(d).starts_with("# Safety"));
        let names_caller = f.docs.iter().any(|d| d.to_ascii_lowercase().contains("caller"));
        if !(has_heading && names_caller) {
            out.push(Finding {
                rule: "target-feature-contract".into(),
                file: pf.path.clone(),
                context: f.qualified.clone(),
                detail: "missing caller obligation".into(),
                line: f.line,
                msg: "`#[target_feature]` function without a `# Safety` doc section \
                      naming the caller's obligation (the CPU-support precondition \
                      binds every call site)"
                    .into(),
                chain: Vec::new(),
            });
        }
    }
    out
}

/// Finds the qualified name of the fn whose span covers `line` (for the
/// baseline key); empty when outside any fn.
fn enclosing_fn(pf: &ParsedFile, line: u32) -> String {
    pf.fns
        .iter()
        .filter(|f| f.line <= line && line <= f.end_line.max(f.line))
        .min_by_key(|f| f.end_line.max(f.line) - f.line)
        .map(|f| f.qualified.clone())
        .unwrap_or_default()
}

/// Runs the ported rules over every package in the repo, mirroring the
/// legacy driver's scopes: safety + target-feature everywhere, lock-unwrap
/// in `src/`, instant-now in `crates/*` lib sources outside `src/bin` and
/// `src/timing.rs`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let rel = |p: &Path| p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/");
    for pkg in package_dirs(root) {
        let lib_crate = pkg.starts_with(root.join("crates"));
        for unit in package_units(&pkg) {
            let in_src = unit.root.parent().is_some_and(|d| d.ends_with("src"))
                || unit.root.parent().is_some_and(|d| d.ends_with("bin"));
            for f in &unit.files {
                let Ok(content) = fs::read_to_string(f) else { continue };
                let pf = parse_file(&rel(f), &content);
                out.extend(safety_findings(&pf));
                out.extend(target_feature_findings(&pf));
                if in_src {
                    out.extend(lock_findings(&pf));
                    let in_bin = f.starts_with(pkg.join("src").join("bin"));
                    if lib_crate && !in_bin && !f.ends_with("src/timing.rs") {
                        out.extend(instant_findings(&pf));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parser::parse_file;

    fn kw() -> String {
        ["un", "safe"].concat()
    }

    #[test]
    fn safety_string_cannot_suppress() {
        // The legacy rule accepted any raw-line "SAFETY" occurrence — even
        // inside a string literal on the same line. Token-level must not.
        let src = format!("pub fn f() {{ let s = \"SAFETY\"; {} {{ }} }}", kw());
        let pf = parse_file("a.rs", &src);
        let v = safety_findings(&pf);
        assert_eq!(v.len(), 1, "string must not justify: {v:?}");
    }

    #[test]
    fn safety_comment_same_line_or_above() {
        let above = format!("pub fn f() {{\n    // SAFETY: checked\n    {} {{ }}\n}}", kw());
        assert!(safety_findings(&parse_file("a.rs", &above)).is_empty());
        let trailing = format!("pub fn f() {{ {} {{ }} /* SAFETY: checked */ }}", kw());
        assert!(safety_findings(&parse_file("a.rs", &trailing)).is_empty());
        let blank_breaks = format!("pub fn f() {{\n    // SAFETY: stale\n\n    {} {{ }}\n}}", kw());
        assert_eq!(safety_findings(&parse_file("a.rs", &blank_breaks)).len(), 1);
    }

    #[test]
    fn unsafe_in_raw_string_is_not_code() {
        // The legacy scanner's documented blind spot: multi-line raw
        // strings containing Rust code.
        let src = format!("pub fn f() {{ let s = r#\"\n{} {{ }}\n\"#; drop(s); }}", kw());
        assert!(safety_findings(&parse_file("a.rs", &src)).is_empty());
    }

    #[test]
    fn lock_unwrap_token_rule() {
        let src = "pub fn f(m: &std::sync::Mutex<u32>) { let _g = m.lock().unwrap(); }";
        let v = lock_findings(&parse_file("a.rs", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].context, "f");
        let ok = "pub fn f(m: &std::sync::Mutex<u32>) { let _g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); }";
        assert!(lock_findings(&parse_file("a.rs", ok)).is_empty());
        let in_str = "pub fn f() { let s = \".lock().unwrap()\"; drop(s); }";
        assert!(lock_findings(&parse_file("a.rs", in_str)).is_empty());
    }

    #[test]
    fn instant_now_token_rule() {
        let bad = "pub fn f() { let _t = Instant::now(); }";
        assert_eq!(instant_findings(&parse_file("a.rs", bad)).len(), 1);
        let good =
            "pub fn f() {\n    // TIMING: cold startup stamp\n    let _t = Instant::now();\n}";
        assert!(instant_findings(&parse_file("a.rs", good)).is_empty());
        let prose = "// mentions Instant::now() in prose\npub fn f() {}";
        assert!(instant_findings(&parse_file("a.rs", prose)).is_empty());
    }

    #[test]
    fn target_feature_contract_token_rule() {
        let bare = format!("#[target_feature(enable = \"avx2\")]\npub {} fn k() {{}}", kw());
        let pf = parse_file("k.rs", &bare);
        let v = target_feature_findings(&pf);
        assert_eq!(v.len(), 1, "{:?}", pf.fns);
        // heading without naming the caller is still a violation
        let headed = format!(
            "/// # Safety\n/// avx2 must exist.\n#[target_feature(enable = \"avx2\")]\npub {} fn k() {{}}",
            kw()
        );
        assert_eq!(target_feature_findings(&parse_file("k.rs", &headed)).len(), 1);
        let good = format!(
            "/// # Safety\n/// The caller must verify AVX2 support first.\n#[target_feature(enable = \"avx2\")]\npub {} fn k() {{}}",
            kw()
        );
        assert!(target_feature_findings(&parse_file("k.rs", &good)).is_empty());
        // attribute text inside a string is not an attribute
        let quoted = "pub fn f() { let s = \"#[target_feature(enable)]\"; drop(s); }";
        assert!(target_feature_findings(&parse_file("k.rs", quoted)).is_empty());
    }
}
