//! Zero-alloc reachability: fns annotated `// CONTRACT: zero-alloc` must
//! not transitively reach a curated list of definitely-allocating calls.
//!
//! The sink list is *curated*, not inferred: it names operations that
//! allocate on every call (`with_capacity`, `Box::new`, `collect`,
//! `vec!`, …). Amortized grow-only operations the hot path deliberately
//! uses on recycled buffers — `resize`, `reserve`, `push`, `extend`,
//! `clone` — are excluded by design; those are covered by the dynamic
//! counting-allocator tests (DESIGN.md §3), which verify steady-state
//! allocation counts the static pass cannot. Vendor crates (rayon et al.)
//! are outside the call graph; the boundary is documented in DESIGN.md
//! §12.

use super::model::{FnId, Workspace};
use super::parser::{Call, CallKind};
use super::Finding;
use std::collections::HashMap;

/// Method/free call names that allocate on every call.
const ALLOC_NAMES: &[&str] =
    &["with_capacity", "to_vec", "to_owned", "to_string", "into_boxed_slice", "collect"];

/// `Type::new` constructors that always heap-allocate.
const ALLOC_QUALIFIED_NEW: &[&str] = &["Box", "Arc", "Rc"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Returns the sink label when `call` is an allocating call.
pub fn alloc_sink(call: &Call) -> Option<String> {
    match call.kind {
        CallKind::Macro => {
            ALLOC_MACROS.contains(&call.name.as_str()).then(|| format!("{}!", call.name))
        }
        CallKind::Qualified => {
            if call.name == "new"
                && call.qualifier.as_deref().is_some_and(|q| ALLOC_QUALIFIED_NEW.contains(&q))
            {
                return Some(format!("{}::new", call.qualifier.as_deref().unwrap_or("")));
            }
            if call.name == "from" && call.qualifier.as_deref() == Some("String") {
                return Some("String::from".into());
            }
            ALLOC_NAMES.contains(&call.name.as_str()).then(|| call.name.clone())
        }
        CallKind::Free | CallKind::Method => {
            ALLOC_NAMES.contains(&call.name.as_str()).then(|| call.name.clone())
        }
    }
}

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let roots: Vec<FnId> = ws
        .all_fns()
        .filter(|(_, f)| f.contracts.zero_alloc && !f.is_test)
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }

    let mut findings = Vec::new();
    // Analyze each root separately so the diagnostic chain starts at the
    // contract carrier (a shared BFS would attribute a sink to whichever
    // root reached it first).
    for root in roots {
        let reached = ws.reach(&[root]);
        let root_name = ws.fn_item(root).qualified.clone();
        // Deterministic order: sort reached fns by (file, line).
        let mut hit: Vec<(FnId, Option<(FnId, u32)>)> =
            reached.iter().map(|(k, v)| (*k, *v)).collect();
        hit.sort_by_key(|(id, _)| (ws.file(*id).path.clone(), ws.fn_item(*id).line));
        let reached_map: HashMap<FnId, Option<(FnId, u32)>> = reached;
        for (id, _) in hit {
            let item = ws.fn_item(id);
            for call in &item.calls {
                let Some(sink) = alloc_sink(call) else { continue };
                let mut chain: Vec<String> = ws
                    .chain_to(&reached_map, id)
                    .into_iter()
                    .map(|(name, file, line)| format!("{name} ({file}:{line})"))
                    .collect();
                chain.push(format!("-> {} ({}:{})", sink, ws.file(id).path, call.line));
                findings.push(Finding {
                    rule: "zero-alloc".into(),
                    file: ws.file(id).path.clone(),
                    context: item.qualified.clone(),
                    detail: format!("{root_name} reaches {sink}"),
                    line: call.line,
                    msg: format!(
                        "allocating call `{sink}` reachable from `// CONTRACT: zero-alloc` fn `{root_name}`"
                    ),
                    chain,
                });
            }
        }
    }
    findings.sort();
    findings.dedup_by(|a, b| {
        (&a.rule, &a.file, &a.context, &a.detail) == (&b.rule, &b.file, &b.context, &b.detail)
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::model::workspace_from_sources;

    #[test]
    fn direct_allocation_flagged() {
        let ws = workspace_from_sources(&[(
            "c",
            &[],
            &[(
                "crates/c/src/lib.rs",
                "// CONTRACT: zero-alloc\npub fn hot() { let v: Vec<u32> = Vec::with_capacity(8); drop(v); }\n",
            )],
        )]);
        let f = check(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("with_capacity"));
        assert_eq!(f[0].context, "hot");
    }

    #[test]
    fn two_hop_allocation_carries_chain() {
        let ws = workspace_from_sources(&[(
            "c",
            &[],
            &[(
                "crates/c/src/lib.rs",
                "// CONTRACT: zero-alloc\npub fn hot() { mid(); }\npub fn mid() { deep(); }\npub fn deep() { let b = Box::new(3u32); drop(b); }\n",
            )],
        )]);
        let f = check(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        let chain = f[0].chain.join(" | ");
        assert!(chain.contains("hot"), "{chain}");
        assert!(chain.contains("mid"), "{chain}");
        assert!(chain.contains("deep"), "{chain}");
        assert!(chain.contains("Box::new"), "{chain}");
    }

    #[test]
    fn recycled_buffer_ops_are_not_sinks() {
        let ws = workspace_from_sources(&[(
            "c",
            &[],
            &[(
                "crates/c/src/lib.rs",
                "// CONTRACT: zero-alloc\npub fn hot(buf: &mut Vec<u32>) { buf.resize(8, 0); buf.push(1); buf.reserve(4); buf.extend([2u32]); }\n",
            )],
        )]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn vec_macro_and_format_are_sinks() {
        let ws = workspace_from_sources(&[(
            "c",
            &[],
            &[(
                "crates/c/src/lib.rs",
                "// CONTRACT: zero-alloc\npub fn a() { let v = vec![1, 2]; drop(v); }\n// CONTRACT: zero-alloc\npub fn b() -> String { format!(\"x{}\", 1) }\n",
            )],
        )]);
        let f = check(&ws);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn unannotated_fn_not_checked() {
        let ws = workspace_from_sources(&[(
            "c",
            &[],
            &[("crates/c/src/lib.rs", "pub fn cold() { let v = vec![1]; drop(v); }\n")],
        )]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn alloc_in_string_or_comment_ignored() {
        let ws = workspace_from_sources(&[(
            "c",
            &[],
            &[(
                "crates/c/src/lib.rs",
                "// CONTRACT: zero-alloc\npub fn hot() { let s = \"Vec::with_capacity(8)\"; /* collect() */ drop(s); }\n",
            )],
        )]);
        assert!(check(&ws).is_empty());
    }
}
