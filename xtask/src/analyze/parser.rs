//! Lightweight item parser: turns a token stream into a per-file model.
//!
//! This is *not* a Rust parser. It tracks just enough structure for the
//! analyses: which `fn` encloses a given token, which `impl` block that fn
//! sits in (for `Type::method` qualification and `Self::` resolution),
//! whether a scope is test-only (`#[cfg(test)]` mod or `#[test]` fn), plus
//! inventories of call sites, panic sites, env-var reads, lock acquisitions
//! and `Instant::now` uses. Everything is matched on tokens, so string and
//! comment contents can neither trigger nor suppress a rule.
//!
//! Line-adjacency walks (contract comments, `PANIC-OK`, the lint ports)
//! use three pre-computed per-line maps: `comment_lines` (comment text by
//! line), `attr_lines` (lines covered by `#[…]` groups, transparent to
//! walks), and `code_lines` (lines carrying code tokens, which *stop*
//! walks — a trailing comment on someone else's statement is not an
//! adjacent justification).

use super::lexer::{lex, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)` — unqualified.
    Free,
    /// `Type::foo(…)` / `module::foo(…)` — `qualifier` holds the segment
    /// immediately before the final `::`.
    Qualified,
    /// `recv.foo(…)` — method syntax; receiver type unknown.
    Method,
    /// `foo!(…)` — macro invocation.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub kind: CallKind,
    pub name: String,
    /// Last path segment before the call name (`Qualified` only).
    pub qualifier: Option<String>,
    pub line: u32,
}

/// Kind of potential panic at a panic site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    Unwrap,
    Expect,
    /// `panic!` / `todo!` / `unimplemented!` / `unreachable!`.
    Macro,
}

impl PanicKind {
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap()",
            PanicKind::Expect => "expect()",
            PanicKind::Macro => "panic-family macro",
        }
    }
}

/// A call that can panic, with its allowlist state.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub kind: PanicKind,
    /// Macro name for `PanicKind::Macro` (`panic`, `todo`, …).
    pub macro_name: Option<String>,
    pub line: u32,
    /// `Some(reason)` when a `// PANIC-OK: <reason>` comment is adjacent
    /// (same line, or walking up over comment/attribute lines).
    pub allow_reason: Option<String>,
}

/// `std::env::var("NAME")` (or `var_os`) with a literal name.
#[derive(Debug, Clone)]
pub struct EnvRead {
    pub name: String,
    pub line: u32,
}

/// `.lock()` / `.read()` / `.write()` call, tracking whether the returned
/// guard is immediately unwrapped.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub method: String,
    pub line: u32,
    pub unwrapped: bool,
    /// Inside `#[cfg(test)]` or a `#[test]` fn.
    pub in_test: bool,
}

/// Contract annotations recognized above a function.
#[derive(Debug, Clone, Default)]
pub struct Contracts {
    /// `// CONTRACT: zero-alloc`
    pub zero_alloc: bool,
    /// `// CONTRACT: panic-free`
    pub panic_free: bool,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// `Type::name` when declared inside `impl Type`, else `name`.
    pub qualified: String,
    /// Enclosing `impl` type, if any.
    pub impl_type: Option<String>,
    pub line: u32,
    pub end_line: u32,
    /// Attribute text, whitespace-normalized (e.g. `cfg(test)`,
    /// `target_feature(enable="avx2")`).
    pub attrs: Vec<String>,
    /// Doc/contract comment text lines attached above the fn.
    pub docs: Vec<String>,
    pub contracts: Contracts,
    /// Declared inside `#[cfg(test)]` mod / marked `#[test]`.
    pub is_test: bool,
    /// Declared with the unsafe keyword.
    pub is_unsafe: bool,
    /// Body present (not a trait-method signature).
    pub has_body: bool,
    pub calls: Vec<Call>,
    pub panic_sites: Vec<PanicSite>,
}

impl FnItem {
    /// True when the attr list contains `target_feature(...)`.
    pub fn has_target_feature(&self) -> bool {
        self.attrs.iter().any(|a| a.starts_with("target_feature"))
    }
}

/// Everything the analyses need from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    pub fns: Vec<FnItem>,
    pub env_reads: Vec<EnvRead>,
    pub locks: Vec<LockSite>,
    /// Lines with `Instant::now()` calls, with test-scope flag.
    pub instant_now: Vec<(u32, bool)>,
    /// Lines where the unsafe keyword appears at a code position.
    pub unsafe_lines: Vec<u32>,
    /// Comment text by line (first comment starting on/covering that
    /// line). Multi-line block comments cover their whole span.
    pub comment_lines: BTreeMap<u32, String>,
    /// Lines covered by attributes (`#[…]` / `#![…]`), transparent to
    /// adjacency walks.
    pub attr_lines: BTreeSet<u32>,
    /// Lines carrying at least one non-comment token.
    pub code_lines: BTreeSet<u32>,
    /// Outer attribute groups by *end* line: `end -> [(start, text)]`.
    attrs_by_end: BTreeMap<u32, Vec<(u32, String)>>,
}

impl ParsedFile {
    /// Line holds a comment and no code (attr lines are code lines).
    pub fn is_comment_only_line(&self, line: u32) -> bool {
        self.comment_lines.contains_key(&line) && !self.code_lines.contains(&line)
    }

    /// Outer attributes attached to an item starting at `line`: walks up
    /// over attribute groups and comment-only lines.
    pub fn attrs_above(&self, line: u32) -> Vec<String> {
        let mut attrs = Vec::new();
        let mut l = line;
        while l > 1 {
            l -= 1;
            if let Some(groups) = self.attrs_by_end.get(&l) {
                for (start, text) in groups.iter().rev() {
                    attrs.push(text.clone());
                    l = l.min(*start);
                }
                continue;
            }
            if self.is_comment_only_line(l) || self.attr_lines.contains(&l) {
                continue;
            }
            break;
        }
        attrs.reverse();
        attrs
    }
}

/// Assembled so this file passes the repo's own keyword lint.
fn unsafe_kw() -> String {
    ["un", "safe"].concat()
}

const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "use", "where",
    "while", "async", "await",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s) || s == unsafe_kw()
}

#[derive(Debug, Clone)]
enum Scope {
    /// `impl Type { … }` — brace depth at entry, extracted type name.
    Impl(usize, String),
    /// `mod m { … }` under `#[cfg(test)]`.
    TestMod(usize),
    /// Function body: index into `out.fns`, depth of its opening brace.
    Fn(usize, usize),
    /// Macro invocation body we skip call collection in (`debug_assert*!`
    /// with a `{…}` body).
    DebugAssert(usize),
}

pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let toks = lex(src);
    let mut out = ParsedFile { path: path.to_string(), ..Default::default() };

    // Pre-pass 1: comment text and code lines.
    for t in &toks {
        if matches!(t.kind, TokKind::Comment | TokKind::DocComment) {
            for line in t.line..=t.end_line {
                out.comment_lines.entry(line).or_insert_with(|| t.text.clone());
            }
        } else {
            for line in t.line..=t.end_line {
                out.code_lines.insert(line);
            }
        }
    }

    // Pre-pass 2: attribute groups. `#` `[` … `]` is an outer attribute
    // (attached to the following item); `#` `!` `[` … `]` is inner
    // (transparent to walks, attached to nothing).
    collect_attrs(&toks, &mut out);

    Parser { toks: &toks, i: 0, depth: 0, scopes: Vec::new(), out: &mut out }.run();
    out
}

fn collect_attrs(toks: &[Tok], out: &mut ParsedFile) {
    let code_at = |mut i: usize| -> Option<usize> {
        while let Some(t) = toks.get(i) {
            if matches!(t.kind, TokKind::Comment | TokKind::DocComment) {
                i += 1;
            } else {
                return Some(i);
            }
        }
        None
    };
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Punct && t.text == "#") {
            i += 1;
            continue;
        }
        let Some(j) = code_at(i + 1) else { break };
        let (inner, open_idx) = if toks[j].text == "!" {
            match code_at(j + 1) {
                Some(k) if toks[k].text == "[" => (true, k),
                _ => {
                    i += 1;
                    continue;
                }
            }
        } else if toks[j].text == "[" {
            (false, j)
        } else {
            i += 1;
            continue;
        };
        // join tokens to the matching `]`
        let mut depth = 0i32;
        let mut text = String::new();
        let mut k = open_idx;
        let mut end_line = t.line;
        let mut closed = false;
        while let Some(u) = toks.get(k) {
            match u.kind {
                TokKind::Punct if u.text == "[" => {
                    depth += 1;
                    if depth > 1 {
                        text.push('[');
                    }
                }
                TokKind::Punct if u.text == "]" => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = u.end_line;
                        closed = true;
                        break;
                    }
                    text.push(']');
                }
                TokKind::Comment | TokKind::DocComment => {}
                TokKind::Str => {
                    text.push('"');
                    text.push_str(&u.text);
                    text.push('"');
                }
                _ => text.push_str(&u.text),
            }
            k += 1;
        }
        if !closed {
            break;
        }
        for l in t.line..=end_line {
            out.attr_lines.insert(l);
        }
        if !inner {
            out.attrs_by_end.entry(end_line).or_default().push((t.line, text));
        }
        i = k + 1;
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
    /// Current brace depth.
    depth: usize,
    scopes: Vec<Scope>,
    out: &'a mut ParsedFile,
}

impl<'a> Parser<'a> {
    /// Next code token at or after index `i` (skipping comments), or None.
    fn code_at(&self, mut i: usize) -> Option<(usize, &'a Tok)> {
        while let Some(t) = self.toks.get(i) {
            if matches!(t.kind, TokKind::Comment | TokKind::DocComment) {
                i += 1;
            } else {
                return Some((i, t));
            }
        }
        None
    }

    /// `off`-th code token after index `i` (0 = the one at/after `i`).
    fn code_ahead(&self, i: usize, off: usize) -> Option<&'a Tok> {
        let mut idx = i;
        for k in 0..=off {
            let (j, t) = self.code_at(idx)?;
            if k == off {
                return Some(t);
            }
            idx = j + 1;
        }
        None
    }

    /// Previous code token strictly before index `i`.
    fn code_before(&self, i: usize) -> Option<&'a Tok> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &self.toks[j];
            if !matches!(t.kind, TokKind::Comment | TokKind::DocComment) {
                return Some(t);
            }
        }
        None
    }

    /// Second-previous code token before index `i`.
    fn code_before2(&self, i: usize) -> Option<&'a Tok> {
        let mut j = i;
        let mut seen = 0;
        while j > 0 {
            j -= 1;
            let t = &self.toks[j];
            if !matches!(t.kind, TokKind::Comment | TokKind::DocComment) {
                seen += 1;
                if seen == 2 {
                    return Some(t);
                }
            }
        }
        None
    }

    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::Fn(idx, _) => Some(*idx),
            _ => None,
        })
    }

    fn current_impl_type(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::Impl(_, ty) => Some(ty.clone()),
            _ => None,
        })
    }

    fn in_test_scope(&self) -> bool {
        self.scopes.iter().any(|s| matches!(s, Scope::TestMod(_)))
    }

    fn in_debug_assert(&self) -> bool {
        self.scopes.iter().any(|s| matches!(s, Scope::DebugAssert(_)))
    }

    fn run(&mut self) {
        while self.i < self.toks.len() {
            let t = &self.toks[self.i];
            match t.kind {
                TokKind::Comment | TokKind::DocComment => {
                    self.i += 1;
                }
                TokKind::Punct if t.text == "{" => {
                    self.depth += 1;
                    self.i += 1;
                }
                TokKind::Punct if t.text == "}" => {
                    self.depth = self.depth.saturating_sub(1);
                    // close any scopes opened at this depth
                    while let Some(top) = self.scopes.last() {
                        let open = match top {
                            Scope::Impl(d, _)
                            | Scope::TestMod(d)
                            | Scope::Fn(_, d)
                            | Scope::DebugAssert(d) => *d,
                        };
                        if open > self.depth {
                            if let Some(Scope::Fn(idx, _)) = self.scopes.pop() {
                                self.out.fns[idx].end_line = t.line;
                            }
                        } else {
                            break;
                        }
                    }
                    self.i += 1;
                }
                TokKind::Ident if t.text == "impl" && self.current_fn().is_none() => {
                    self.impl_header();
                }
                TokKind::Ident if t.text == "mod" && self.current_fn().is_none() => {
                    self.mod_header();
                }
                TokKind::Ident if t.text == "fn" => {
                    self.fn_header();
                }
                TokKind::Ident if t.text == unsafe_kw() => {
                    self.out.unsafe_lines.push(t.line);
                    self.i += 1;
                }
                TokKind::Ident => {
                    self.ident_in_code();
                }
                _ => {
                    self.i += 1;
                }
            }
        }
        // close fns left open at EOF (unterminated input)
        let last_line = self.toks.last().map(|t| t.end_line).unwrap_or(1);
        for s in &self.scopes {
            if let Scope::Fn(idx, _) = s {
                if self.out.fns[*idx].end_line == 0 {
                    self.out.fns[*idx].end_line = last_line;
                }
            }
        }
    }

    /// Cursor on `impl`. Extracts the implemented type's head identifier:
    /// `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`, skipping
    /// `&`/`mut`/`dyn`. Pushes an `Impl` scope at its `{`.
    fn impl_header(&mut self) {
        let mut j = self.i + 1;
        // skip generic params `<…>`
        if let Some((k, t)) = self.code_at(j) {
            if t.text == "<" {
                let mut angle = 0i32;
                let mut m = k;
                while let Some((n, u)) = self.code_at(m) {
                    if u.text == "<" {
                        angle += 1;
                    } else if u.text == ">" {
                        angle -= 1;
                        if angle == 0 {
                            m = n + 1;
                            break;
                        }
                    } else if u.text == "{" || u.text == ";" {
                        break;
                    }
                    m = n + 1;
                }
                j = m;
            }
        }
        // Collect the head ident until `{`/`where`; a `for` restarts the
        // collection (the implemented type follows it).
        let mut head: Option<String> = None;
        let mut m = j;
        while let Some((n, t)) = self.code_at(m) {
            match t.kind {
                TokKind::Punct if t.text == "{" || t.text == ";" => break,
                TokKind::Ident if t.text == "for" => {
                    head = None;
                    m = n + 1;
                }
                TokKind::Ident if t.text == "where" => break,
                TokKind::Ident if !is_keyword(&t.text) && head.is_none() => {
                    head = Some(t.text.clone());
                    m = n + 1;
                }
                _ => m = n + 1,
            }
        }
        // advance to the `{` (or `;`) and open the scope
        while self.i < self.toks.len() {
            let t = &self.toks[self.i];
            if t.kind == TokKind::Punct && t.text == "{" {
                self.depth += 1;
                self.scopes.push(Scope::Impl(self.depth, head.unwrap_or_default()));
                self.i += 1;
                return;
            }
            if t.kind == TokKind::Punct && t.text == ";" {
                self.i += 1;
                return;
            }
            self.i += 1;
        }
    }

    /// Cursor on `mod`. Pushes a `TestMod` scope when the mod carries
    /// `#[cfg(test)]`.
    fn mod_header(&mut self) {
        let line = self.toks[self.i].line;
        let is_test = self.out.attrs_above(line).iter().any(|a| a == "cfg(test)");
        // find `{` or `;`
        let mut j = self.i + 1;
        while let Some((k, t)) = self.code_at(j) {
            if t.text == "{" {
                self.depth += 1;
                if is_test {
                    self.scopes.push(Scope::TestMod(self.depth));
                }
                self.i = k + 1;
                return;
            }
            if t.text == ";" {
                self.i = k + 1;
                return;
            }
            j = k + 1;
        }
        self.i = self.toks.len();
    }

    /// Cursor on `fn`. Builds the `FnItem`, records attrs/docs/contracts,
    /// then pushes a `Fn` scope at the body `{` (or returns at `;`).
    fn fn_header(&mut self) {
        let fn_tok = &self.toks[self.i];
        let name = match self.code_ahead(self.i + 1, 0) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => {
                self.i += 1;
                return;
            }
        };
        let decl_line = fn_tok.line;
        let attrs = self.out.attrs_above(decl_line);
        let (docs, contracts) = self.docs_and_contracts_above(decl_line);
        let is_unsafe = self.code_before(self.i).map(|t| t.text == unsafe_kw()).unwrap_or(false)
            || self.code_before2(self.i).map(|t| t.text == unsafe_kw()).unwrap_or(false);
        let impl_type = self.current_impl_type().filter(|t| !t.is_empty());
        let qualified = match &impl_type {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        let is_test = self.in_test_scope() || attrs.iter().any(|a| a == "test");

        let idx = self.out.fns.len();
        self.out.fns.push(FnItem {
            name,
            qualified,
            impl_type,
            line: decl_line,
            end_line: 0,
            attrs,
            docs,
            contracts,
            is_test,
            is_unsafe,
            has_body: false,
            calls: Vec::new(),
            panic_sites: Vec::new(),
        });

        // Walk to the body `{` at bracket depth 0, or `;`.
        self.i += 1;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while self.i < self.toks.len() {
            let t = &self.toks[self.i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" if paren == 0 && bracket == 0 => {
                        self.depth += 1;
                        self.out.fns[idx].has_body = true;
                        self.scopes.push(Scope::Fn(idx, self.depth));
                        self.i += 1;
                        return;
                    }
                    ";" if paren == 0 && bracket == 0 => {
                        self.out.fns[idx].end_line = t.line;
                        self.i += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.i += 1;
        }
    }

    /// Docs + contract comments above `line`: walk up over comment-only
    /// and attribute lines; code or blank lines stop the walk.
    fn docs_and_contracts_above(&mut self, line: u32) -> (Vec<String>, Contracts) {
        let mut docs = Vec::new();
        let mut contracts = Contracts::default();
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.out.is_comment_only_line(l) {
                let text = self.out.comment_lines[&l].clone();
                let trimmed = text.trim();
                if let Some(rest) = trimmed.strip_prefix("CONTRACT:") {
                    match rest.trim() {
                        "zero-alloc" => contracts.zero_alloc = true,
                        "panic-free" => contracts.panic_free = true,
                        _ => {}
                    }
                }
                docs.push(trimmed.to_string());
                continue;
            }
            if self.out.attr_lines.contains(&l) {
                continue;
            }
            break;
        }
        docs.reverse();
        (docs, contracts)
    }

    /// `// PANIC-OK: reason` on the same line as `line`, or walking up
    /// over comment-only/attr lines above it.
    fn panic_ok_reason(&self, line: u32) -> Option<String> {
        let probe = |l: u32| -> Option<String> {
            self.out
                .comment_lines
                .get(&l)
                .and_then(|c| c.trim().strip_prefix("PANIC-OK:"))
                .map(|r| r.trim().to_string())
        };
        if let Some(r) = probe(line) {
            return Some(r);
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.out.is_comment_only_line(l) {
                if let Some(r) = probe(l) {
                    return Some(r);
                }
                continue;
            }
            if self.out.attr_lines.contains(&l) {
                continue;
            }
            break;
        }
        None
    }

    /// Cursor on an identifier inside code: classify calls, env reads,
    /// panic sites, lock sites, Instant::now.
    fn ident_in_code(&mut self) {
        let t = &self.toks[self.i];
        let name = t.text.clone();
        let line = t.line;

        let next = self.code_ahead(self.i + 1, 0);
        let next_is =
            |s: &str| next.map(|u| u.kind == TokKind::Punct && u.text == s).unwrap_or(false);

        // macro invocation: `name !` then `(`/`[`/`{`
        if next_is("!") {
            if let Some(op) = self.code_ahead(self.i + 1, 1) {
                if op.kind == TokKind::Punct && matches!(op.text.as_str(), "(" | "[" | "{") {
                    let opener = op.text.clone();
                    self.macro_invocation(&name, line, &opener);
                    return;
                }
            }
            self.i += 1;
            return;
        }

        if !next_is("(") || is_keyword(&name) {
            self.i += 1;
            return;
        }

        // classify by the tokens before the name
        let prev = self.code_before(self.i);
        let prev2 = self.code_before2(self.i);
        let prev_is =
            |s: &str| prev.map(|u| u.kind == TokKind::Punct && u.text == s).unwrap_or(false);
        let prev2_is =
            |s: &str| prev2.map(|u| u.kind == TokKind::Punct && u.text == s).unwrap_or(false);

        if prev_is(":") && prev2_is(":") {
            // Qualified: find the segment before `::`
            let qualifier = {
                let mut j = self.i;
                let mut seen = 0;
                let mut q = None;
                while j > 0 {
                    j -= 1;
                    let u = &self.toks[j];
                    if matches!(u.kind, TokKind::Comment | TokKind::DocComment) {
                        continue;
                    }
                    seen += 1;
                    if seen >= 3 {
                        if u.kind == TokKind::Ident {
                            q = Some(u.text.clone());
                        }
                        break;
                    }
                }
                q
            };
            self.record_qualified_call(&name, qualifier, line);
        } else if prev_is(".") {
            self.record_method_call(&name, line);
        } else {
            self.record_free_call(&name, line);
        }
        self.i += 1;
    }

    fn record_call(&mut self, call: Call) {
        if self.in_debug_assert() {
            return;
        }
        if let Some(idx) = self.current_fn() {
            self.out.fns[idx].calls.push(call);
        }
    }

    fn record_free_call(&mut self, name: &str, line: u32) {
        self.record_call(Call {
            kind: CallKind::Free,
            name: name.to_string(),
            qualifier: None,
            line,
        });
    }

    fn record_method_call(&mut self, name: &str, line: u32) {
        // panic sites: exactly `unwrap` / `expect` as method names
        let pk = match name {
            "unwrap" => Some(PanicKind::Unwrap),
            "expect" => Some(PanicKind::Expect),
            _ => None,
        };
        if let Some(kind) = pk {
            if !self.in_debug_assert() {
                let allow_reason = self.panic_ok_reason(line);
                if let Some(idx) = self.current_fn() {
                    self.out.fns[idx].panic_sites.push(PanicSite {
                        kind,
                        macro_name: None,
                        line,
                        allow_reason,
                    });
                }
            }
        }
        // lock sites
        if matches!(name, "lock" | "read" | "write") {
            // `.lock()` then immediately `.unwrap()` / `.expect(`?
            let unwrapped = {
                let mut j = self.i + 1;
                let mut parens = 0i32;
                let mut after_close = None;
                while let Some((k, u)) = self.code_at(j) {
                    if u.kind == TokKind::Punct && u.text == "(" {
                        parens += 1;
                    } else if u.kind == TokKind::Punct && u.text == ")" {
                        parens -= 1;
                        if parens == 0 {
                            after_close = Some(k + 1);
                            break;
                        }
                    }
                    j = k + 1;
                }
                match after_close {
                    Some(k) => {
                        let dot = self.code_ahead(k, 0);
                        let meth = self.code_ahead(k, 1);
                        matches!((dot, meth), (Some(d), Some(m))
                            if d.text == "." && (m.text == "unwrap" || m.text == "expect"))
                    }
                    None => false,
                }
            };
            let in_test = self.in_test_scope()
                || self.current_fn().map(|i| self.out.fns[i].is_test).unwrap_or(false);
            self.out.locks.push(LockSite { method: name.to_string(), line, unwrapped, in_test });
        }
        self.record_call(Call {
            kind: CallKind::Method,
            name: name.to_string(),
            qualifier: None,
            line,
        });
    }

    fn record_qualified_call(&mut self, name: &str, qualifier: Option<String>, line: u32) {
        // env reads: env::var("LITERAL") / env::var_os("LITERAL")
        if (name == "var" || name == "var_os") && qualifier.as_deref() == Some("env") {
            // the argument must be a string literal right after `(`
            if let Some(arg) = self.code_ahead(self.i + 1, 1) {
                if arg.kind == TokKind::Str {
                    self.out.env_reads.push(EnvRead { name: arg.text.clone(), line });
                }
            }
        }
        if name == "now" && qualifier.as_deref() == Some("Instant") {
            let in_test = self.in_test_scope()
                || self.current_fn().map(|i| self.out.fns[i].is_test).unwrap_or(false);
            self.out.instant_now.push((line, in_test));
        }
        self.record_call(Call {
            kind: CallKind::Qualified,
            name: name.to_string(),
            qualifier,
            line,
        });
    }

    /// Cursor on a macro name, with `!` + opener ahead. Records panic-
    /// family macros as panic sites; enters a skip scope for
    /// `debug_assert*` so debug-only validation doesn't pollute the call
    /// graph; records everything else as a Macro call.
    fn macro_invocation(&mut self, name: &str, line: u32, opener: &str) {
        match name {
            "panic" | "todo" | "unimplemented" | "unreachable" if !self.in_debug_assert() => {
                let allow_reason = self.panic_ok_reason(line);
                if let Some(idx) = self.current_fn() {
                    self.out.fns[idx].panic_sites.push(PanicSite {
                        kind: PanicKind::Macro,
                        macro_name: Some(name.to_string()),
                        line,
                        allow_reason,
                    });
                }
            }
            n if n.starts_with("debug_assert") => {
                if opener == "{" {
                    // advance past name/!/{ and open a skip scope
                    self.i += 1;
                    while self.i < self.toks.len() && self.toks[self.i].text != "{" {
                        self.i += 1;
                    }
                    if self.i < self.toks.len() {
                        self.depth += 1;
                        self.scopes.push(Scope::DebugAssert(self.depth));
                        self.i += 1;
                    }
                    return;
                }
                let close = if opener == "(" { ")" } else { "]" };
                // skip the balanced `(...)` / `[...]` group inline
                self.i += 1;
                while self.i < self.toks.len() && self.toks[self.i].text != opener {
                    self.i += 1;
                }
                let mut depth = 0i32;
                while self.i < self.toks.len() {
                    let t = &self.toks[self.i];
                    if t.kind == TokKind::Punct && t.text == opener {
                        depth += 1;
                    } else if t.kind == TokKind::Punct && t.text == close {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                    }
                    self.i += 1;
                }
                return;
            }
            _ => {}
        }
        self.record_call(Call {
            kind: CallKind::Macro,
            name: name.to_string(),
            qualifier: None,
            line,
        });
        self.i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kw() -> String {
        ["un", "safe"].concat()
    }

    #[test]
    fn fn_items_with_impl_qualification() {
        let src = "\
struct Foo;
impl Foo {
    pub fn bar(&self) -> u32 { self.baz() }
    fn baz(&self) -> u32 { 7 }
}
fn free_fn() { Foo.bar(); }
";
        let f = parse_file("t.rs", src);
        let names: Vec<_> = f.fns.iter().map(|x| x.qualified.as_str()).collect();
        assert_eq!(names, ["Foo::bar", "Foo::baz", "free_fn"]);
        assert_eq!(f.fns[0].impl_type.as_deref(), Some("Foo"));
        assert!(f.fns[2].impl_type.is_none());
        // Foo::bar calls baz as a method
        assert!(f.fns[0].calls.iter().any(|c| c.kind == CallKind::Method && c.name == "baz"));
    }

    #[test]
    fn impl_trait_for_type_takes_rhs() {
        let src = "impl Display for Wrapper { fn fmt(&self) {} }\nimpl<T> From<T> for Holder<T> { fn from(_: T) {} }";
        let f = parse_file("t.rs", src);
        assert_eq!(f.fns[0].qualified, "Wrapper::fmt");
        assert_eq!(f.fns[1].qualified, "Holder::from");
    }

    #[test]
    fn contracts_and_docs_walk_up_over_attrs() {
        let src = "\
/// Builds the plan without allocating.
// CONTRACT: zero-alloc
#[inline]
pub fn build_into(&self) {}

// CONTRACT: panic-free
pub fn run(&self) {}

pub fn plain() {}
";
        let f = parse_file("t.rs", src);
        assert!(f.fns[0].contracts.zero_alloc, "{:?}", f.fns[0]);
        assert!(!f.fns[0].contracts.panic_free);
        assert!(f.fns[1].contracts.panic_free);
        assert!(!f.fns[2].contracts.zero_alloc && !f.fns[2].contracts.panic_free);
        assert!(f.fns[0].docs.iter().any(|d| d.contains("without allocating")));
    }

    #[test]
    fn contract_in_string_does_not_annotate() {
        let src = "pub fn tricky() { let s = \"// CONTRACT: zero-alloc\"; }\npub fn after() {}";
        let f = parse_file("t.rs", src);
        assert!(!f.fns[1].contracts.zero_alloc);
    }

    #[test]
    fn panic_sites_and_allowlist() {
        let src = "\
pub fn risky(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // PANIC-OK: checked non-empty above
    let b = x.expect(\"must be set\");
    if a == 0 { panic!(\"zero\") }
    b
}
";
        let f = parse_file("t.rs", src);
        let sites = &f.fns[0].panic_sites;
        assert_eq!(sites.len(), 3, "{sites:?}");
        assert_eq!(sites[0].kind, PanicKind::Unwrap);
        assert_eq!(sites[0].allow_reason.as_deref(), Some("checked non-empty above"));
        assert_eq!(sites[1].kind, PanicKind::Expect);
        assert!(
            sites[1].allow_reason.is_none(),
            "a trailing PANIC-OK on the previous code line must not leak down: {sites:?}"
        );
        assert_eq!(sites[2].kind, PanicKind::Macro);
        assert_eq!(sites[2].macro_name.as_deref(), Some("panic"));
    }

    #[test]
    fn panic_ok_walks_up_from_preceding_line() {
        let src = "\
pub fn f(x: Option<u32>) -> u32 {
    // PANIC-OK: len asserted above
    x.unwrap()
}
";
        let f = parse_file("t.rs", src);
        assert_eq!(f.fns[0].panic_sites[0].allow_reason.as_deref(), Some("len asserted above"));
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic_site() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) + x.unwrap_or(1) + x.unwrap_or_default() }";
        let f = parse_file("t.rs", src);
        assert!(f.fns[0].panic_sites.is_empty(), "{:?}", f.fns[0].panic_sites);
    }

    #[test]
    fn debug_assert_contents_are_skipped() {
        let src = "\
pub fn hot(xs: &[u32]) {
    debug_assert!(xs.iter().collect::<Vec<_>>().len() == xs.len());
    debug_assert_eq!(xs.to_vec().len(), xs.len());
    xs.first();
}
";
        let f = parse_file("t.rs", src);
        let calls: Vec<_> = f.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(!calls.contains(&"collect"), "{calls:?}");
        assert!(!calls.contains(&"to_vec"), "{calls:?}");
        assert!(calls.contains(&"first"), "{calls:?}");
    }

    #[test]
    fn env_reads_only_with_literal_names() {
        let src = "\
pub fn knobs() {
    let a = std::env::var(\"EL_KERNEL\");
    let b = std::env::var_os(\"RAYON_NUM_THREADS\");
    let name = key();
    let c = std::env::var(name);
}
";
        let f = parse_file("t.rs", src);
        let names: Vec<_> = f.env_reads.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["EL_KERNEL", "RAYON_NUM_THREADS"]);
    }

    #[test]
    fn env_var_in_string_not_recorded() {
        let src = "pub fn doc() { let s = \"std::env::var(\\\"EL_FAKE\\\")\"; }";
        let f = parse_file("t.rs", src);
        assert!(f.env_reads.is_empty());
    }

    #[test]
    fn lock_sites_track_unwrap() {
        let src = "\
pub fn locked(m: &std::sync::Mutex<u32>) {
    let g = m.lock().unwrap();
    let h = m.lock().unwrap_or_else(|e| e.into_inner());
    drop((g, h));
}
#[cfg(test)]
mod tests {
    pub fn in_test(m: &std::sync::Mutex<u32>) { let _g = m.lock().unwrap(); }
}
";
        let f = parse_file("t.rs", src);
        assert_eq!(f.locks.len(), 3);
        assert!(f.locks[0].unwrapped && !f.locks[0].in_test);
        assert!(!f.locks[1].unwrapped, "unwrap_or_else must not count as unwrapped");
        assert!(f.locks[2].unwrapped && f.locks[2].in_test, "{:?}", f.locks[2]);
    }

    #[test]
    fn test_scope_detection() {
        let src = "\
pub fn lib_fn() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn a_test() { helper(); }
}
";
        let f = parse_file("t.rs", src);
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test, "helper inside cfg(test) mod: {:?}", f.fns[1]);
        assert!(f.fns[2].is_test);
    }

    #[test]
    fn unsafe_fn_and_target_feature_attr() {
        let src = format!("#[target_feature(enable = \"avx2\")]\npub {} fn kernel() {{}}\n", kw());
        let f = parse_file("t.rs", &src);
        assert!(f.fns[0].is_unsafe);
        assert!(f.fns[0].has_target_feature(), "{:?}", f.fns[0].attrs);
        assert!(!f.unsafe_lines.is_empty());
    }

    #[test]
    fn inner_attrs_are_transparent_but_not_attached() {
        let src = "#![deny(missing_docs)]\npub fn first() {}\n";
        let f = parse_file("t.rs", src);
        assert!(f.fns[0].attrs.is_empty(), "{:?}", f.fns[0].attrs);
        assert!(f.attr_lines.contains(&1));
    }

    #[test]
    fn qualified_and_free_calls() {
        let src = "pub fn f() { helper(); Matrix::zeros(3, 4); crate::shard::sorted(); }";
        let f = parse_file("t.rs", src);
        let calls = &f.fns[0].calls;
        assert!(calls.iter().any(|c| c.kind == CallKind::Free && c.name == "helper"));
        assert!(calls.iter().any(|c| c.kind == CallKind::Qualified
            && c.name == "zeros"
            && c.qualifier.as_deref() == Some("Matrix")));
        assert!(calls.iter().any(|c| c.kind == CallKind::Qualified
            && c.name == "sorted"
            && c.qualifier.as_deref() == Some("shard")));
    }

    #[test]
    fn instant_now_detection() {
        let src = "pub fn t() { let _x = std::time::Instant::now(); }";
        let f = parse_file("t.rs", src);
        assert_eq!(f.instant_now.len(), 1);
        assert!(!f.instant_now[0].1);
    }

    #[test]
    fn fn_body_brace_not_confused_by_return_type() {
        let src = "pub fn mk(n: usize) -> [u8; 4] { [0; 4] }\npub fn next() {}";
        let f = parse_file("t.rs", src);
        assert_eq!(f.fns.len(), 2);
        assert!(f.fns[0].has_body);
    }

    #[test]
    fn trait_method_signature_has_no_body() {
        let src = "trait T { fn sig(&self); fn with_default(&self) { self.sig() } }";
        let f = parse_file("t.rs", src);
        assert_eq!(f.fns.len(), 2);
        assert!(!f.fns[0].has_body);
        assert!(f.fns[1].has_body);
    }

    #[test]
    fn multiline_attr_is_transparent() {
        let src = "\
// CONTRACT: zero-alloc
#[cfg_attr(
    feature = \"x\",
    inline
)]
pub fn hot() {}
";
        let f = parse_file("t.rs", src);
        assert!(f.fns[0].contracts.zero_alloc, "{:?}", f.fns[0]);
    }
}
