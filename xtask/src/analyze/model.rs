//! Workspace model: parsed files grouped by crate, a crate-level
//! dependency graph (parsed from each member's `Cargo.toml`), and a
//! name-resolution-lite call graph with reachability search.
//!
//! Resolution is deliberately over-approximate — a method call `x.foo()`
//! can resolve to *any* workspace `fn foo` — then pruned by the crate
//! dependency graph: a call in crate A only resolves into crates A can
//! actually reach (itself + transitive workspace deps). That keeps the
//! false-edge rate low enough for contract checking without real type
//! inference.

use super::parser::{parse_file, Call, CallKind, FnItem, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};

/// One workspace member crate.
#[derive(Debug)]
pub struct CrateModel {
    /// Package name from `Cargo.toml` (e.g. `el-core`).
    pub name: String,
    /// Repo-relative dir (`crates/core`), `/`-separated.
    pub dir: String,
    /// Names of workspace crates this crate depends on (direct).
    pub deps: Vec<String>,
    /// Parsed library-source files (everything under `src/`).
    pub files: Vec<ParsedFile>,
}

/// Global function id: (crate index, file index, fn index).
pub type FnId = (usize, usize, usize);

/// Method names so common on std containers/`Option`/iterators that an
/// unqualified `x.name()` is overwhelmingly a std call, not a workspace
/// one. Method-kind calls with these names never resolve to workspace
/// fns (qualified `Type::name` / `self.name()`-via-`Self` still do).
const STD_SHADOWED_METHODS: &[&str] = &[
    "as_mut", "as_ref", "chain", "clear", "clone", "collect", "contains", "count", "drain",
    "extend", "fill", "filter", "first", "flush", "fold", "get", "get_mut", "insert", "into",
    "is_empty", "iter", "iter_mut", "join", "last", "len", "map", "max", "min", "next", "pop",
    "push", "read", "remove", "replace", "reserve", "resize", "rev", "sort", "split", "sum",
    "swap", "take", "to_owned", "truncate", "write", "zip",
];

/// The full workspace model plus call-resolution indexes.
pub struct Workspace {
    pub crates: Vec<CrateModel>,
    /// crate name -> index in `crates`.
    pub crate_by_name: HashMap<String, usize>,
    /// Transitive workspace-dep closure per crate (includes self).
    pub dep_closure: Vec<BTreeSet<usize>>,
    /// fn name -> candidate FnIds (free-fn resolution).
    by_name: HashMap<String, Vec<FnId>>,
    /// (impl type, fn name) -> candidate FnIds (qualified resolution).
    by_qual: HashMap<(String, String), Vec<FnId>>,
}

impl Workspace {
    pub fn fn_item(&self, id: FnId) -> &FnItem {
        &self.crates[id.0].files[id.1].fns[id.2]
    }

    pub fn file(&self, id: FnId) -> &ParsedFile {
        &self.crates[id.0].files[id.1]
    }

    /// Iterate every (FnId, FnItem).
    pub fn all_fns(&self) -> impl Iterator<Item = (FnId, &FnItem)> {
        self.crates.iter().enumerate().flat_map(|(ci, c)| {
            c.files.iter().enumerate().flat_map(move |(fi, f)| {
                f.fns.iter().enumerate().map(move |(gi, item)| ((ci, fi, gi), item))
            })
        })
    }

    /// Candidate callees for `call` made from crate `from`: every
    /// workspace fn whose name (and, for qualified calls, impl type or
    /// module file stem) matches, restricted to crates in `from`'s
    /// dependency closure. Test fns never resolve as callees.
    pub fn resolve(&self, from_crate: usize, call: &Call, caller_impl: Option<&str>) -> Vec<FnId> {
        let reachable = &self.dep_closure[from_crate];
        let keep = |id: &FnId| reachable.contains(&id.0) && !self.fn_item(*id).is_test;
        match call.kind {
            CallKind::Macro => Vec::new(),
            CallKind::Qualified => {
                let name = call.name.clone();
                let mut out = Vec::new();
                if let Some(q) = &call.qualifier {
                    let q_resolved =
                        if q == "Self" { caller_impl.map(str::to_string) } else { Some(q.clone()) };
                    if let Some(q) = q_resolved {
                        // impl-type match: Type::name
                        if let Some(ids) = self.by_qual.get(&(q.clone(), name.clone())) {
                            out.extend(ids.iter().copied().filter(keep));
                        }
                        // module match: `shard::sorted()` where shard.rs
                        // declares free fn sorted — qualifier equals the
                        // file stem (snake_case modules only; an impl-type
                        // qualifier is CamelCase and won't collide).
                        if q.chars().next().is_some_and(|c| c.is_lowercase()) {
                            for id in self.by_name.get(&name).into_iter().flatten() {
                                if !keep(id) {
                                    continue;
                                }
                                let f = self.file(*id);
                                let stem = Path::new(&f.path)
                                    .file_stem()
                                    .and_then(|s| s.to_str())
                                    .unwrap_or("");
                                let item = self.fn_item(*id);
                                if stem == q && item.impl_type.is_none() {
                                    out.push(*id);
                                }
                            }
                        }
                    }
                } else if let Some(ids) = self.by_name.get(&name) {
                    out.extend(ids.iter().copied().filter(keep));
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            CallKind::Free | CallKind::Method => {
                // Free calls resolve by bare name; method calls resolve to
                // any impl fn with that name (receiver type unknown) —
                // except std-ubiquitous names, where the receiver is almost
                // always a std container and resolving to a same-named
                // workspace method fabricates edges (`v.truncate(n)` on a
                // Vec must not become an edge into `Svd::truncate`).
                // Qualified calls (`Svd::truncate`, `self.foo` → `Self::`)
                // still resolve those fns; the documented cost is a missed
                // edge on an unqualified call to such a method.
                if call.kind == CallKind::Method && STD_SHADOWED_METHODS.contains(&&*call.name) {
                    return Vec::new();
                }
                let mut out: Vec<FnId> = self
                    .by_name
                    .get(&call.name)
                    .into_iter()
                    .flatten()
                    .copied()
                    .filter(keep)
                    .filter(|id| match call.kind {
                        // a free call can't land on an inherent method
                        CallKind::Free => self.fn_item(*id).impl_type.is_none(),
                        _ => true,
                    })
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    /// BFS from `roots` over resolved calls. Returns, for every reached
    /// fn, the call edge that first reached it: `reached[id] = Some((via
    /// caller, call line))` (None for roots). Use [`Workspace::chain_to`] to turn a
    /// hit into a printable path.
    pub fn reach(&self, roots: &[FnId]) -> HashMap<FnId, Option<(FnId, u32)>> {
        let mut seen: HashMap<FnId, Option<(FnId, u32)>> = HashMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for r in roots {
            if seen.insert(*r, None).is_none() {
                queue.push_back(*r);
            }
        }
        while let Some(id) = queue.pop_front() {
            let item = self.fn_item(id);
            let impl_ty = item.impl_type.clone();
            for call in item.calls.clone() {
                for callee in self.resolve(id.0, &call, impl_ty.as_deref()) {
                    if callee == id {
                        continue;
                    }
                    seen.entry(callee).or_insert_with(|| {
                        queue.push_back(callee);
                        Some((id, call.line))
                    });
                }
            }
        }
        seen
    }

    /// Reconstruct the call chain `root -> … -> id` from a `reach` map,
    /// as `(fn qualified name, file, line-of-call-into-next)` steps.
    pub fn chain_to(
        &self,
        reached: &HashMap<FnId, Option<(FnId, u32)>>,
        id: FnId,
    ) -> Vec<(String, String, u32)> {
        let mut rev = Vec::new();
        let mut cur = id;
        loop {
            let item = self.fn_item(cur);
            let file = self.file(cur).path.clone();
            match reached.get(&cur) {
                Some(Some((parent, line))) => {
                    rev.push((item.qualified.clone(), file, *line));
                    cur = *parent;
                }
                _ => {
                    rev.push((item.qualified.clone(), file, item.line));
                    break;
                }
            }
        }
        rev.reverse();
        rev
    }
}

/// Reads `name` and workspace-path deps out of a member `Cargo.toml`.
/// Hand-rolled: the manifests in this repo are simple and we cannot add a
/// TOML dependency to xtask.
fn parse_manifest(text: &str) -> (Option<String>, Vec<String>) {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    name = Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
        // dependency lines: `el-core = { workspace = true }` or
        // `el-core.workspace = true` under [dependencies] /
        // [dev-dependencies], or table headers [dependencies.el-core].
        if section.starts_with("dependencies") || section.starts_with("dev-dependencies") {
            if let Some(eq) = line.find('=') {
                let key = line[..eq].trim();
                let key = key.split('.').next().unwrap_or(key).trim();
                if !key.is_empty() && !key.contains(' ') {
                    deps.push(key.to_string());
                }
            }
        }
        if let Some(rest) = section.strip_prefix("dependencies.") {
            deps.push(rest.to_string());
            section = "dependencies".into(); // body lines are config, not deps
        }
    }
    deps.sort();
    deps.dedup();
    (name, deps)
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
}

fn rust_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().and_then(|s| s.to_str()) == Some("rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Builds the model from `crates/*` (library crates only — the call-graph
/// analyses reason about code that ships, not vendor or xtask).
pub fn build_workspace(root: &Path) -> Workspace {
    let mut crates = Vec::new();
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|rd| rd.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect())
        .unwrap_or_default();
    dirs.sort();

    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = fs::read_to_string(&manifest) else { continue };
        let (name, deps) = parse_manifest(&text);
        let Some(name) = name else { continue };
        let src = dir.join("src");
        let mut files = Vec::new();
        for f in rust_files_under(&src) {
            if let Ok(content) = fs::read_to_string(&f) {
                files.push(parse_file(&rel(root, &f), &content));
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        crates.push(CrateModel { name, dir: rel(root, &dir), deps, files });
    }

    let crate_by_name: HashMap<String, usize> =
        crates.iter().enumerate().map(|(i, c)| (c.name.clone(), i)).collect();

    // transitive closure of workspace deps (+ self)
    let mut dep_closure: Vec<BTreeSet<usize>> = Vec::with_capacity(crates.len());
    for (i, c) in crates.iter().enumerate() {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        seen.insert(i);
        queue.push_back(i);
        let _ = c;
        while let Some(j) = queue.pop_front() {
            for d in &crates[j].deps {
                if let Some(&k) = crate_by_name.get(d) {
                    if seen.insert(k) {
                        queue.push_back(k);
                    }
                }
            }
        }
        dep_closure.push(seen);
    }

    let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
    let mut by_qual: HashMap<(String, String), Vec<FnId>> = HashMap::new();
    for (ci, c) in crates.iter().enumerate() {
        for (fi, f) in c.files.iter().enumerate() {
            for (gi, item) in f.fns.iter().enumerate() {
                let id = (ci, fi, gi);
                by_name.entry(item.name.clone()).or_default().push(id);
                if let Some(ty) = &item.impl_type {
                    by_qual.entry((ty.clone(), item.name.clone())).or_default().push(id);
                }
            }
        }
    }

    Workspace { crates, crate_by_name, dep_closure, by_name, by_qual }
}

/// One in-memory crate spec for [`workspace_from_sources`]:
/// `(crate name, deps, [(path, source)])`.
pub type SourceSpec<'a> = (&'a str, &'a [&'a str], &'a [(&'a str, &'a str)]);

/// Parse a set of in-memory files into a workspace (for tests/fixtures).
pub fn workspace_from_sources(specs: &[SourceSpec]) -> Workspace {
    let mut crates = Vec::new();
    for (name, deps, files) in specs {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        crates.push(CrateModel {
            name: name.to_string(),
            dir: format!("crates/{name}"),
            deps: deps.iter().map(|d| d.to_string()).collect(),
            files: parsed,
        });
    }
    let crate_by_name: HashMap<String, usize> =
        crates.iter().enumerate().map(|(i, c)| (c.name.clone(), i)).collect();
    let mut dep_closure: Vec<BTreeSet<usize>> = Vec::with_capacity(crates.len());
    for i in 0..crates.len() {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(i);
        queue.push_back(i);
        while let Some(j) = queue.pop_front() {
            for d in &crates[j].deps {
                if let Some(&k) = crate_by_name.get(d) {
                    if seen.insert(k) {
                        queue.push_back(k);
                    }
                }
            }
        }
        dep_closure.push(seen);
    }
    let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
    let mut by_qual: HashMap<(String, String), Vec<FnId>> = HashMap::new();
    for (ci, c) in crates.iter().enumerate() {
        for (fi, f) in c.files.iter().enumerate() {
            for (gi, item) in f.fns.iter().enumerate() {
                let id = (ci, fi, gi);
                by_name.entry(item.name.clone()).or_default().push(id);
                if let Some(ty) = &item.impl_type {
                    by_qual.entry((ty.clone(), item.name.clone())).or_default().push(id);
                }
            }
        }
    }
    Workspace { crates, crate_by_name, dep_closure, by_name, by_qual }
}

/// Sorted map of crate name -> crate dir for diagnostics.
pub fn crate_dirs(ws: &Workspace) -> BTreeMap<String, String> {
    ws.crates.iter().map(|c| (c.name.clone(), c.dir.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_crate_ws() -> Workspace {
        workspace_from_sources(&[
            (
                "el-core",
                &[],
                &[(
                    "crates/el-core/src/lib.rs",
                    "pub struct Plan;\nimpl Plan {\n    pub fn build(&self) { helper(); }\n    pub fn alloc_path(&self) { Vec::with_capacity(4); }\n}\npub fn helper() {}\n",
                )],
            ),
            (
                "el-pipe",
                &["el-core"],
                &[(
                    "crates/el-pipe/src/lib.rs",
                    "pub fn drive(p: &Plan) { p.build(); }\npub fn lonely() {}\n",
                )],
            ),
            (
                "el-iso",
                &[],
                &[("crates/el-iso/src/lib.rs", "pub fn build() { secret(); }\npub fn secret() {}\n")],
            ),
        ])
    }

    #[test]
    fn dep_closure_prunes_resolution() {
        let ws = two_crate_ws();
        let pipe = ws.crate_by_name["el-pipe"];
        let drive = ws.all_fns().find(|(_, f)| f.name == "drive").map(|(id, _)| id).unwrap();
        let call = ws.fn_item(drive).calls.iter().find(|c| c.name == "build").unwrap().clone();
        let targets = ws.resolve(pipe, &call, None);
        // `p.build()` resolves into el-core (dep) but NOT el-iso (not a dep)
        let names: Vec<_> = targets.iter().map(|id| ws.file(*id).path.clone()).collect();
        assert!(names.iter().any(|p| p.contains("el-core")), "{names:?}");
        assert!(!names.iter().any(|p| p.contains("el-iso")), "{names:?}");
    }

    #[test]
    fn reach_builds_chains() {
        let ws = two_crate_ws();
        let drive = ws.all_fns().find(|(_, f)| f.name == "drive").map(|(id, _)| id).unwrap();
        let helper = ws.all_fns().find(|(_, f)| f.name == "helper").map(|(id, _)| id).unwrap();
        let reached = ws.reach(&[drive]);
        assert!(reached.contains_key(&helper), "drive -> Plan::build -> helper");
        let chain = ws.chain_to(&reached, helper);
        let names: Vec<_> = chain.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["drive", "Plan::build", "helper"]);
    }

    #[test]
    fn std_shadowed_method_names_do_not_resolve() {
        // `v.truncate(n)` on a Vec must not fabricate an edge into a
        // workspace `Svd::truncate`; the qualified spelling still resolves.
        let ws = workspace_from_sources(&[(
            "el-t",
            &[],
            &[(
                "crates/el-t/src/lib.rs",
                "pub struct Svd;\nimpl Svd {\n    pub fn truncate(&self) {}\n}\n\
                 pub fn shrink(v: &mut Vec<u32>) { v.truncate(1); }\n\
                 pub fn direct(s: &Svd) { Svd::truncate(s); }\n",
            )],
        )]);
        let t = ws.crate_by_name["el-t"];
        let shrink = ws.all_fns().find(|(_, f)| f.name == "shrink").map(|(id, _)| id).unwrap();
        let call = ws.fn_item(shrink).calls.iter().find(|c| c.name == "truncate").unwrap();
        assert_eq!(call.kind, CallKind::Method);
        assert!(ws.resolve(t, call, None).is_empty(), "std-shadowed method must not resolve");
        let direct = ws.all_fns().find(|(_, f)| f.name == "direct").map(|(id, _)| id).unwrap();
        let qcall = ws.fn_item(direct).calls.iter().find(|c| c.name == "truncate").unwrap();
        assert_eq!(ws.resolve(t, qcall, None).len(), 1, "qualified call still resolves");
    }

    #[test]
    fn free_call_does_not_resolve_to_method() {
        let ws = two_crate_ws();
        let core = ws.crate_by_name["el-core"];
        let call = Call { kind: CallKind::Free, name: "build".into(), qualifier: None, line: 1 };
        let targets = ws.resolve(core, &call, None);
        // Plan::build is a method; a bare `build()` in el-core must not hit it
        assert!(targets.iter().all(|id| ws.fn_item(*id).impl_type.is_none()), "{targets:?}");
    }

    #[test]
    fn manifest_parsing() {
        let (name, deps) = parse_manifest(
            "[package]\nname = \"el-core\"\nversion = \"0.1.0\"\n\n[dependencies]\nel-tensor = { workspace = true }\nrayon.workspace = true\n\n[dev-dependencies]\nel-bench = { path = \"../bench\" }\n",
        );
        assert_eq!(name.as_deref(), Some("el-core"));
        assert_eq!(deps, ["el-bench", "el-tensor", "rayon"]);
    }

    #[test]
    fn self_qualified_resolution() {
        let ws = workspace_from_sources(&[(
            "c",
            &[],
            &[(
                "crates/c/src/lib.rs",
                "pub struct S;\nimpl S {\n    pub fn a(&self) { Self::b(); }\n    fn b() { Vec::with_capacity(1); }\n}\n",
            )],
        )]);
        let a = ws.all_fns().find(|(_, f)| f.name == "a").map(|(id, _)| id).unwrap();
        let b = ws.all_fns().find(|(_, f)| f.name == "b").map(|(id, _)| id).unwrap();
        let reached = ws.reach(&[a]);
        assert!(reached.contains_key(&b), "Self::b resolves within impl S");
    }
}
