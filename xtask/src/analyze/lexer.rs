//! A self-contained Rust lexer for the static-analysis engine.
//!
//! The point of lexing (instead of the stripped-line scanning `lint.rs`
//! does) is that every downstream rule sees *tokens*: string and comment
//! contents can neither trigger a rule nor satisfy one, and constructs the
//! line scanner cannot handle — raw strings containing Rust code, nested
//! block comments, `'a` lifetimes next to `'a'` char literals — are exact.
//!
//! The lexer keeps comments in the token stream (rules need them: `SAFETY`
//! adjacency, `// CONTRACT:` / `// PANIC-OK:` grammar) and records the line
//! span of every token, so diagnostics and adjacency walks are line-based
//! while *matching* stays token-based.

use std::fmt;

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the parser distinguishes keywords).
    Ident,
    /// `'a` — a lifetime (or loop label) marker, *not* a char literal.
    Lifetime,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`. `text` holds the literal's inner content (raw, without
    /// delimiters; escapes are not processed).
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Numeric literal (integers, floats, suffixed forms).
    Num,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// Non-doc comment (`//…` or `/*…*/`), text without the delimiters.
    Comment,
    /// Doc comment (`///`, `//!`, `/**…*/`, `/*!…*/`).
    DocComment,
}

/// One token with its (1-based) line span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text; see [`TokKind`] for what is stored per kind.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on (equal to `line` except for
    /// multi-line strings and block comments).
    pub end_line: u32,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}({})@{}", self.kind, self.text, self.line)
    }
}

/// Lexes `src` into a token stream. Unterminated constructs (running off
/// the end inside a string or comment) terminate at end of input rather
/// than erroring: the analyzer must degrade gracefully on code that rustc
/// itself would reject.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { s: src.as_bytes(), i: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> u8 {
        *self.s.get(self.i + off).unwrap_or(&0)
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> u8 {
        let c = self.s[self.i];
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line, end_line: self.line });
    }

    fn run(mut self) -> Vec<Tok> {
        while self.i < self.s.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(0),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump();
                    self.push(TokKind::Punct, (c as char).to_string(), line);
                }
            }
        }
        self.out
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` prefixes.
    /// Returns `false` (consuming nothing) when the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let (c0, c1, c2) = (self.peek(0), self.peek(1), self.peek(2));
        match (c0, c1, c2) {
            (b'r', b'"', _) | (b'r', b'#', _) if c1 == b'"' || self.raw_hashes_then_quote(1) => {
                self.bump(); // r
                self.raw_string();
                true
            }
            (b'b', b'r', _) if c2 == b'"' || self.raw_hashes_then_quote(2) => {
                self.bump(); // b
                self.bump(); // r
                self.raw_string();
                true
            }
            (b'b', b'"', _) => {
                self.bump(); // b
                self.string(0);
                true
            }
            (b'b', b'\'', _) => {
                self.bump(); // b
                self.byte_char();
                true
            }
            _ => false,
        }
    }

    /// True when `#`* then `"` follows at offset `off` (raw-string opener).
    fn raw_hashes_then_quote(&self, mut off: usize) -> bool {
        while self.peek(off) == b'#' {
            off += 1;
        }
        self.peek(off) == b'"' && off > if self.peek(0) == b'b' { 2 } else { 1 }
            || self.peek(off) == b'"'
    }

    /// Lexes a raw string starting at `#`* `"`, cursor past the `r`.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            // Not actually a raw string (e.g. `r#ident` raw identifier):
            // re-lex the hash as punct and fall through.
            for _ in 0..hashes {
                self.push(TokKind::Punct, "#".into(), line);
            }
            return;
        }
        self.bump(); // opening quote
        let start = self.i;
        let mut end = self.s.len();
        while self.i < self.s.len() {
            if self.peek(0) == b'"' {
                // candidate close: `"` followed by `hashes` hashes
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    end = self.i;
                    self.bump(); // quote
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.s[start..end.min(self.s.len())]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    /// Lexes a `"…"` string (cursor on the quote); escapes skip the next
    /// char, so `\"` cannot close.
    fn string(&mut self, _: usize) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.i;
        let mut end = self.s.len();
        while self.i < self.s.len() {
            match self.bump() {
                b'\\' if self.i < self.s.len() => {
                    self.bump();
                }
                b'"' => {
                    end = self.i - 1;
                    break;
                }
                _ => {}
            }
        }
        let text = String::from_utf8_lossy(&self.s[start..end]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    /// Lexes `b'…'` (cursor on the quote).
    fn byte_char(&mut self) {
        let line = self.line;
        self.bump(); // quote
        let start = self.i;
        let mut end = self.s.len();
        while self.i < self.s.len() {
            match self.bump() {
                b'\\' if self.i < self.s.len() => {
                    self.bump();
                }
                b'\'' => {
                    end = self.i - 1;
                    break;
                }
                _ => {}
            }
        }
        let text = String::from_utf8_lossy(&self.s[start..end]).into_owned();
        self.push(TokKind::Char, text, line);
    }

    /// `'` disambiguation: lifetime/label (`'a`, `'static`) vs char
    /// literal (`'a'`, `'\n'`). A lifetime is `'` + ident char(s) *not*
    /// followed by a closing `'`; everything else is a char literal.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let c1 = self.peek(1);
        let ident_start = c1 == b'_' || c1.is_ascii_alphabetic();
        if ident_start {
            // scan the ident run after the quote
            let mut off = 2;
            while {
                let c = self.peek(off);
                c == b'_' || c.is_ascii_alphanumeric()
            } {
                off += 1;
            }
            if self.peek(off) != b'\'' {
                // lifetime or loop label
                self.bump(); // '
                let start = self.i;
                for _ in 1..off {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
                self.push(TokKind::Lifetime, text, line);
                return;
            }
        }
        // char literal
        self.byte_char();
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // //
        let doc = match self.peek(0) {
            b'/' if self.peek(1) != b'/' => true, // `///` but not `////`
            b'!' => true,                         // `//!`
            _ => false,
        };
        let start = self.i;
        while self.i < self.s.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.push(if doc { TokKind::DocComment } else { TokKind::Comment }, text, line);
    }

    /// Block comment with nesting (`/* /* */ */` is one comment).
    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // /*
        let doc = matches!(self.peek(0), b'*' | b'!') && self.peek(1) != b'*' && self.peek(0) != 0;
        let start = self.i;
        let mut depth = 1usize;
        let mut end = self.s.len();
        while self.i < self.s.len() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                if depth == 0 {
                    end = self.i;
                    self.bump();
                    self.bump();
                    break;
                }
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.s[start..end]).into_owned();
        self.push(if doc { TokKind::DocComment } else { TokKind::Comment }, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        while {
            let c = self.peek(0);
            c == b'_' || c.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.push(TokKind::Ident, text, line);
    }

    /// Numbers: digits, `_` separators, suffixes, `0x…`, floats with
    /// exponents. A trailing `.` only joins when followed by a digit, so
    /// `0..n` lexes as `0`, `.`, `.`, `n`.
    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        while {
            let c = self.peek(0);
            c == b'_' || c.is_ascii_alphanumeric()
        } {
            let c = self.peek(0);
            // exponent sign: `1e-5` / `2E+3`
            if (c == b'e' || c == b'E')
                && matches!(self.peek(1), b'+' | b'-')
                && self.peek(2).is_ascii_digit()
                && !self.hex_prefix(start)
            {
                self.bump(); // e
                self.bump(); // sign
                continue;
            }
            self.bump();
        }
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump(); // .
            while {
                let c = self.peek(0);
                c == b'_' || c.is_ascii_alphanumeric()
            } {
                let c = self.peek(0);
                if (c == b'e' || c == b'E')
                    && matches!(self.peek(1), b'+' | b'-')
                    && self.peek(2).is_ascii_digit()
                {
                    self.bump();
                    self.bump();
                    continue;
                }
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.push(TokKind::Num, text, line);
    }

    fn hex_prefix(&self, start: usize) -> bool {
        self.s[start] == b'0' && matches!(self.s.get(start + 1), Some(b'x') | Some(b'X'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::Comment | TokKind::DocComment))
            .map(|t| t.text)
            .collect()
    }

    /// The unsafe keyword, assembled so this file never contains it at a
    /// code position (the repo's own safety lint runs on this file).
    fn kw() -> String {
        ["un", "safe"].concat()
    }

    #[test]
    fn plain_tokens_and_lines() {
        let toks = lex("fn f() {\n    1 + 2\n}\n");
        assert_eq!(toks[0], Tok { kind: TokKind::Ident, text: "fn".into(), line: 1, end_line: 1 });
        let one = toks.iter().find(|t| t.text == "1").unwrap();
        assert_eq!(one.line, 2);
        assert_eq!(one.kind, TokKind::Num);
    }

    #[test]
    fn string_contents_are_not_code() {
        let src = format!("let s = \"{} {{ x }}\"; let y = 1;", kw());
        let texts = code_texts(&src);
        assert!(!texts.iter().any(|t| *t == kw()), "string content leaked into idents: {texts:?}");
        assert!(texts.contains(&"y".to_string()));
        // the string itself is one Str token holding the content
        let toks = lex(&src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains(&kw()));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = format!("let s = r#\"quote \" inside, {} too\"#; let z = 2;", kw());
        let toks = lex(&src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("quote \" inside"));
        assert!(code_texts(&src).contains(&"z".to_string()));
        assert!(!code_texts(&src).iter().any(|t| *t == kw()));
        // multi-hash raw strings terminate only on the matching run
        let src2 = "let s = r##\"a \"# b\"##; let w = 3;";
        let toks2 = lex(src2);
        let s2 = toks2.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s2.text, "a \"# b");
        assert!(code_texts(src2).contains(&"w".to_string()));
    }

    #[test]
    fn raw_strings_spanning_lines_keep_line_numbers() {
        let src = "let s = r\"line1\nline2\nline3\";\nlet after = 1;";
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!((s.line, s.end_line), (1, 3));
        let after = toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"bytes\"; let c = b'x'; let r = br#\"raw \" bytes\"#;";
        let toks = lex(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text, "bytes");
        assert_eq!(strs[1].text, "raw \" bytes");
        assert!(toks.iter().any(|t| t.kind == TokKind::Char && t.text == "x"));
    }

    #[test]
    fn nested_block_comments() {
        let src = format!("/* outer /* inner {} */ still comment */ let x = 1;", kw());
        let toks = lex(&src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Comment).count(), 1);
        let c = toks.iter().find(|t| t.kind == TokKind::Comment).unwrap();
        assert!(c.text.contains("inner"));
        assert!(c.text.contains("still comment"));
        assert!(code_texts(&src).contains(&"x".to_string()));
        assert!(!code_texts(&src).iter().any(|t| *t == kw()));
    }

    #[test]
    fn multiline_block_comment_line_span() {
        let src = "/*\nline2\nline3\n*/\nlet x = 1;";
        let toks = lex(src);
        let c = &toks[0];
        assert_eq!(c.kind, TokKind::Comment);
        assert_eq!((c.line, c.end_line), (1, 4));
        assert_eq!(toks.iter().find(|t| t.text == "x").unwrap().line, 5);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; loop { break 'a; } }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        // 'a in generics, &'a, and the loop label break 'a
        assert_eq!(lifetimes.len(), 3, "{lifetimes:?}");
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(chars.len(), 2, "{chars:?}");
        assert_eq!(chars[0].text, "a");
        assert_eq!(chars[1].text, "\\n");
    }

    #[test]
    fn static_lifetime_and_escaped_quote_char() {
        let src = "let s: &'static str = \"\"; let q = '\\''; let bs = '\\\\';";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, "\\'");
        assert_eq!(chars[1].text, "\\\\");
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let src =
            "/// outer doc\n//! inner doc\n// plain\n//// not doc\n/** block doc */ fn f() {}";
        let kinds = kinds(src);
        let docs: Vec<_> = kinds.iter().filter(|(k, _)| *k == TokKind::DocComment).collect();
        let plain: Vec<_> = kinds.iter().filter(|(k, _)| *k == TokKind::Comment).collect();
        assert_eq!(docs.len(), 3, "{docs:?}");
        assert_eq!(plain.len(), 2, "{plain:?}");
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let texts = code_texts("for i in 0..n { let x = 1.5e-3; let h = 0xFF_u32; }");
        assert!(texts.contains(&"0".to_string()));
        assert!(texts.contains(&"1.5e-3".to_string()));
        assert!(texts.contains(&"0xFF_u32".to_string()));
        // the two range dots survived as puncts
        assert_eq!(texts.iter().filter(|t| *t == ".").count(), 2);
    }

    #[test]
    fn multiline_ordinary_string() {
        let src = "let s = \"first\n second\n third\"; let x = 3;";
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!((s.line, s.end_line), (1, 3));
        assert!(toks.iter().any(|t| t.text == "x" && t.line == 3));
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        for src in ["let s = \"open", "/* open", "let r = r#\"open", "let c = 'x"] {
            let _ = lex(src); // must terminate
        }
    }
}
