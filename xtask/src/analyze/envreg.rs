//! Env-var registry drift check: every literal `env::var("EL_…")` /
//! `env::var("RAYON_…")` read in the tree must have a row in
//! `docs/env-vars.md`, and every registry row must correspond to a real
//! read (stale rows fail too). Registry rows are markdown-table rows whose
//! first cell is the backticked variable name; the description cell must
//! be non-empty.
//!
//! The scan covers root `src/`, `crates/*` (including `benches/`),
//! `xtask/src/`, and `vendor/*/src/` — vendored rayon reads
//! `RAYON_NUM_THREADS`, which is very much part of this workspace's knob
//! surface. Files are pre-filtered by a cheap substring probe, then
//! confirmed at token level so a var name inside a comment or doc string
//! does not count as a read.

use super::model::Workspace;
use super::parser::parse_file;
use super::Finding;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Prefixes in scope for the registry.
const PREFIXES: &[&str] = &["EL_", "RAYON_"];

fn in_scope(name: &str) -> bool {
    PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Parses `docs/env-vars.md` table rows: `| \`NAME\` | … | description |`.
/// Returns name -> (line, description non-empty).
pub fn parse_registry(text: &str) -> BTreeMap<String, (u32, bool)> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let first = cells[0];
        let Some(name) = first.strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
            continue;
        };
        if !in_scope(name) {
            continue;
        }
        let described = cells.last().is_some_and(|d| !d.is_empty() && !d.chars().all(|c| c == '-'));
        out.insert(name.to_string(), (i as u32 + 1, described));
    }
    out
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
}

/// Directories scanned for env reads, relative to the repo root.
fn scan_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src"), root.join("xtask").join("src")];
    for parent in ["crates", "vendor"] {
        if let Ok(rd) = fs::read_dir(root.join(parent)) {
            let mut subs: Vec<PathBuf> =
                rd.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
            subs.sort();
            for s in subs {
                if parent == "crates" {
                    dirs.push(s.join("src"));
                    dirs.push(s.join("benches"));
                } else {
                    dirs.push(s.join("src"));
                }
            }
        }
    }
    dirs
}

/// All in-scope literal env reads under the scan dirs: name -> [(file, line)].
pub fn collect_reads(root: &Path) -> BTreeMap<String, Vec<(String, u32)>> {
    let mut reads: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
    for dir in scan_dirs(root) {
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            let Ok(entries) = fs::read_dir(&d) else { continue };
            let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
            paths.sort();
            for p in paths {
                if p.is_dir() {
                    stack.push(p);
                    continue;
                }
                if p.extension().and_then(|s| s.to_str()) != Some("rs") {
                    continue;
                }
                let Ok(text) = fs::read_to_string(&p) else { continue };
                // cheap pre-filter before the token-level parse
                if !PREFIXES.iter().any(|pre| text.contains(pre)) {
                    continue;
                }
                let parsed = parse_file(&rel(root, &p), &text);
                for r in parsed.env_reads {
                    if in_scope(&r.name) {
                        reads.entry(r.name).or_default().push((parsed.path.clone(), r.line));
                    }
                }
            }
        }
    }
    reads
}

pub fn check(root: &Path, _ws: &Workspace) -> Vec<Finding> {
    let registry_path = root.join("docs").join("env-vars.md");
    let registry_file = "docs/env-vars.md".to_string();
    let registry = match fs::read_to_string(&registry_path) {
        Ok(text) => parse_registry(&text),
        Err(_) => BTreeMap::new(),
    };
    let reads = collect_reads(root);

    let mut findings = Vec::new();
    for (name, sites) in &reads {
        match registry.get(name) {
            None => {
                let (file, line) = sites[0].clone();
                findings.push(Finding {
                    rule: "env-registry".into(),
                    file,
                    context: String::new(),
                    detail: format!("unregistered {name}"),
                    line,
                    msg: format!(
                        "env var `{name}` is read here but has no row in docs/env-vars.md"
                    ),
                    chain: sites.iter().map(|(f, l)| format!("read at {f}:{l}")).collect(),
                });
            }
            Some((reg_line, described)) if !described => {
                findings.push(Finding {
                    rule: "env-registry".into(),
                    file: registry_file.clone(),
                    context: String::new(),
                    detail: format!("undescribed {name}"),
                    line: *reg_line,
                    msg: format!("registry row for `{name}` has an empty description"),
                    chain: Vec::new(),
                });
            }
            Some(_) => {}
        }
    }
    for (name, (reg_line, _)) in &registry {
        if !reads.contains_key(name) {
            findings.push(Finding {
                rule: "env-registry".into(),
                file: registry_file.clone(),
                context: String::new(),
                detail: format!("stale {name}"),
                line: *reg_line,
                msg: format!(
                    "registry row for `{name}` matches no literal env read in the tree — remove it or fix the read"
                ),
                chain: Vec::new(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_table_parses() {
        let md = "\
# Env vars

| Variable | Read in | Description |
|---|---|---|
| `EL_KERNEL` | crates/tensor | Pins the micro-kernel tier. |
| `EL_EMPTY` | somewhere | |
| `PATH` | n/a | out of scope |
";
        let reg = parse_registry(md);
        assert_eq!(reg.len(), 2, "{reg:?}");
        assert!(reg["EL_KERNEL"].1);
        assert!(!reg["EL_EMPTY"].1, "empty description detected");
        assert!(!reg.contains_key("PATH"));
    }

    #[test]
    fn separator_row_is_not_a_description() {
        let md = "| `EL_X` | --- |\n";
        let reg = parse_registry(md);
        assert!(!reg["EL_X"].1);
    }
}
