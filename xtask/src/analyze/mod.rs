//! `cargo xtask analyze` — token-level workspace static analysis.
//!
//! Pipeline: [`lexer`] tokenizes each source file, [`parser`] builds a
//! per-file item model, [`model`] assembles the workspace (crate dep
//! graph + call-graph indexes), then the rule modules run:
//!
//! - [`alloc`] — `// CONTRACT: zero-alloc` reachability: annotated fns
//!   must not transitively reach a curated allocating-fn list.
//! - [`panics`] — `// CONTRACT: panic-free` audit: no `unwrap`/`expect`/
//!   `panic!`-family site reachable from annotated loops unless it carries
//!   an adjacent `// PANIC-OK: <reason>`.
//! - [`envreg`] — every literal `env::var("EL_…"/"RAYON_…")` read must be
//!   registered in `docs/env-vars.md`, and registry rows must not go stale.
//! - [`rules`] — the legacy `xtask lint` rules (SAFETY adjacency,
//!   `lock().unwrap()`, `Instant::now`, `target_feature` caller
//!   obligations) re-implemented on tokens so strings/comments can neither
//!   trigger nor suppress them.
//!
//! Findings are diffed against the committed `analysis-baseline.toml`
//! ratchet ([`baseline`]): pre-existing violations are tolerated, new ones
//! fail, and fixed ones must be removed from the baseline (also checked),
//! so the codebase monotonically improves.

pub mod alloc;
pub mod baseline;
pub mod envreg;
pub mod lexer;
pub mod model;
pub mod panics;
pub mod parser;
pub mod rules;

use std::fmt;
use std::fs;
use std::path::Path;

/// One analysis finding. `rule`/`file`/`context`/`detail` form the
/// line-number-independent baseline key; `line`/`msg`/`chain` are for the
/// human diagnostic only.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub rule: String,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// Enclosing function (qualified) or other stable anchor; empty when
    /// the finding has no natural context.
    pub context: String,
    /// What was found (sink name, panic kind, env-var name, …) — stable
    /// across line moves.
    pub detail: String,
    pub line: u32,
    pub msg: String,
    /// Call chain for reachability rules (root first), pre-rendered.
    pub chain: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)?;
        for step in &self.chain {
            write!(f, "\n    {step}")?;
        }
        Ok(())
    }
}

/// Outcome of a full analysis run.
pub struct Report {
    pub findings: Vec<Finding>,
    /// Counts per rule, for the summary line.
    pub fns_analyzed: usize,
    pub crates_analyzed: usize,
}

/// Runs every analysis over the repo at `root`. Does not consult the
/// baseline — callers diff via [`baseline::check`].
pub fn run_analyses(root: &Path) -> Report {
    let ws = model::build_workspace(root);
    let mut findings = Vec::new();
    findings.extend(alloc::check(&ws));
    findings.extend(panics::check(&ws));
    findings.extend(envreg::check(root, &ws));
    findings.extend(rules::check(root));
    findings.sort();
    findings.dedup();
    let fns_analyzed = ws.all_fns().count();
    Report { findings, fns_analyzed, crates_analyzed: ws.crates.len() }
}

/// Full `cargo xtask analyze` entry point: run, diff against the
/// baseline, write the report artifact, print diagnostics. Returns
/// `Err(count)` with the number of blocking problems when the build
/// should fail.
pub fn run(root: &Path, update_baseline: bool) -> Result<(), usize> {
    let report = run_analyses(root);
    let baseline_path = root.join("analysis-baseline.toml");

    if update_baseline {
        let text = baseline::render(&report.findings);
        fs::write(&baseline_path, text).expect("writing analysis-baseline.toml");
        println!(
            "analyze: baseline regenerated with {} tolerated finding(s) across {} crate(s), {} fn(s)",
            report.findings.len(),
            report.crates_analyzed,
            report.fns_analyzed
        );
        write_artifact(root, &report, &[]);
        return Ok(());
    }

    let base = baseline::load(&baseline_path);
    let diff = baseline::check(&report.findings, &base);

    write_artifact(root, &report, &diff.problems);

    for p in &diff.problems {
        eprintln!("{p}");
    }
    println!(
        "analyze: {} crate(s), {} fn(s), {} finding(s) ({} tolerated by baseline, {} new, {} stale baseline row(s))",
        report.crates_analyzed,
        report.fns_analyzed,
        report.findings.len(),
        diff.tolerated,
        diff.new_count,
        diff.stale_count
    );
    if diff.problems.is_empty() {
        Ok(())
    } else {
        eprintln!(
            "analyze: FAILED — fix the new finding(s), add `// PANIC-OK: <reason>` / registry rows where justified, or run `cargo xtask analyze --update-baseline` for stale rows"
        );
        Err(diff.problems.len())
    }
}

/// Writes `target/analyze/report.txt` (the CI artifact) with every
/// finding and every blocking problem.
fn write_artifact(root: &Path, report: &Report, problems: &[String]) {
    let dir = root.join("target").join("analyze");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut out = String::new();
    out.push_str(&format!(
        "analyze report: {} crate(s), {} fn(s), {} finding(s)\n\n",
        report.crates_analyzed,
        report.fns_analyzed,
        report.findings.len()
    ));
    if !problems.is_empty() {
        out.push_str("== blocking problems ==\n");
        for p in problems {
            out.push_str(p);
            out.push('\n');
        }
        out.push('\n');
    }
    out.push_str("== all findings (including baseline-tolerated) ==\n");
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    let _ = fs::write(dir.join("report.txt"), out);
}
