//! Panic-path audit: fns annotated `// CONTRACT: panic-free` (the
//! pipeline trainer loop, the serving loop) must not transitively reach
//! an `unwrap()`, `expect()`, or `panic!`-family macro in library code —
//! unless the site carries an adjacent `// PANIC-OK: <reason>`
//! justification. `assert!`/`assert_eq!` are deliberately *not* panic
//! sites: asserts state invariants and are part of the crash-consistency
//! story (fail fast, recover from checkpoint), whereas a stray `unwrap`
//! is usually an unhandled error path.

use super::model::{FnId, Workspace};
use super::Finding;

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let roots: Vec<FnId> = ws
        .all_fns()
        .filter(|(_, f)| f.contracts.panic_free && !f.is_test)
        .map(|(id, _)| id)
        .collect();

    let mut findings = Vec::new();
    for root in roots {
        let reached = ws.reach(&[root]);
        let root_name = ws.fn_item(root).qualified.clone();
        let mut ids: Vec<FnId> = reached.keys().copied().collect();
        ids.sort_by_key(|id| (ws.file(*id).path.clone(), ws.fn_item(*id).line));
        for id in ids {
            let item = ws.fn_item(id);
            if item.is_test {
                continue;
            }
            for site in &item.panic_sites {
                if site.allow_reason.is_some() {
                    continue;
                }
                let what = match &site.macro_name {
                    Some(m) => format!("{m}!"),
                    None => site.kind.label().to_string(),
                };
                let mut chain: Vec<String> = ws
                    .chain_to(&reached, id)
                    .into_iter()
                    .map(|(name, file, line)| format!("{name} ({file}:{line})"))
                    .collect();
                chain.push(format!("-> {} ({}:{})", what, ws.file(id).path, site.line));
                findings.push(Finding {
                    rule: "panic-path".into(),
                    file: ws.file(id).path.clone(),
                    context: item.qualified.clone(),
                    detail: format!("{root_name} reaches {what}"),
                    line: site.line,
                    msg: format!(
                        "{what} reachable from `// CONTRACT: panic-free` fn `{root_name}` without a `// PANIC-OK:` justification"
                    ),
                    chain,
                });
            }
        }
    }
    findings.sort();
    findings.dedup_by(|a, b| {
        (&a.rule, &a.file, &a.context, &a.detail, a.line)
            == (&b.rule, &b.file, &b.context, &b.detail, b.line)
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::model::workspace_from_sources;

    #[test]
    fn reachable_unwrap_flagged_with_chain() {
        let ws = workspace_from_sources(&[(
            "p",
            &[],
            &[(
                "crates/p/src/lib.rs",
                "// CONTRACT: panic-free\npub fn train() { step(); }\npub fn step() { let x: Option<u32> = None; x.unwrap(); }\n",
            )],
        )]);
        let f = check(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("unwrap"));
        let chain = f[0].chain.join(" | ");
        assert!(chain.contains("train") && chain.contains("step"), "{chain}");
    }

    #[test]
    fn panic_ok_suppresses() {
        let ws = workspace_from_sources(&[(
            "p",
            &[],
            &[(
                "crates/p/src/lib.rs",
                "// CONTRACT: panic-free\npub fn train() { step(); }\npub fn step() { let x = Some(1u32); x.unwrap(); // PANIC-OK: constructed Some above\n}\n",
            )],
        )]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn asserts_are_not_panic_sites() {
        let ws = workspace_from_sources(&[(
            "p",
            &[],
            &[(
                "crates/p/src/lib.rs",
                "// CONTRACT: panic-free\npub fn train(n: usize) { assert!(n > 0); assert_eq!(n % 2, 0); }\n",
            )],
        )]);
        assert!(check(&ws).is_empty());
    }

    #[test]
    fn panic_macro_two_hops_deep() {
        let ws = workspace_from_sources(&[
            ("core", &[], &[("crates/core/src/lib.rs", "pub fn inner() { panic!(\"boom\"); }\n")]),
            (
                "pipe",
                &["core"],
                &[(
                    "crates/pipe/src/lib.rs",
                    "// CONTRACT: panic-free\npub fn run() { mid(); }\npub fn mid() { inner(); }\n",
                )],
            ),
        ]);
        let f = check(&ws);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].detail.contains("panic!"), "{:?}", f[0]);
        assert!(f[0].file.contains("core"), "cross-crate reach: {:?}", f[0]);
    }

    #[test]
    fn unannotated_loop_not_audited() {
        let ws = workspace_from_sources(&[(
            "p",
            &[],
            &[("crates/p/src/lib.rs", "pub fn run() { let x: Option<u32> = None; x.unwrap(); }\n")],
        )]);
        assert!(check(&ws).is_empty());
    }
}
