//! # EL-Rec — Rust reproduction of the SC 2022 paper
//!
//! *"EL-Rec: Efficient Large-Scale Recommendation Model Training via
//! Tensor-Train Embedding Table"* (Wang et al., SC 2022).
//!
//! This umbrella crate re-exports the workspace crates so downstream users
//! can depend on one package:
//!
//! * [`tensor`] — dense linear algebra substrate (GEMM, batched GEMM, SVD,
//!   TT-SVD),
//! * [`data`] — synthetic DLRM workloads shaped like Avazu / Criteo Kaggle /
//!   Criteo Terabyte,
//! * [`core`] — the **Eff-TT table**: TT-compressed embedding tables with
//!   intermediate-result reuse, in-advance gradient aggregation and fused
//!   updates,
//! * [`reorder`] — locality-based index reordering (index graph + Louvain
//!   community detection),
//! * [`dlrm`] — the DLRM model (MLPs, feature interaction, losses,
//!   optimizers, dense `EmbeddingBag` baseline),
//! * [`pipeline`] — the TT-based pipeline training system (parameter server,
//!   pre-fetch/gradient queues, life-cycle embedding cache, all-reduce),
//! * [`sim`] — deterministic discrete-event simulator for the pipeline with
//!   seeded fault injection and staleness-invariant checking,
//! * [`frameworks`] — baseline framework emulations used by the benchmark
//!   harness (DLRM-PS, FAE, TT-Rec, HugeCTR-style, TorchRec-style),
//! * [`serve`] — online multi-tenant serving tier: cross-request coalescing
//!   over the TT prefix-reuse dedup, admission control with load shedding,
//!   tail-latency accounting.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use el_core as core;
pub use el_data as data;
pub use el_dlrm as dlrm;
pub use el_frameworks as frameworks;
pub use el_pipeline as pipeline;
pub use el_reorder as reorder;
pub use el_serve as serve;
pub use el_sim as sim;
pub use el_tensor as tensor;
