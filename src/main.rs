//! `el-rec` — command-line front end.
//!
//! ```text
//! el-rec train --dataset kaggle --scale 0.002 --batches 100 --checkpoint model.json
//! el-rec eval  --checkpoint model.json --dataset kaggle --scale 0.002
//! el-rec stats --dataset avazu --scale 0.005
//! el-rec plan  --dataset terabyte --dim 128 --device v100
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set to the substrate crates.

#![forbid(unsafe_code)]

use el_rec::core::TtConfig;
use el_rec::data::stats::AccessHistogram;
use el_rec::data::{DatasetSpec, MiniBatch, SyntheticDataset};
use el_rec::dlrm::checkpoint::DlrmCheckpoint;
use el_rec::dlrm::{DlrmConfig, DlrmModel, OptimizerKind};
use el_rec::pipeline::device::DeviceSpec;
use el_rec::pipeline::placement::{
    plan_placement, uniform_profiles, PlannerConfig, TablePlacement,
};
use el_rec::reorder::{ReorderConfig, Reorderer};
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "train" => cmd_train(&opts),
        "eval" => cmd_eval(&opts),
        "stats" => cmd_stats(&opts),
        "plan" => cmd_plan(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
el-rec — EL-Rec training CLI (SC 2022 reproduction)

USAGE:
  el-rec train  [--dataset kaggle|avazu|terabyte|toy] [--scale F] [--batches N]
                [--batch-size N] [--dim N] [--rank N] [--tt-threshold N]
                [--optimizer sgd|adagrad] [--lr F] [--reorder] [--seed N]
                [--checkpoint PATH]
  el-rec eval   --checkpoint PATH [--dataset ...] [--scale F] [--batches N]
                [--batch-size N] [--seed N]
  el-rec stats  [--dataset ...] [--scale F] [--batch-size N]
  el-rec plan   [--dataset ...] [--dim N] [--device v100|t4] [--hbm-fraction F]";

struct Opts {
    map: HashMap<String, String>,
    flags: Vec<String>,
}

impl Opts {
    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.map.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut map = HashMap::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let key = a.strip_prefix("--").ok_or_else(|| format!("expected --option, got {a:?}"))?;
        // boolean flags take no value
        if matches!(key, "reorder") {
            flags.push(key.to_string());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(Opts { map, flags })
}

fn dataset_from(opts: &Opts) -> Result<SyntheticDataset, String> {
    let scale: f64 = opts.get("scale", 0.002)?;
    let seed: u64 = opts.get("seed", 42)?;
    let spec = match opts.get_str("dataset", "kaggle").as_str() {
        "kaggle" => DatasetSpec::criteo_kaggle(scale),
        "avazu" => DatasetSpec::avazu(scale),
        "terabyte" => DatasetSpec::criteo_terabyte(scale),
        "toy" => DatasetSpec::toy(4, (50_000.0 * scale.max(0.02)) as usize, usize::MAX / 2),
        other => return Err(format!("unknown dataset {other:?}")),
    };
    Ok(SyntheticDataset::new(spec, seed))
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let ds = dataset_from(opts)?;
    let batches: u64 = opts.get("batches", 50)?;
    let batch_size: usize = opts.get("batch-size", 512)?;
    let dim: usize = opts.get("dim", 16)?;
    let rank: usize = opts.get("rank", 16)?;
    let tt_threshold: usize = opts.get("tt-threshold", 2_000)?;
    let lr: f32 = opts.get("lr", 0.05)?;
    let seed: u64 = opts.get("seed", 42)?;

    let mut cfg = DlrmConfig::for_spec(ds.spec(), dim, tt_threshold, rank);
    cfg.lr = lr;
    cfg.optimizer = match opts.get_str("optimizer", "sgd").as_str() {
        "sgd" => OptimizerKind::Sgd,
        "adagrad" => OptimizerKind::Adagrad { eps: 1e-8 },
        other => return Err(format!("unknown optimizer {other:?}")),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut model = DlrmModel::new(&cfg, &mut rng);
    println!(
        "model: {} tables ({} TT at rank {rank}), {:.2} MB device embeddings, {:?}",
        model.num_tables(),
        ds.spec().large_tables(tt_threshold).len(),
        model.embedding_footprint_bytes() as f64 / 1e6,
        cfg.optimizer,
    );

    // optional offline reordering of the large tables
    let mut bijections = vec![None; model.num_tables()];
    if opts.has_flag("reorder") {
        let reorderer =
            Reorderer::new(ReorderConfig { hot_ratio: 0.05, seed, ..ReorderConfig::default() });
        let profile: Vec<MiniBatch> = (0..8).map(|b| ds.batch(b, batch_size)).collect();
        for &t in &ds.spec().large_tables(tt_threshold) {
            let lists: Vec<&[u32]> = profile.iter().map(|b| &b.fields[t].indices[..]).collect();
            bijections[t] = Some(reorderer.fit(ds.spec().table_cardinalities[t], &lists));
        }
        println!("fitted index bijections for {} tables", bijections.iter().flatten().count());
    }

    let mut window = 0.0f32;
    let report_every = (batches / 10).max(1);
    for k in 0..batches {
        let mut batch = ds.batch(k, batch_size);
        for (t, bij) in bijections.iter().enumerate() {
            if let Some(b) = bij {
                batch.fields[t].remap(&b.forward);
            }
        }
        window += model.train_step(&batch);
        if (k + 1) % report_every == 0 {
            println!("batch {:>5}: mean loss {:.4}", k + 1, window / report_every as f32);
            window = 0.0;
        }
    }

    if let Some(path) = opts.map.get("checkpoint") {
        DlrmCheckpoint::capture(&model)
            .save_file(path)
            .map_err(|e| format!("saving checkpoint: {e}"))?;
        println!("checkpoint written to {path}");
        if bijections.iter().any(Option::is_some) {
            println!("note: evaluation must remap indices with the same bijections");
        }
    }
    Ok(())
}

fn cmd_eval(opts: &Opts) -> Result<(), String> {
    let path = opts.map.get("checkpoint").ok_or("eval requires --checkpoint PATH")?;
    let mut model = DlrmCheckpoint::load_file(path)
        .map_err(|e| format!("loading checkpoint: {e}"))?
        .restore()
        .map_err(|e| format!("restoring checkpoint: {e}"))?;
    let ds = dataset_from(opts)?;
    let batches: u64 = opts.get("batches", 8)?;
    let batch_size: usize = opts.get("batch-size", 512)?;
    let eval: Vec<MiniBatch> = (0..batches).map(|b| ds.batch(1_000_000 + b, batch_size)).collect();
    let m = model.evaluate(&eval);
    println!(
        "accuracy {:.2}%  auc {:.4}  log-loss {:.4}  ({} samples)",
        m.accuracy * 100.0,
        m.auc,
        m.log_loss,
        batches as usize * batch_size
    );
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let ds = dataset_from(opts)?;
    let batch_size: usize = opts.get("batch-size", 1024)?;
    let spec = ds.spec();
    println!(
        "{}: {} dense + {} sparse features, {} total embedding rows",
        spec.name,
        spec.num_dense,
        spec.num_sparse(),
        spec.total_rows()
    );
    let (table, &card) =
        spec.table_cardinalities.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
    let mut hist = AccessHistogram::new(card);
    let mut unique_sum = 0usize;
    let n_batches = 20u64;
    for b in 0..n_batches {
        let batch = ds.batch(b, batch_size);
        hist.record(&batch, table);
        unique_sum += batch.fields[table].unique_count();
    }
    println!("largest table: #{table} with {card} rows");
    for f in [0.01, 0.05, 0.1, 0.25] {
        println!(
            "  top {:>4.1}% of rows take {:>5.1}% of accesses",
            f * 100.0,
            hist.cumulative_share(f) * 100.0
        );
    }
    println!(
        "  avg unique indices per {batch_size}-sample batch: {:.0}",
        unique_sum as f64 / n_batches as f64
    );
    Ok(())
}

fn cmd_plan(opts: &Opts) -> Result<(), String> {
    let ds = dataset_from(opts)?;
    let dim: usize = opts.get("dim", 128)?;
    let device = match opts.get_str("device", "v100").as_str() {
        "v100" => DeviceSpec::v100(),
        "t4" => DeviceSpec::t4(),
        other => return Err(format!("unknown device {other:?}")),
    };
    let mut config = PlannerConfig::default();
    config.hbm_fraction = opts.get("hbm-fraction", config.hbm_fraction)?;

    let profiles = uniform_profiles(&ds.spec().table_cardinalities);
    let plan = plan_placement(&profiles, dim, &device, &config);
    let (dense, tt, hosted) = plan.class_counts();
    println!(
        "placement for {} at dim {dim} on {} ({:.0}% HBM budget):",
        ds.spec().name,
        device.name,
        config.hbm_fraction * 100.0
    );
    for (t, placement) in plan.tables.iter().enumerate() {
        let card = ds.spec().table_cardinalities[t];
        let desc = match placement {
            TablePlacement::DenseDevice => "dense on device".to_string(),
            TablePlacement::TtDevice { rank } => {
                let ratio = TtConfig::new(card, dim, *rank).compression_ratio();
                format!("TT rank {rank} on device ({ratio:.0}x smaller)")
            }
            TablePlacement::Hosted => "host memory (parameter server)".to_string(),
        };
        println!("  table {t:>2} ({card:>10} rows): {desc}");
    }
    println!(
        "summary: {dense} dense + {tt} TT + {hosted} hosted; device {:.2} MB, host {:.2} MB",
        plan.device_bytes as f64 / 1e6,
        plan.host_bytes as f64 / 1e6
    );
    Ok(())
}
