//! Offline stand-in for the `criterion` API slice this workspace uses.
//!
//! A deliberately small harness: per benchmark it calibrates an iteration
//! count to a ~5 ms sample, takes `sample_size` samples, and reports the
//! median. No statistical regression machinery — but unlike real criterion
//! it always emits machine-readable results: a JSON array written to
//! `BENCH_<bench-name>.json` in the working directory (override the path
//! with the `CRITERION_BENCH_JSON` environment variable), which is what the
//! per-PR perf tracking in this repo consumes.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// A bare name with no parameter.
    pub fn from_name(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// One measured benchmark.
#[derive(Clone, Debug)]
struct BenchResult {
    id: String,
    median_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

/// True when the binary was invoked with `--test` (as `cargo bench --
/// --test` does): each benchmark runs exactly once as a smoke check and no
/// measurements are reported — real criterion's test mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Measurement driver passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measured_ns: Option<f64>,
    iters_per_sample: u64,
    test_mode: bool,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration latency.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            // Smoke-run the closure once; leave no measurement behind.
            black_box(f());
            self.measured_ns = Some(0.0);
            self.iters_per_sample = 1;
            return;
        }
        // Warm-up / calibration: grow the per-sample iteration count until a
        // sample takes ~5 ms (covers icache + branch predictor warm-up).
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 22 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 8
            } else {
                // aim directly for the budget, capped at 8x per step
                let scale = Duration::from_millis(5).as_secs_f64() / elapsed.as_secs_f64();
                (iters as f64 * scale.clamp(2.0, 8.0)) as u64
            };
        }
        let mut samples: Vec<f64> = (0..self.sample_size.max(1))
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.measured_ns = Some(samples[samples.len() / 2]);
        self.iters_per_sample = iters;
    }

    /// Like `iter`, for closures consuming a per-iteration setup value.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iter(|| f(setup()));
    }
}

/// Batch sizing hint (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_throughput(tp: Throughput, ns: f64) -> String {
    let (count, unit) = match tp {
        Throughput::Elements(n) => (n, "elem"),
        Throughput::Bytes(n) => (n, "B"),
    };
    let per_sec = count as f64 / (ns / 1e9);
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) {
        self.throughput = Some(tp);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let test = test_mode();
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            measured_ns: None,
            iters_per_sample: 0,
            test_mode: test,
        };
        f(&mut bencher);
        let Some(ns) = bencher.measured_ns else {
            eprintln!("warning: benchmark {id} never called Bencher::iter");
            return;
        };
        if test {
            println!("Testing {id}: ok");
            return;
        }
        let mut line = format!("{id:<48} time: [{}]", format_time(ns));
        if let Some(tp) = self.throughput {
            line.push_str(&format!("  thrpt: [{}]", format_throughput(tp, ns)));
        }
        println!("{line}");
        self.criterion.results.push(BenchResult {
            id,
            median_ns: ns,
            samples: self.criterion.sample_size,
            iters_per_sample: bencher.iters_per_sample,
            throughput: self.throughput,
        });
    }

    /// Runs a benchmark taking an input reference.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        self.run_one(full, |b| f(b, input));
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        self.run_one(full, f);
        self
    }

    /// Ends the group (accumulated results stay on the `Criterion`).
    pub fn finish(self) {}
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
    provenance: Vec<(String, String)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, results: Vec::new(), provenance: Vec::new() }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Attaches provenance fields (kernel variant, CPU features, thread
    /// count, ...) emitted verbatim into every JSON result row, so a
    /// `BENCH_*.json` number can always be traced to the code path and
    /// machine that produced it.
    pub fn provenance(mut self, fields: Vec<(String, String)>) -> Self {
        self.provenance = fields;
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut group = BenchmarkGroup { criterion: self, name: String::new(), throughput: None };
        group.run_one(name.to_string(), f);
        self
    }

    /// Writes accumulated results as JSON (called by `criterion_group!`).
    pub fn final_summary(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let path = std::env::var("CRITERION_BENCH_JSON")
            .unwrap_or_else(|_| format!("BENCH_{}.json", bench_binary_stem()));
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let (tp_kind, tp_count) = match r.throughput {
                Some(Throughput::Elements(n)) => ("\"elements\"", n),
                Some(Throughput::Bytes(n)) => ("\"bytes\"", n),
                None => ("null", 0),
            };
            out.push_str(&format!(
                "  {{\"id\":\"{}\",\"median_ns\":{},\"samples\":{},\"iters_per_sample\":{},\
                 \"throughput_kind\":{},\"throughput_per_iter\":{}",
                r.id, r.median_ns, r.samples, r.iters_per_sample, tp_kind, tp_count
            ));
            for (key, value) in &self.provenance {
                out.push_str(&format!(",\"{}\":\"{}\"", escape_json(key), escape_json(value)));
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        match std::fs::write(&path, &out) {
            Ok(()) => println!("\nwrote {} result(s) to {path}", self.results.len()),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
        self.results.clear();
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Benchmark binary stem with cargo's trailing `-<hash>` stripped.
fn bench_binary_stem() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median_ns > 0.0);
        c.results.clear(); // avoid writing a JSON file from the unit test
    }

    #[test]
    fn provenance_fields_are_escaped() {
        assert_eq!(escape_json("avx2+fma"), "avx2+fma");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("blocked", 64).0, "blocked/64");
    }
}
