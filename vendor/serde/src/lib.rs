//! Offline stand-in for the `serde` API slice this workspace uses.
//!
//! Instead of real serde's zero-copy visitor architecture, this shim models
//! serialization as conversion to/from a [`Value`] tree (the same model
//! `serde_json::Value` uses). The derive macros in `serde_derive` generate
//! `to_value`/`from_value` impls; `serde_json` prints and parses the tree.
//! The data model matches serde's JSON encoding conventions (externally
//! tagged enums, maps for named-field structs), so checkpoints written by
//! this shim parse under real serde and vice versa.

#![forbid(unsafe_code)]

use std::fmt;

/// A self-describing value tree (the serde data model, JSON-shaped).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64` or is
    /// naturally unsigned).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map accessor.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence accessor.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric accessor with integer coercion.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up and deserializes a struct field (used by generated code).
pub fn field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---- primitive impls --------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| Error::custom("unsigned value out of i64 range"))?,
                    Value::F64(x) if x.fract() == 0.0 => x as i64,
                    _ => return Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: u64 = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) => u64::try_from(x)
                        .map_err(|_| Error::custom("negative value for unsigned field"))?,
                    Value::F64(x) if x.fract() == 0.0 && x >= 0.0 => x as u64,
                    _ => return Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| Error::custom("expected number for f32"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number for f64"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip_and_coercion() {
        let v = 42u32.to_value();
        assert_eq!(v, Value::U64(42));
        assert_eq!(i64::from_value(&v).unwrap(), 42);
        assert!(u8::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(256)).is_err());
    }

    #[test]
    fn float_round_trip_is_exact_for_f32() {
        let x = 0.1f32;
        assert_eq!(f32::from_value(&x.to_value()).unwrap(), x);
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1.0f32, 2.0, 3.0].to_value();
        assert_eq!(Vec::<f32>::from_value(&v).unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(7)).unwrap(), Some(7));
    }

    #[test]
    fn missing_field_is_an_error() {
        let m = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(field::<u32>(&m, "a").unwrap(), 1);
        assert!(field::<u32>(&m, "b").is_err());
    }
}
