//! Offline stand-in for the `serde_json` API slice this workspace uses:
//! JSON printing/parsing over the vendored serde shim's [`Value`] tree.
//!
//! Follows real serde_json's conventions where they matter for round trips:
//! non-finite floats serialize as `null`; numbers parse back as the
//! narrowest of i64/u64/f64; floats print via Rust's shortest round-trip
//! `Display`, so `f32 -> f64 -> text -> f64 -> f32` is exact.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// JSON serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

// ---- printing ---------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `Display` for f64 is the shortest round-trip decimal form
                // (and never scientific notation), so this is valid JSON.
                let s = x.to_string();
                out.push_str(&s);
                // bare integers like `1` must stay floats on reparse only if
                // the consumer asks for floats; serde's numeric coercion
                // already handles that, so no ".0" suffix is needed.
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to a JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value as JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    w.write_all(s.as_bytes()).map_err(|e| Error::msg(format!("io error: {e}")))
}

// ---- parsing ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, m: impl fmt::Display) -> Error {
        Error::msg(format!("{m} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input came from &str, so the
                    // boundary math is safe)
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("bad number"))
    }
}

/// Parses a JSON string into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&v).map_err(Error::from)
}

/// Parses JSON from a reader into a typed value.
pub fn from_reader<R: Read, T: Deserialize>(mut r: R) -> Result<T> {
    let mut buf = String::new();
    r.read_to_string(&mut buf).map_err(|e| Error::msg(format!("io error: {e}")))?;
    from_str(&buf)
}

/// Parses a JSON string into an untyped [`Value`].
pub fn value_from_str(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(from_str::<f32>("0.25").unwrap(), 0.25);
        assert!(from_str::<bool>(" true ").unwrap());
    }

    #[test]
    fn f32_text_round_trip_is_exact() {
        for &x in &[0.1f32, 1.0e-7, 3.4e38, -1.25, 7.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn nested_value_round_trip() {
        // numbers that fit i64 reparse as I64; only above-i64 stays U64
        let v = Value::Map(vec![
            ("xs".to_string(), Value::Seq(vec![Value::I64(1), Value::F64(2.5)])),
            ("big".to_string(), Value::U64(u64::MAX)),
            ("s".to_string(), Value::Str("a\"b\\c\n\u{1f600}".to_string())),
            ("none".to_string(), Value::Null),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v);
        assert_eq!(value_from_str(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(), "A\u{1f600}");
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
        assert!(from_str::<f32>("null").is_err());
        assert_eq!(from_str::<Option<f32>>("null").unwrap(), None);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<bool>("true false").is_err());
    }
}
