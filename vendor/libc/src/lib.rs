//! Offline stand-in for the `libc` FFI slice this workspace uses: the
//! `clock_gettime` entry point behind the device cost model's
//! per-thread CPU-time measurement.

#![deny(unsafe_op_in_unsafe_fn)]
#![allow(non_camel_case_types)]

/// C `time_t`.
pub type time_t = i64;
/// C `long` on LP64 Linux.
pub type c_long = i64;
/// C `int`.
pub type c_int = i32;
/// `clockid_t` for `clock_gettime`.
pub type clockid_t = c_int;

/// C `struct timespec`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds `[0, 1e9)`.
    pub tv_nsec: c_long,
}

/// Per-thread CPU-time clock id (Linux value).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;
/// Monotonic clock id (Linux value).
pub const CLOCK_MONOTONIC: clockid_t = 1;

extern "C" {
    /// POSIX `clock_gettime(2)`.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_advances() {
        let mut a = timespec::default();
        // SAFETY: `&mut a` is a valid, writable timespec for the call.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut a) };
        assert_eq!(rc, 0);
        // burn a little CPU so the clock must advance
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        let mut b = timespec::default();
        // SAFETY: `&mut b` is a valid, writable timespec for the call.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut b) };
        assert_eq!(rc, 0);
        let ns_a = a.tv_sec as i128 * 1_000_000_000 + a.tv_nsec as i128;
        let ns_b = b.tv_sec as i128 * 1_000_000_000 + b.tv_nsec as i128;
        assert!(ns_b > ns_a, "thread CPU clock did not advance");
    }
}
