//! Offline stand-in for the `proptest` API slice this workspace uses.
//!
//! Differences from real proptest, by design of the shim:
//! - **No shrinking.** A failing case reports the generated input and the
//!   deterministic per-test seed; rerunning reproduces it exactly.
//! - Generation is driven by the vendored `rand` xoshiro generator, seeded
//!   per test from the test function's name (override the base seed with
//!   the `PROPTEST_SEED` environment variable).
//! - `prop_assert!`/`prop_assert_eq!` return `Err` from the case closure
//!   instead of panicking mid-case, like the real macros.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy combinators and generation.
pub mod strategy {
    use super::*;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values failing the predicate (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe generation, for [`BoxedStrategy`].
    pub trait StrategyObj<T> {
        /// Draws one value.
        fn generate_obj(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> StrategyObj<S::Value> for S {
        fn generate_obj(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn StrategyObj<T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.as_ref().generate_obj(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 consecutive cases", self.whence)
        }
    }

    /// A constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }
    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Element count specification for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::*;

    /// Generates either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Runner configuration and the case loop.
pub mod test_runner {
    use super::strategy::Strategy;
    use super::*;

    /// Runner configuration (only `cases` is honored by the shim).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// FNV-1a, for deriving a per-test seed from its name.
    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs `cases` generated inputs through `f`, panicking with the input
    /// and seed on the first failure.
    pub fn run<S>(
        cfg: &ProptestConfig,
        test_name: &str,
        strat: S,
        f: impl Fn(S::Value) -> Result<(), String>,
    ) where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
    {
        let base = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(&s)),
            Err(_) => 0x9e3779b97f4a7c15,
        };
        let seed = base ^ fnv1a(test_name);
        let mut rng = StdRng::seed_from_u64(seed);
        for case in 0..cfg.cases {
            let value = strat.generate(&mut rng);
            if let Err(msg) = f(value.clone()) {
                panic!(
                    "proptest `{test_name}` failed at case {case}/{} (seed {seed:#x}):\n  \
                     {msg}\n  input: {value:?}",
                    cfg.cases
                );
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` test file needs.
pub mod prelude {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            ));
        }
    }};
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests. Mirrors real proptest's surface: an optional
/// `#![proptest_config(...)]` header, then `fn name(pat in strategy, ...)`
/// items whose bodies may use `prop_assert*`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run(
                &__cfg,
                stringify!($name),
                ($($strat,)+),
                |($($pat,)+)| -> ::std::result::Result<(), String> {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_vec_generate_in_bounds() {
        let strat = collection::vec(prop_oneof![Just(1u32), Just(2), Just(3)], 2..5);
        let cfg = ProptestConfig::with_cases(64);
        crate::test_runner::run(&cfg, "union_vec", (strat,), |(v,)| {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| (1..=3).contains(&x)));
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in 0usize..=4, flip in crate::bool::ANY) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!(u64::from(flip) <= 1);
        }

        #[test]
        fn flat_map_threads_dependent_values(
            (len, cut) in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..20))
        ) {
            prop_assert!((1..20).contains(&len));
            prop_assert!(cut < 20);
        }
    }

    #[test]
    #[should_panic(expected = "input:")]
    fn failing_case_reports_input() {
        let cfg = ProptestConfig::with_cases(8);
        crate::test_runner::run(&cfg, "always_fails", (0u32..10,), |(_x,)| Err("boom".to_string()));
    }
}
