//! Offline stand-in for the `rand_distr 0.4` API slice this workspace
//! uses: the [`Distribution`] trait and the [`Zipf`] distribution.

#![forbid(unsafe_code)]

use rand::Rng;

/// Parameterized distribution producing samples of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter-validation error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZipfError;

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid Zipf parameters")
    }
}
impl std::error::Error for ZipfError {}

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ 1 / k^s`.
///
/// Sampling rejects from the continuous majorizer `f(x) = min(1, x^-s)`
/// with rank `k = floor(x) + 1` (Devroye's construction): the majorizer
/// mass over `[k-1, k)` dominates `k^-s`, needs no per-instance tables,
/// and is O(1) expected time for any cardinality — the property the
/// synthetic dataset generator relies on for multi-million-row tables.
#[derive(Clone, Copy, Debug)]
pub struct Zipf<F> {
    n: F,
    s: F,
    /// `1 - s`; the integral of `x^-s` switches form at `q == 0`.
    q: F,
    /// Total majorizer mass `1 + integral_1^n x^-s dx`.
    t: F,
}

impl Zipf<f64> {
    /// Creates a Zipf distribution over `1..=n` with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n < 1 || s <= 0.0 || !s.is_finite() {
            return Err(ZipfError);
        }
        let n = n as f64;
        let q = 1.0 - s;
        let t = if q.abs() < 1e-12 { 1.0 + n.ln() } else { 1.0 + (n.powf(q) - 1.0) / q };
        Ok(Self { n, s, q, t })
    }

    /// Inverse of the (unnormalized) majorizer CDF
    /// `H(x) = x` for `x <= 1`, `1 + (x^q - 1)/q` beyond.
    fn inv_cdf(&self, mass: f64) -> f64 {
        if mass <= 1.0 {
            mass
        } else if self.q.abs() < 1e-12 {
            (mass - 1.0).exp()
        } else {
            (1.0 + self.q * (mass - 1.0)).powf(1.0 / self.q)
        }
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u = rng.gen_range(0.0f64..1.0);
            let x = self.inv_cdf(u * self.t).min(self.n);
            let k = (x.floor() + 1.0).min(self.n);
            // ratio = P(k) / majorizer(x): 1 when x <= 1 (k == 1), else
            // (k/x)^-s <= 1 because x < k.
            let ratio = if x <= 1.0 { 1.0 } else { (x / k).powf(self.s) };
            if rng.gen_range(0.0f64..1.0) <= ratio {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, 1.1).is_ok());
    }

    #[test]
    fn samples_stay_in_support() {
        for &(n, s) in &[(1u64, 1.0f64), (50, 1.1), (7, 0.6)] {
            let z = Zipf::new(n, s).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..5000 {
                let v = z.sample(&mut rng);
                assert!((1.0..=n as f64).contains(&v), "sample {v} for n={n}");
                assert_eq!(v, v.floor());
            }
        }
    }

    #[test]
    fn frequencies_match_zipf_mass() {
        let (n, s) = (100u64, 1.2f64);
        let z = Zipf::new(n, s).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let draws = 200_000;
        let mut counts = vec![0u32; n as usize + 1];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        for k in [1u64, 2, 3, 10] {
            let want = (k as f64).powf(-s) / norm;
            let got = counts[k as usize] as f64 / draws as f64;
            assert!(
                (got - want).abs() < 0.1 * want + 0.002,
                "P({k}): got {got:.4}, want {want:.4}"
            );
        }
    }

    #[test]
    fn unit_exponent_works() {
        // s == 1 hits the logarithmic branch of the majorizer.
        let z = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v));
        }
    }
}
