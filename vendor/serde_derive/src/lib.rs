//! Derive macros for the vendored serde shim, written against raw
//! `proc_macro` token streams (the container has no syn/quote).
//!
//! Supported input shapes — exactly what this workspace derives on:
//! non-generic structs with named fields, and non-generic enums with unit,
//! newtype/tuple, and struct variants. The only recognized field attribute
//! is `#[serde(skip)]` (omit on serialize, `Default::default()` on
//! deserialize). Anything else panics with a clear message at compile time.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// True for a `#[serde(...)]` attribute group containing the ident `skip`.
fn attr_is_serde_skip(attr: &Group) -> bool {
    let mut it = attr.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Skips `#[...]` attributes starting at `i`, noting `#[serde(skip)]`.
fn skip_attrs(toks: &[TokenTree], mut i: usize, skip_flag: &mut bool) -> usize {
    while i + 1 < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let TokenTree::Group(g) = &toks[i + 1] {
                    if attr_is_serde_skip(g) {
                        *skip_flag = true;
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a `pub` / `pub(...)` visibility marker starting at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Consumes a type (or any token run) up to a top-level `,`, tracking
/// angle-bracket depth. Returns the index just past the comma (or the end).
fn skip_to_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses a `{ name: Type, ... }` named-field body.
fn parse_named_fields(g: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let mut skip = false;
        i = skip_attrs(&toks, i, &mut skip);
        i = skip_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found `{other}`"),
        };
        i += 1;
        match &toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive shim: expected `:` after field `{name}` (tuple structs are unsupported)"),
        }
        i = skip_to_comma(&toks, i);
        out.push(Field { name, skip });
    }
    out
}

/// Counts elements of a tuple-variant `( ... )` body.
fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        n += 1;
        i = skip_to_comma(&toks, i);
    }
    n
}

/// Parses an enum `{ Variant, Variant(T), Variant { f: T } }` body.
fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let mut skip = false;
        i = skip_attrs(&toks, i, &mut skip);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found `{other}`"),
        };
        i += 1;
        let kind = match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g));
                i += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Struct(parse_named_fields(g));
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        // skip a possible discriminant, then the separating comma
        i = skip_to_comma(&toks, i);
        out.push(Variant { name, kind });
    }
    out
}

/// Parses the derive input into the supported shape, or panics.
fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut unused = false;
    i = skip_attrs(&toks, i, &mut unused);
    i = skip_vis(&toks, i);
    let kind = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found `{other:?}`"),
    };
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found `{other:?}`"),
    };
    i += 1;
    let body = match &toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.clone(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim: generic type `{name}` is unsupported")
        }
        other => panic!(
            "serde_derive shim: `{name}` must have a braced body (found {other:?}); \
             tuple/unit structs are unsupported"
        ),
    };
    match kind.as_str() {
        "struct" => Input::Struct { name, fields: parse_named_fields(&body) },
        "enum" => Input::Enum { name, variants: parse_variants(&body) },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

fn tuple_binders(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__f{k}")).collect()
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut body = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "__m.push((\"{0}\".to_string(), serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __m: Vec<(String, serde::Value)> = Vec::new();\n\
                         {body}\
                         serde::Value::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "Self::{vn}(__f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                         serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds = tuple_binders(*n);
                        let elems = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "Self::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             serde::Value::Seq(vec![{elems}]))]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pat =
                            fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "__fm.push((\"{0}\".to_string(), serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        let silence = fields
                            .iter()
                            .filter(|f| f.skip)
                            .map(|f| format!("let _ = {};\n", f.name))
                            .collect::<String>();
                        arms.push_str(&format!(
                            "Self::{vn} {{ {pat} }} => {{\n\
                                 let mut __fm: Vec<(String, serde::Value)> = Vec::new();\n\
                                 {silence}{pushes}\
                                 serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Map(__fm))])\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive shim: generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                if f.skip {
                    inits.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
                } else {
                    inits.push_str(&format!("{0}: serde::field(__m, \"{0}\")?,\n", f.name));
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         let __m = match __v {{\n\
                             serde::Value::Map(m) => m,\n\
                             _ => return Err(serde::Error::custom(\"{name}: expected map\")),\n\
                         }};\n\
                         Ok(Self {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok(Self::{vn}),\n"))
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok(Self::{vn}(serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems = (0..*n)
                            .map(|k| format!("serde::Deserialize::from_value(&__s[{k}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __s = match __inner {{\n\
                                     serde::Value::Seq(s) if s.len() == {n} => s,\n\
                                     _ => return Err(serde::Error::custom(\"{name}::{vn}: expected {n}-element sequence\")),\n\
                                 }};\n\
                                 Ok(Self::{vn}({elems}))\n\
                             }}\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: serde::field(__f, \"{0}\")?,\n",
                                    f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __f = match __inner {{\n\
                                     serde::Value::Map(f) => f,\n\
                                     _ => return Err(serde::Error::custom(\"{name}::{vn}: expected map\")),\n\
                                 }};\n\
                                 Ok(Self::{vn} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            let mut outer_arms = String::new();
            if !unit_arms.is_empty() {
                outer_arms.push_str(&format!(
                    "serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         other => Err(serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                     }},\n"
                ));
            }
            if !data_arms.is_empty() {
                outer_arms.push_str(&format!(
                    "serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__k, __inner) = (&__m[0].0, &__m[0].1);\n\
                         match __k.as_str() {{\n\
                             {data_arms}\
                             other => Err(serde::Error::custom(format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n"
                ));
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             {outer_arms}\
                             _ => Err(serde::Error::custom(\"{name}: bad enum encoding\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive shim: generated invalid Deserialize impl")
}
