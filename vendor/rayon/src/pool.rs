//! The shared worker pool behind the parallel iterators.
//!
//! One global injector queue (`Mutex<VecDeque>` + `Condvar`) feeds
//! `current_num_threads() - 1` long-lived workers, spawned lazily on the
//! first dispatch. Tasks carry a lifetime-erased `&dyn Fn(usize)` plus a
//! part index and a pointer to the caller's stack-held [`Latch`]; the
//! soundness contract is that the dispatching call **always** waits for its
//! latch before returning or unwinding, so every borrow a task touches
//! outlives the task.
//!
//! The waiting caller *helps*: while its latch is open it drains tasks from
//! the queue (its own or anyone else's), which keeps a single-core host —
//! where the pool has zero workers — fully functional and makes nested
//! parallel calls deadlock-free by construction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Locks a mutex, ignoring poisoning: the pool catches task panics with
/// `catch_unwind` before they can unwind through a held queue lock, and the
/// panic is re-raised on the *caller* by [`wait`] — so a poisoned flag here
/// carries no information and must never wedge the pool.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Countdown latch for one dispatched batch, owned by the caller's stack
/// frame. `panicked` latches any task panic for re-raising on the caller.
pub(crate) struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
}

impl Latch {
    pub(crate) fn new(count: usize) -> Self {
        Latch { remaining: AtomicUsize::new(count), panicked: AtomicBool::new(false) }
    }
}

/// A lifetime-erased unit of work: run `(*job)(index)`, then count down
/// `latch`.
struct Task {
    job: *const (dyn Fn(usize) + Sync),
    index: usize,
    latch: *const Latch,
}

// SAFETY: the pointers reference stack data of a caller that is blocked in
// `wait` until `latch` reaches zero, and the pointees are `Sync`.
unsafe impl Send for Task {}

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    cv: Condvar,
}

/// Number of threads that participate in parallel work (workers + the
/// calling thread). `RAYON_NUM_THREADS` overrides the core count.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        let fallback = || std::thread::available_parallelism().map_or(1, |n| n.get());
        match std::env::var("RAYON_NUM_THREADS") {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                // A set-but-useless override is a configuration bug worth
                // one loud line (the init runs once per process), not a
                // silent fall-through to the core count.
                _ => {
                    eprintln!(
                        "warning: RAYON_NUM_THREADS={raw:?} is not a positive integer; \
                         falling back to the core count"
                    );
                    fallback()
                }
            },
            Err(std::env::VarError::NotUnicode(raw)) => {
                eprintln!(
                    "warning: RAYON_NUM_THREADS={raw:?} is not a positive integer; \
                     falling back to the core count"
                );
                fallback()
            }
            Err(std::env::VarError::NotPresent) => fallback(),
        }
    })
}

fn shared() -> &'static Shared {
    static S: OnceLock<&'static Shared> = OnceLock::new();
    S.get_or_init(|| {
        let s: &'static Shared =
            Box::leak(Box::new(Shared { queue: Mutex::new(VecDeque::new()), cv: Condvar::new() }));
        for i in 0..current_num_threads().saturating_sub(1) {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || worker(s))
                .expect("failed to spawn rayon shim worker");
        }
        s
    })
}

/// Erases the lifetime of a borrowed job closure so it can sit in the
/// queue. Callers must uphold the wait-before-return contract (see module
/// docs).
pub(crate) fn erase_job<'a>(
    job: &'a (dyn Fn(usize) + Sync + 'a),
) -> *const (dyn Fn(usize) + Sync + 'static) {
    // SAFETY: fat-pointer layout is identical across lifetimes; validity is
    // the dispatching caller's wait-before-return obligation.
    unsafe {
        std::mem::transmute::<&'a (dyn Fn(usize) + Sync + 'a), &'static (dyn Fn(usize) + Sync)>(job)
    }
}

/// Enqueues `count` tasks running `job(1), …, job(count)` against `latch`.
/// (Index 0 is reserved for the caller to run inline.)
pub(crate) fn dispatch(job: *const (dyn Fn(usize) + Sync), latch: &Latch, count: usize) {
    let s = shared();
    {
        let mut q = lock_unpoisoned(&s.queue);
        for index in 1..=count {
            q.push_back(Task { job, index, latch: latch as *const Latch });
        }
    }
    s.cv.notify_all();
}

/// Blocks until every task counted by `latch` has finished, helping drain
/// the queue in the meantime; re-raises any task panic.
pub(crate) fn wait(latch: &Latch) {
    let s = shared();
    loop {
        if latch.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        // Help: run whatever is queued (our batch or a nested one).
        let task = {
            let mut q = lock_unpoisoned(&s.queue);
            match q.pop_front() {
                Some(t) => Some(t),
                None => {
                    // Re-check under the lock: completions decrement under
                    // this same lock, so a zero latch can't be missed. The
                    // timeout is belt-and-suspenders only.
                    if latch.remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    let _ =
                        s.cv.wait_timeout(q, Duration::from_millis(1))
                            .unwrap_or_else(PoisonError::into_inner);
                    None
                }
            }
        };
        if let Some(t) = task {
            run_task(s, t);
        }
    }
    if latch.panicked.load(Ordering::Relaxed) {
        panic!("a task in the parallel pool panicked");
    }
}

fn run_task(s: &Shared, t: Task) {
    // SAFETY: per the dispatch contract the job and latch outlive the task.
    let job = unsafe { &*t.job };
    // SAFETY: same dispatch contract — the latch lives until `wait` returns.
    let latch = unsafe { &*t.latch };
    let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(t.index))).is_ok();
    if !ok {
        latch.panicked.store(true, Ordering::Relaxed);
    }
    // Decrement under the queue lock so `wait`'s check-then-sleep cannot
    // miss the final count-down, then wake every sleeper.
    {
        let _q = lock_unpoisoned(&s.queue);
        latch.remaining.fetch_sub(1, Ordering::Release);
    }
    s.cv.notify_all();
}

fn worker(s: &'static Shared) {
    loop {
        let task = {
            let mut q = lock_unpoisoned(&s.queue);
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = s.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_task(s, task);
    }
}
