//! Offline **sequential** stand-in for the slice of the `rayon` API this
//! workspace uses.
//!
//! Every `par_*` entry point returns a thin wrapper around the
//! corresponding `std` iterator and executes on the calling thread. The
//! kernels in this repo are written so that parallel execution is an
//! optimization, never a semantic requirement (outputs are always
//! write-disjoint), so the sequential shim is behavior-identical. On the
//! single-core containers this repo is grown in it is also
//! performance-identical, while keeping the call sites ready for the real
//! rayon when the registry is reachable.

/// Number of worker threads (always 1: the shim runs inline).
pub fn current_num_threads() -> usize {
    1
}

/// Runs both closures (sequentially) and returns their results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential "parallel" iterator: a transparent wrapper adding the
/// rayon-specific combinators (`with_min_len`, …) to a std iterator.
pub struct Par<I>(pub I);

impl<I: Iterator> Par<I> {
    /// Chunking hint — a no-op for the sequential shim.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Chunking hint — a no-op for the sequential shim.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// See [`Iterator::enumerate`].
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// See [`Iterator::map`].
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// See [`Iterator::filter`].
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    /// Zips with anything convertible to a (sequential) parallel iterator.
    pub fn zip<J: IntoParallelIterator>(self, other: J) -> Par<std::iter::Zip<I, J::Iter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    /// Consumes the iterator, applying `f` to each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collects into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Folds sequentially (rayon's reduce with an identity).
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Item count.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// Conversion into a (sequential) parallel iterator by value.
pub trait IntoParallelIterator {
    /// Underlying std iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Performs the conversion.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<I: Iterator> IntoParallelIterator for Par<I> {
    type Iter = I;
    type Item = I::Item;
    fn into_par_iter(self) -> Par<I> {
        self
    }
}

macro_rules! impl_into_par_for_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = std::ops::Range<$t>;
            type Item = $t;
            fn into_par_iter(self) -> Par<Self::Iter> {
                Par(self)
            }
        }
    )*};
}
impl_into_par_for_range!(u32, u64, usize, i32, i64);

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

/// `par_iter` / `par_iter_mut` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item;
    /// Underlying std iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        self.into_par_iter()
    }
}

/// `par_iter_mut` on mutably borrowed collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (a mutable reference).
    type Item;
    /// Underlying std iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoParallelIterator,
{
    type Item = <&'a mut C as IntoParallelIterator>::Item;
    type Iter = <&'a mut C as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        self.into_par_iter()
    }
}

/// Chunked views of slices (`par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// See `[T]::chunks`.
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>>;
    /// See `[T]::windows`.
    fn par_windows(&self, size: usize) -> Par<std::slice::Windows<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(size))
    }
    fn par_windows(&self, size: usize) -> Par<std::slice::Windows<'_, T>> {
        Par(self.windows(size))
    }
}

/// Chunked mutable views of slices (`par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// See `[T]::chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(size))
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_mutation_matches_sequential() {
        let mut v: Vec<u32> = (0..17).collect();
        v.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x += 100 * i as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[4], 104);
        assert_eq!(v[16], 416);
    }

    #[test]
    fn zip_and_collect_work() {
        let a = vec![1, 2, 3];
        let out: Vec<i32> = a.par_iter().zip(vec![10, 20, 30]).map(|(x, y)| x + y).collect();
        assert_eq!(out, vec![11, 22, 33]);
        let sum: u64 = (0u64..5).into_par_iter().map(|i| i * i).sum();
        assert_eq!(sum, 30);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
        assert_eq!(super::current_num_threads(), 1);
    }
}
