//! Offline **multithreaded** stand-in for the slice of the `rayon` API this
//! workspace uses.
//!
//! Unlike the first iteration of this crate (a sequential shim), the
//! parallel iterators here really execute on multiple threads: a lazily
//! spawned pool of `available_parallelism() - 1` workers (override with
//! `RAYON_NUM_THREADS`) shares a single injector queue, and every
//! `for_each`/`collect`/`sum`/`reduce` splits its [`Producer`] into
//! contiguous parts that the caller and the workers drain together. The
//! caller always participates and *helps* — while waiting for its parts it
//! drains other tasks from the queue — so nested parallel calls cannot
//! deadlock, and a machine with one core runs everything inline with zero
//! dispatch overhead and zero allocation.
//!
//! Design notes:
//!
//! * Work is split **once** into at most `min(threads, len / min_len)`
//!   contiguous parts (no recursive stealing). For the band/chunk-shaped
//!   workloads in this repo that is within noise of real rayon while
//!   keeping the implementation dependency-free.
//! * Worker threads are long-lived, so `thread_local!` scratch buffers in
//!   the GEMM kernels stay warm across calls — the steady-state hot path
//!   performs no heap allocation (the injector queue retains its capacity).
//! * Outputs of the parallel call sites in this workspace are
//!   write-disjoint and part boundaries are deterministic, so parallel
//!   execution is behavior-identical to sequential execution.
//! * A panic inside a task is caught on the worker, the batch is drained to
//!   completion, and the panic is re-raised on the calling thread.

#![deny(unsafe_op_in_unsafe_fn)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

mod pool;

pub use pool::current_num_threads;
use pool::lock_unpoisoned;

/// Runs both closures, potentially in parallel, and returns their results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool::current_num_threads() == 1 {
        return (oper_a(), oper_b());
    }
    let slot_b = Mutex::new(Some(oper_b));
    let out_b: Mutex<Option<RB>> = Mutex::new(None);
    let job = |_i: usize| {
        let f = lock_unpoisoned(&slot_b).take().expect("join task ran twice");
        *lock_unpoisoned(&out_b) = Some(f());
    };
    let latch = pool::Latch::new(1);
    // SAFETY (lifetime erasure): `wait` does not return until the task has
    // completed, so `job`, `slot_b`, `out_b` and `latch` outlive all uses.
    pool::dispatch(pool::erase_job(&job), &latch, 1);
    let ra = catch_unwind(AssertUnwindSafe(oper_a));
    pool::wait(&latch);
    let ra = match ra {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    };
    let rb = out_b.into_inner().unwrap().expect("join task did not run");
    (ra, rb)
}

// ---------------------------------------------------------------------------
// Producers: splittable descriptions of parallelizable work
// ---------------------------------------------------------------------------

/// A splittable source of items — the analogue of rayon's internal
/// `Producer`. `split_at` cuts it into two contiguous halves at an item
/// index; `drain` sequentially feeds one part to a sink.
pub trait Producer: Sized + Send {
    /// The element type.
    type Item: Send;
    /// Exact number of items.
    fn len(&self) -> usize;
    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Splits into `[0, index)` and `[index, len)`; `index <= len`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Sequentially consumes this part.
    fn drain(self, each: impl FnMut(Self::Item));
}

/// A producer that can also hand out a pull-style iterator — required to
/// `zip` two producers together.
pub trait PullProducer: Producer {
    /// The sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts this part into a sequential iterator.
    fn into_seq_iter(self) -> Self::Iter;
}

/// Producer over an integer range.
pub struct RangeProducer<T> {
    cur: T,
    end: T,
}

macro_rules! impl_range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                (self.end - self.cur) as usize
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.cur + index as $t;
                (Self { cur: self.cur, end: mid }, Self { cur: mid, end: self.end })
            }
            fn drain(self, each: impl FnMut(Self::Item)) {
                (self.cur..self.end).for_each(each)
            }
        }
        impl PullProducer for RangeProducer<$t> {
            type Iter = std::ops::Range<$t>;
            fn into_seq_iter(self) -> Self::Iter {
                self.cur..self.end
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Producer = RangeProducer<$t>;
            fn into_par_iter(self) -> Par<Self::Producer> {
                Par::new(RangeProducer { cur: self.start, end: self.end })
            }
        }
    )*};
}
impl_range_producer!(u32, u64, usize, i32, i64);

/// Producer over `&[T]`.
pub struct SliceProducer<'a, T> {
    s: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.s.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.s.split_at(index);
        (Self { s: l }, Self { s: r })
    }
    fn drain(self, each: impl FnMut(Self::Item)) {
        self.s.iter().for_each(each)
    }
}

impl<'a, T: Sync> PullProducer for SliceProducer<'a, T> {
    type Iter = std::slice::Iter<'a, T>;
    fn into_seq_iter(self) -> Self::Iter {
        self.s.iter()
    }
}

/// Producer over `&mut [T]`.
pub struct SliceMutProducer<'a, T> {
    s: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.s.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.s.split_at_mut(index);
        (Self { s: l }, Self { s: r })
    }
    fn drain(self, each: impl FnMut(Self::Item)) {
        self.s.iter_mut().for_each(each)
    }
}

impl<'a, T: Send> PullProducer for SliceMutProducer<'a, T> {
    type Iter = std::slice::IterMut<'a, T>;
    fn into_seq_iter(self) -> Self::Iter {
        self.s.iter_mut()
    }
}

/// Producer over an owned `Vec<T>` (splitting moves the tail into a new
/// allocation; only by-value iteration needs it).
pub struct VecProducer<T> {
    v: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.v.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.v.split_off(index);
        (self, Self { v: tail })
    }
    fn drain(self, each: impl FnMut(Self::Item)) {
        self.v.into_iter().for_each(each)
    }
}

impl<T: Send> PullProducer for VecProducer<T> {
    type Iter = std::vec::IntoIter<T>;
    fn into_seq_iter(self) -> Self::Iter {
        self.v.into_iter()
    }
}

/// Producer over `chunks(size)` of a shared slice.
pub struct ChunksProducer<'a, T> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.s.len());
        let (l, r) = self.s.split_at(at);
        (Self { s: l, size: self.size }, Self { s: r, size: self.size })
    }
    fn drain(self, each: impl FnMut(Self::Item)) {
        self.s.chunks(self.size).for_each(each)
    }
}

impl<'a, T: Sync> PullProducer for ChunksProducer<'a, T> {
    type Iter = std::slice::Chunks<'a, T>;
    fn into_seq_iter(self) -> Self::Iter {
        self.s.chunks(self.size)
    }
}

/// Producer over `chunks_mut(size)` of a mutable slice.
pub struct ChunksMutProducer<'a, T> {
    s: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.s.len());
        let (l, r) = self.s.split_at_mut(at);
        (Self { s: l, size: self.size }, Self { s: r, size: self.size })
    }
    fn drain(self, each: impl FnMut(Self::Item)) {
        self.s.chunks_mut(self.size).for_each(each)
    }
}

impl<'a, T: Send> PullProducer for ChunksMutProducer<'a, T> {
    type Iter = std::slice::ChunksMut<'a, T>;
    fn into_seq_iter(self) -> Self::Iter {
        self.s.chunks_mut(self.size)
    }
}

/// Producer over `windows(size)` of a shared slice (windows overlap, so the
/// halves of a split share `size - 1` elements).
pub struct WindowsProducer<'a, T> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for WindowsProducer<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.s.len().saturating_sub(self.size - 1)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let left_end = (index + self.size - 1).min(self.s.len());
        (
            Self { s: &self.s[..left_end], size: self.size },
            Self { s: &self.s[index..], size: self.size },
        )
    }
    fn drain(self, each: impl FnMut(Self::Item)) {
        self.s.windows(self.size).for_each(each)
    }
}

impl<'a, T: Sync> PullProducer for WindowsProducer<'a, T> {
    type Iter = std::slice::Windows<'a, T>;
    fn into_seq_iter(self) -> Self::Iter {
        self.s.windows(self.size)
    }
}

/// Producer adapter numbering items; splits keep global indices correct.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (Self { base: l, offset: self.offset }, Self { base: r, offset: self.offset + index })
    }
    fn drain(self, mut each: impl FnMut(Self::Item)) {
        let mut i = self.offset;
        self.base.drain(|x| {
            each((i, x));
            i += 1;
        });
    }
}

impl<P: PullProducer> PullProducer for EnumerateProducer<P> {
    type Iter = std::iter::Zip<std::ops::Range<usize>, P::Iter>;
    fn into_seq_iter(self) -> Self::Iter {
        let lo = self.offset;
        let hi = self.offset + self.base.len();
        (lo..hi).zip(self.base.into_seq_iter())
    }
}

/// Producer adapter pairing two pull-style producers positionally.
pub struct ZipProducer<P, Q> {
    a: P,
    b: Q,
}

impl<P: PullProducer, Q: PullProducer> Producer for ZipProducer<P, Q> {
    type Item = (P::Item, Q::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Self { a: al, b: bl }, Self { a: ar, b: br })
    }
    fn drain(self, each: impl FnMut(Self::Item)) {
        self.a.into_seq_iter().zip(self.b.into_seq_iter()).for_each(each)
    }
}

impl<P: PullProducer, Q: PullProducer> PullProducer for ZipProducer<P, Q> {
    type Iter = std::iter::Zip<P::Iter, Q::Iter>;
    fn into_seq_iter(self) -> Self::Iter {
        self.a.into_seq_iter().zip(self.b.into_seq_iter())
    }
}

/// Producer adapter applying a shared mapping function on the consuming
/// thread (this is what makes `map(...).collect()` run in parallel).
pub struct MapProducer<P, F, O> {
    base: P,
    f: Arc<F>,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<P, F, O> Producer for MapProducer<P, F, O>
where
    P: Producer,
    F: Fn(P::Item) -> O + Send + Sync,
    O: Send,
{
    type Item = O;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Self { base: l, f: Arc::clone(&self.f), _out: std::marker::PhantomData },
            Self { base: r, f: self.f, _out: std::marker::PhantomData },
        )
    }
    fn drain(self, mut each: impl FnMut(Self::Item)) {
        let f = self.f;
        self.base.drain(|x| each(f(x)));
    }
}

// ---------------------------------------------------------------------------
// The parallel-iterator façade
// ---------------------------------------------------------------------------

/// Parallel iterator: a [`Producer`] plus split hints. Mirrors the subset of
/// rayon's `ParallelIterator`/`IndexedParallelIterator` this repo uses.
pub struct Par<P: Producer> {
    p: P,
    min_len: usize,
}

impl<P: Producer> Par<P> {
    fn new(p: P) -> Self {
        Par { p, min_len: 1 }
    }

    /// Lower bound on items per part (rayon's `with_min_len`).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Upper bound hint on items per part — accepted for API compatibility;
    /// the single-level splitter already caps parts at the thread count.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Numbers the items with their global index.
    pub fn enumerate(self) -> Par<EnumerateProducer<P>> {
        Par { p: EnumerateProducer { base: self.p, offset: 0 }, min_len: self.min_len }
    }

    /// Maps items through `f`; `f` runs on the consuming threads.
    pub fn map<O, F>(self, f: F) -> Par<MapProducer<P, F, O>>
    where
        F: Fn(P::Item) -> O + Send + Sync,
        O: Send,
    {
        Par {
            p: MapProducer { base: self.p, f: Arc::new(f), _out: std::marker::PhantomData },
            min_len: self.min_len,
        }
    }

    /// Keeps items matching the predicate. The filtering pass itself is
    /// sequential (no call site filters on the hot path); the surviving
    /// items form a new splittable producer.
    pub fn filter<F: FnMut(&P::Item) -> bool>(self, mut f: F) -> Par<VecProducer<P::Item>> {
        let mut v = Vec::new();
        self.p.drain(|x| {
            if f(&x) {
                v.push(x);
            }
        });
        Par { p: VecProducer { v }, min_len: self.min_len }
    }

    /// Zips with anything convertible to a parallel iterator.
    pub fn zip<J>(self, other: J) -> Par<ZipProducer<P, J::Producer>>
    where
        P: PullProducer,
        J: IntoParallelIterator,
        J::Producer: PullProducer,
    {
        Par { p: ZipProducer { a: self.p, b: other.into_par_iter().p }, min_len: self.min_len }
    }

    /// Consumes the iterator, applying `f` to every item across the pool.
    pub fn for_each<F: Fn(P::Item) + Sync>(self, f: F) {
        run_parts(self.p, self.min_len, &|part: P| part.drain(&f));
    }

    /// Collects into any `FromIterator` collection, preserving item order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let parts = run_parts(self.p, self.min_len, &|part: P| {
            let mut v = Vec::new();
            part.drain(|x| v.push(x));
            v
        });
        parts.into_iter().flatten().collect()
    }

    /// Sums the items (partial sums per part, then a final sum).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let parts = run_parts(self.p, self.min_len, &|part: P| {
            let mut v = Vec::new();
            part.drain(|x| v.push(x));
            v.into_iter().sum::<S>()
        });
        parts.into_iter().sum()
    }

    /// Reduces with an identity and an associative operation (rayon's
    /// `reduce`): parts fold locally, the partial results fold on the
    /// caller.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let parts = run_parts(self.p, self.min_len, &|part: P| {
            let mut acc: Option<P::Item> = None;
            part.drain(|x| {
                let a = acc.take().unwrap_or_else(&identity);
                acc = Some(op(a, x));
            });
            acc.unwrap_or_else(&identity)
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// Item count (exact — producers know their length).
    pub fn count(self) -> usize {
        self.p.len()
    }
}

/// Most parts a single call fans out to (also bounds the driver's
/// stack-allocated dispatch tables).
const MAX_PARTS: usize = 64;

/// Splits `p` into up to `min(threads, len/min_len, MAX_PARTS)` contiguous
/// parts, runs `part_fn` over them on the pool (caller included and
/// helping), and returns the per-part results in order. Inline — with no
/// queue traffic and no allocation beyond the result vector (none for
/// zero-sized `R`) — when only one part is warranted.
fn run_parts<P: Producer, R: Send>(
    p: P,
    min_len: usize,
    part_fn: &(impl Fn(P) -> R + Sync),
) -> Vec<R> {
    let n = p.len();
    let parts = pool::current_num_threads().min(MAX_PARTS).min(n.div_ceil(min_len.max(1))).max(1);
    run_parts_impl(p, parts, part_fn)
}

fn run_parts_impl<P: Producer, R: Send>(
    p: P,
    parts: usize,
    part_fn: &(impl Fn(P) -> R + Sync),
) -> Vec<R> {
    if parts <= 1 {
        return vec![part_fn(p)];
    }
    assert!(parts <= MAX_PARTS);
    let slots: [Mutex<Option<P>>; MAX_PARTS] = std::array::from_fn(|_| Mutex::new(None));
    let results: [Mutex<Option<R>>; MAX_PARTS] = std::array::from_fn(|_| Mutex::new(None));

    // Cut the producer into `parts` contiguous pieces, sizes within 1.
    let mut rem = Some(p);
    let mut left = rem.as_ref().unwrap().len();
    for (i, slot) in slots.iter().enumerate().take(parts) {
        let cur = rem.take().expect("producer part");
        if i + 1 < parts {
            let take = left.div_ceil(parts - i);
            let (l, r) = cur.split_at(take);
            *lock_unpoisoned(slot) = Some(l);
            rem = Some(r);
            left -= take;
        } else {
            *lock_unpoisoned(slot) = Some(cur);
        }
    }

    let job = |i: usize| {
        let part = lock_unpoisoned(&slots[i]).take().expect("part claimed twice");
        let r = part_fn(part);
        *lock_unpoisoned(&results[i]) = Some(r);
    };
    let latch = pool::Latch::new(parts - 1);
    // SAFETY (lifetime erasure): `wait` below does not return until every
    // dispatched task has completed, so `job`, `slots`, `results` and
    // `latch` outlive all uses — including the panic paths, which also wait
    // before unwinding.
    pool::dispatch(pool::erase_job(&job), &latch, parts - 1);
    let first = catch_unwind(AssertUnwindSafe(|| job(0)));
    pool::wait(&latch);
    if let Err(payload) = first {
        resume_unwind(payload);
    }
    results
        .iter()
        .take(parts)
        .map(|r| lock_unpoisoned(r).take().expect("missing part result"))
        .collect()
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Producer backing the iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Performs the conversion.
    fn into_par_iter(self) -> Par<Self::Producer>;
}

impl<P: Producer> IntoParallelIterator for Par<P> {
    type Item = P::Item;
    type Producer = P;
    fn into_par_iter(self) -> Par<P> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> Par<Self::Producer> {
        Par::new(VecProducer { v: self })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;
    fn into_par_iter(self) -> Par<Self::Producer> {
        Par::new(SliceProducer { s: self })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Producer = SliceProducer<'a, T>;
    fn into_par_iter(self) -> Par<Self::Producer> {
        Par::new(SliceProducer { s: self })
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Producer = SliceMutProducer<'a, T>;
    fn into_par_iter(self) -> Par<Self::Producer> {
        Par::new(SliceMutProducer { s: self })
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Producer = SliceMutProducer<'a, T>;
    fn into_par_iter(self) -> Par<Self::Producer> {
        Par::new(SliceMutProducer { s: self })
    }
}

/// `par_iter` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Producer backing the iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Par<Self::Producer>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    type Producer = <&'a C as IntoParallelIterator>::Producer;
    fn par_iter(&'a self) -> Par<Self::Producer> {
        self.into_par_iter()
    }
}

/// `par_iter_mut` on mutably borrowed collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (a mutable reference).
    type Item: Send;
    /// Producer backing the iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter_mut(&'a mut self) -> Par<Self::Producer>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoParallelIterator,
{
    type Item = <&'a mut C as IntoParallelIterator>::Item;
    type Producer = <&'a mut C as IntoParallelIterator>::Producer;
    fn par_iter_mut(&'a mut self) -> Par<Self::Producer> {
        self.into_par_iter()
    }
}

/// Chunked views of slices (`par_chunks`, `par_windows`).
pub trait ParallelSlice<T: Sync> {
    /// See `[T]::chunks`.
    fn par_chunks(&self, size: usize) -> Par<ChunksProducer<'_, T>>;
    /// See `[T]::windows`.
    fn par_windows(&self, size: usize) -> Par<WindowsProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Par<ChunksProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        Par::new(ChunksProducer { s: self, size })
    }
    fn par_windows(&self, size: usize) -> Par<WindowsProducer<'_, T>> {
        assert!(size != 0, "window size must be non-zero");
        Par::new(WindowsProducer { s: self, size })
    }
}

/// Chunked mutable views of slices (`par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// See `[T]::chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> Par<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> Par<ChunksMutProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        Par::new(ChunksMutProducer { s: self, size })
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunked_mutation_matches_sequential() {
        let mut v: Vec<u32> = (0..17).collect();
        v.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x += 100 * i as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[4], 104);
        assert_eq!(v[16], 416);
    }

    #[test]
    fn zip_and_collect_work() {
        let a = vec![1, 2, 3];
        let out: Vec<i32> = a.par_iter().zip(vec![10, 20, 30]).map(|(x, y)| x + y).collect();
        assert_eq!(out, vec![11, 22, 33]);
        let sum: u64 = (0u64..5).into_par_iter().map(|i| i * i).sum();
        assert_eq!(sum, 30);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k items is interpreter-hostile; small tests cover the protocol")]
    fn large_parallel_map_collect_is_ordered() {
        let out: Vec<u64> = (0u64..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn reduce_count_and_filter() {
        let total = (1u64..101).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
        assert_eq!((0usize..37).into_par_iter().count(), 37);
        let evens: Vec<u32> = (0u32..10).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn windows_cover_every_position() {
        let v: Vec<u32> = (0..20).collect();
        let sums: Vec<u32> = v.par_windows(3).map(|w| w.iter().sum()).collect();
        assert_eq!(sums.len(), 18);
        assert_eq!(sums[0], 1 + 2);
        assert_eq!(sums[17], 17 + 18 + 19);
    }

    /// Forces the queued multi-part path even on a single-core host: with
    /// zero workers the caller drains its own dispatched tasks while
    /// waiting, so this exercises dispatch, helping, and ordered results.
    #[test]
    fn forced_multi_part_execution_matches_sequential() {
        let n: u64 = if cfg!(miri) { 120 } else { 1000 };
        let v: Vec<u64> = (0..n).collect();
        let parts = run_parts_impl(VecProducer { v }, 8, &|part: VecProducer<u64>| {
            let mut s = 0u64;
            part.drain(|x| s += x);
            s
        });
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().sum::<u64>(), (n - 1) * n / 2);
    }

    #[test]
    fn forced_multi_part_panic_propagates() {
        let v: Vec<u64> = (0..100).collect();
        let r = std::panic::catch_unwind(|| {
            run_parts_impl(VecProducer { v }, 4, &|part: VecProducer<u64>| {
                part.drain(|x| assert!(x != 60, "boom"));
            });
        });
        assert!(r.is_err(), "panic inside a part must reach the caller");
    }

    /// The pool's dispatch/latch/lifetime-erasure protocol, driven directly
    /// at small task counts: a *borrowed* closure is erased to `'static`,
    /// dispatched `count` times, and `wait` must not return before every
    /// task ran exactly once. With zero workers (1-thread hosts, the Miri
    /// default) the caller drains its own queue inside `wait`, so the whole
    /// protocol — enqueue, erase, help, latch countdown — runs even there.
    #[test]
    fn pool_dispatch_latch_protocol_small_counts() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for count in 1..=4usize {
            let hits: Vec<AtomicUsize> = (0..=count).map(|_| AtomicUsize::new(0)).collect();
            let job = |i: usize| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            };
            let latch = pool::Latch::new(count);
            // SAFETY contract (wait-before-return) upheld right below.
            pool::dispatch(pool::erase_job(&job), &latch, count);
            pool::wait(&latch);
            assert_eq!(hits[0].load(Ordering::Relaxed), 0, "index 0 belongs to the caller");
            for (i, h) in hits.iter().enumerate().skip(1) {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} must run exactly once");
            }
        }
    }

    /// Every consumption strategy at miri-friendly sizes, with `min_len`
    /// forcing multi-part splits whenever more than one thread exists.
    #[test]
    fn all_strategies_small_counts() {
        let mut seen: Vec<u32> = {
            let acc = Mutex::new(Vec::new());
            (0u32..8).into_par_iter().with_min_len(1).for_each(|i| {
                lock_unpoisoned(&acc).push(i);
            });
            acc.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
        };
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<u32>>());

        let tripled: Vec<u64> = (0u64..9).into_par_iter().with_min_len(1).map(|i| i * 3).collect();
        assert_eq!(tripled, (0..9).map(|i| i * 3).collect::<Vec<u64>>());

        let total: u64 = (1u64..8).into_par_iter().with_min_len(1).sum();
        assert_eq!(total, 28);

        let max = (0i64..6).into_par_iter().with_min_len(1).reduce(|| i64::MIN, i64::max);
        assert_eq!(max, 5);

        let pairs: Vec<(usize, i32)> = vec![10, 20, 30].into_par_iter().enumerate().collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);

        let zipped: Vec<i32> =
            vec![1, 2, 3].into_par_iter().zip(vec![4, 5, 6]).map(|(a, b)| a * b).collect();
        assert_eq!(zipped, vec![4, 10, 18]);

        let odd: Vec<u32> = (0u32..10).into_par_iter().filter(|x| x % 2 == 1).collect();
        assert_eq!(odd, vec![1, 3, 5, 7, 9]);
    }

    /// Nested joins over borrowed state: the inner dispatches run while the
    /// outer latch is still open, exercising the helping path and the
    /// lifetime-erasure soundness argument two levels deep.
    #[test]
    fn nested_join_small_tree() {
        fn tree_sum(v: &[u64]) -> u64 {
            if v.len() <= 2 {
                return v.iter().sum();
            }
            let mid = v.len() / 2;
            let (a, b) = join(|| tree_sum(&v[..mid]), || tree_sum(&v[mid..]));
            a + b
        }
        let v: Vec<u64> = (0..25).collect();
        assert_eq!(tree_sum(&v), 300);
    }

    /// A panicking dispatched side of `join` must surface exactly one panic
    /// on the caller and leave the pool fully reusable.
    #[test]
    fn join_panic_propagates_and_pool_survives() {
        let r = std::panic::catch_unwind(|| {
            join(|| 1, || -> i32 { panic!("boom in b") });
        });
        assert!(r.is_err(), "panic in the dispatched closure must reach the caller");
        // Pool must still work afterwards.
        let (a, b) = join(|| 2, || 3);
        assert_eq!(a + b, 5);
        let v: Vec<u32> = (0u32..5).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn uneven_split_sizes_cover_all_items() {
        // 10 items over 3 forced parts: sizes 4/3/3, nothing lost or doubled.
        let v: Vec<u64> = (0..10).collect();
        let parts = run_parts_impl(VecProducer { v }, 3, &|part: VecProducer<u64>| {
            let mut items = Vec::new();
            part.drain(|x| items.push(x));
            items
        });
        let all: Vec<u64> = parts.into_iter().flatten().collect();
        assert_eq!(all, (0..10).collect::<Vec<u64>>());
    }
}
