//! Deterministic-seed concurrency stress harness for the vendored pool.
//!
//! The pool's soundness story (lifetime-erased tasks + a caller that always
//! waits) is exactly the kind of claim that only breaks under concurrency,
//! so this harness drives it hard in four shapes:
//!
//! 1. **nested `join` trees** — inner dispatches run while outer latches
//!    are open, stacking lifetime-erasure frames;
//! 2. **disjoint parallel mutation** — `par_chunks_mut` writers verified
//!    cell by cell;
//! 3. **concurrent dispatchers** — several OS threads issue parallel work
//!    against the one shared queue, so callers routinely drain *other*
//!    callers' tasks while waiting on their own latch;
//! 4. **panic propagation** — a panicking leaf inside nested `join` must
//!    surface exactly one panic at the caller and leave the pool reusable
//!    (a double panic would abort the child process, which the parent
//!    harness would report as a failure).
//!
//! Thread-count coverage: the pool sizes itself once per process from
//! `RAYON_NUM_THREADS`, so the `stress_pool_at_N_threads` tests re-exec
//! this test binary as a subprocess with the override set to 1, 2, 4 and 8
//! and run every scenario there. The same scenarios also run in-process
//! (at the ambient thread count, Miri-compatible) via
//! `stress_scenarios_inline`.
//!
//! All scenario data derives from fixed seeds through a splitmix64 stream —
//! reruns see identical inputs, so a failure reproduces.
//!
//! Under ThreadSanitizer (`cargo xtask tsan`) the subprocess tests give the
//! race detector 1/2/4/8-thread interleavings of the dispatch, latch and
//! help-drain protocol.

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rayon::prelude::*;

/// splitmix64: tiny, seedable, and good enough to decorrelate scenario
/// inputs across iterations.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Recursive join-tree sum over a borrowed slice.
fn tree_sum(v: &[u64]) -> u64 {
    if v.len() <= 4 {
        return v.iter().sum();
    }
    let mid = v.len() / 2;
    let (a, b) = rayon::join(|| tree_sum(&v[..mid]), || tree_sum(&v[mid..]));
    a.wrapping_add(b)
}

fn scenario_nested_join(seed: u64, len: usize) {
    let mut rng = SplitMix(seed);
    let v: Vec<u64> = (0..len).map(|_| rng.next() % 1000).collect();
    let expect: u64 = v.iter().sum();
    assert_eq!(tree_sum(&v), expect, "nested join tree lost or doubled work (seed {seed})");
}

fn scenario_disjoint_chunks(seed: u64, len: usize) {
    let mut rng = SplitMix(seed);
    let chunk = 1 + (rng.next() as usize % 7);
    let mut v = vec![u64::MAX; len];
    v.par_chunks_mut(chunk).enumerate().for_each(|(i, c)| {
        for x in c {
            *x = i as u64;
        }
    });
    for (j, &x) in v.iter().enumerate() {
        assert_eq!(x, (j / chunk) as u64, "chunk write misplaced (seed {seed})");
    }
}

fn scenario_concurrent_dispatchers(seed: u64, dispatchers: usize, len: usize) {
    let total = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for d in 0..dispatchers {
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            let mut rng = SplitMix(seed.wrapping_add(d as u64));
            let v: Vec<u64> = (0..len).map(|_| rng.next() % 100).collect();
            // Each dispatcher mixes strategies so several latch protocols
            // are in flight against the shared queue at once.
            let s1: u64 = v.par_iter().with_min_len(1).map(|&x| x).sum();
            let s2 = tree_sum(&v);
            let s3 = v.par_iter().with_min_len(1).map(|&x| x).reduce(|| 0, u64::wrapping_add);
            assert_eq!(s1, s2);
            assert_eq!(s2, s3);
            total.fetch_add(s1 as usize, Ordering::Relaxed);
        }));
    }
    for h in handles {
        h.join().expect("dispatcher thread panicked");
    }
    assert!(total.load(Ordering::Relaxed) > 0);
}

/// The panic-propagation satellite: a panicking task inside a nested join
/// must propagate exactly one panic to the caller (observed as one `Err`
/// from `catch_unwind`; a second in-flight panic would abort the process)
/// and the pool must stay reusable afterwards.
fn scenario_panic_propagation(seed: u64, len: usize) {
    let mut rng = SplitMix(seed);
    let poison = rng.next() % len as u64;
    let v: Vec<u64> = (0..len as u64).collect();

    fn walk(v: &[u64], poison: u64) {
        if v.len() <= 3 {
            for &x in v {
                assert!(x != poison, "stress poison {poison}");
            }
            return;
        }
        let mid = v.len() / 2;
        rayon::join(|| walk(&v[..mid], poison), || walk(&v[mid..], poison));
    }

    let r = catch_unwind(AssertUnwindSafe(|| walk(&v, poison)));
    assert!(r.is_err(), "poisoned nested join must panic (seed {seed})");

    // Reusability: the same pool must still produce correct results.
    assert_eq!(tree_sum(&v), v.iter().sum::<u64>(), "pool unusable after panic (seed {seed})");
}

/// One full pass over every scenario; `scale` shrinks the workload for
/// interpreter (Miri) runs.
fn run_all_scenarios(iterations: u64, scale: usize) {
    for it in 0..iterations {
        let base = 0xe1_5ec0_u64.wrapping_add(it.wrapping_mul(0x1000_0001));
        scenario_nested_join(base, 64 * scale);
        scenario_disjoint_chunks(base ^ 1, 97 * scale);
        scenario_concurrent_dispatchers(base ^ 2, 4, 32 * scale);
        scenario_panic_propagation(base ^ 3, 24 * scale);
    }
}

// ---------------------------------------------------------------------------
// In-process entry points
// ---------------------------------------------------------------------------

/// The scenarios at the ambient thread count — also the Miri entry point
/// (`cargo xtask miri` runs it once with the queue-only single-thread pool
/// and once with workers enabled).
#[test]
fn stress_scenarios_inline() {
    if cfg!(miri) {
        run_all_scenarios(1, 1);
    } else {
        run_all_scenarios(8, 4);
    }
}

/// Subprocess body: runs only when the parent harness re-execs this binary
/// with `EL_STRESS_CHILD` set, at the pinned `RAYON_NUM_THREADS`.
#[test]
fn stress_child() {
    if std::env::var("EL_STRESS_CHILD").is_err() {
        return; // not a child: the stress_pool_at_*_threads tests drive this
    }
    if let Ok(expect) = std::env::var("EL_EXPECT_THREADS") {
        let expect: usize = expect.parse().expect("EL_EXPECT_THREADS must be an integer");
        assert_eq!(
            rayon::current_num_threads(),
            expect,
            "RAYON_NUM_THREADS override was not honored"
        );
    }
    run_all_scenarios(6, 4);
}

// ---------------------------------------------------------------------------
// Subprocess harness
// ---------------------------------------------------------------------------

/// Re-execs this test binary with the pool pinned to `threads`, running
/// `child_test` there, and returns the child's stderr on success.
fn run_child(threads: &str, expect_threads: Option<usize>, child_test: &str) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.args([child_test, "--exact", "--nocapture"])
        .env("EL_STRESS_CHILD", "1")
        .env("RAYON_NUM_THREADS", threads)
        .env_remove("EL_EXPECT_THREADS");
    if let Some(n) = expect_threads {
        cmd.env("EL_EXPECT_THREADS", n.to_string());
    }
    let out = cmd.output().expect("spawning stress child failed");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "stress child (RAYON_NUM_THREADS={threads}) failed: {}\n--- stdout\n{}\n--- stderr\n{stderr}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
    );
    stderr
}

#[test]
#[cfg_attr(miri, ignore = "miri cannot spawn subprocesses")]
fn stress_pool_at_1_thread() {
    run_child("1", Some(1), "stress_child");
}

#[test]
#[cfg_attr(miri, ignore = "miri cannot spawn subprocesses")]
fn stress_pool_at_2_threads() {
    run_child("2", Some(2), "stress_child");
}

#[test]
#[cfg_attr(miri, ignore = "miri cannot spawn subprocesses")]
fn stress_pool_at_4_threads() {
    run_child("4", Some(4), "stress_child");
}

#[test]
#[cfg_attr(miri, ignore = "miri cannot spawn subprocesses")]
fn stress_pool_at_8_threads() {
    run_child("8", Some(8), "stress_child");
}

/// The `RAYON_NUM_THREADS` misconfiguration warning (satellite): a child
/// with an unparseable or zero override must warn once on stderr and fall
/// back to the core count, not silently misconfigure the pool.
#[test]
#[cfg_attr(miri, ignore = "miri cannot spawn subprocesses")]
fn bogus_thread_override_warns_once_and_falls_back() {
    for bogus in ["0", "zebra", " -3 ", ""] {
        let stderr = run_child(bogus, None, "stress_child");
        let warnings = stderr.matches("warning: RAYON_NUM_THREADS").count();
        assert_eq!(
            warnings, 1,
            "expected exactly one warning for RAYON_NUM_THREADS={bogus:?}, stderr:\n{stderr}"
        );
    }
}
