//! Offline stand-in for the `parking_lot` API slice this workspace uses:
//! `Mutex`/`RwLock` with guard-returning (non-`Result`) lock methods,
//! layered over `std::sync`. Like the real `parking_lot`, these locks do
//! **not** poison: a panic while a guard is held unlocks the lock and the
//! next acquirer sees the data as-is. (Poison-swallowing also keeps panic
//! propagation deterministic — the original panic is the only one the
//! caller observes, never a secondary `PoisonError` unwrap.)

#![forbid(unsafe_code)]

use std::sync;

/// Mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type of [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock; panicked previous holders do not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// RwLock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Mutex::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("holder dies");
        }));
        assert!(r.is_err());
        *m.lock() += 1; // must not panic: parking_lot locks never poison
        assert_eq!(*m.lock(), 1);
        let l = RwLock::new(5);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = l.write();
            panic!("writer dies");
        }));
        assert!(r.is_err());
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
