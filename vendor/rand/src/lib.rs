//! Offline stand-in for the slice of the `rand 0.8` API this workspace
//! uses: the [`Rng`] / [`SeedableRng`] traits and [`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong enough for every test and synthetic-data generator in the repo,
//! but **not** the same stream as upstream `rand`'s ChaCha12, so seeded
//! tests see different (still deterministic) data.

#![forbid(unsafe_code)]

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value interface (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        next_f64(self) < p
    }

    /// A sample of a type with an obvious uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    /// Fills a slice with standard samples.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for v in dest {
            *v = T::gen_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly without parameters (stand-in for sampling
/// with the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one sample.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        next_f64(rng)
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
pub(crate) fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from OS entropy (time-derived here).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, SplitMix64-seeded.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh entropy-seeded generator (`rand::thread_rng` stand-in; not
/// actually thread-cached — callers in this workspace create it rarely).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

pub mod distributions {
    pub mod uniform {
        use crate::{next_f64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// Ranges that can produce a uniform sample (the
        /// `rand::distributions::uniform::SampleRange` stand-in).
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let draw = (rng.next_u64() as u128 * span) >> 64;
                        (self.start as i128 + draw as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let draw = ((rng.next_u64() as u128) * span) >> 64;
                        (lo as i128 + draw as i128) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range");
                        let u = next_f64(rng) as $t;
                        self.start + u * (self.end - self.start)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range");
                        let u = next_f64(rng) as $t;
                        lo + u * (hi - lo)
                    }
                }
            )*};
        }
        impl_float_range!(f32, f64);
    }
}

/// `rand::prelude` stand-in.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn float_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
