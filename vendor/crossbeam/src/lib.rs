//! Offline stand-in for the `crossbeam::channel` API slice this workspace
//! uses, layered over `std::sync::mpsc`.

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// Bounded MPSC sender (std's `SyncSender` under crossbeam's name).
    pub type Sender<T> = mpsc::SyncSender<T>;
    /// Receiver end of a bounded channel.
    pub type Receiver<T> = mpsc::Receiver<T>;

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        mpsc::sync_channel(cap)
    }

    /// Creates an unbounded channel (std's asynchronous channel has an
    /// unbounded buffer, but a different sender type than [`Sender`];
    /// exposed under a distinct name to keep types honest).
    pub fn unbounded<T>() -> (mpsc::Sender<T>, Receiver<T>) {
        mpsc::channel()
    }

    /// Receives with a timeout (convenience mirror of crossbeam's
    /// `recv_timeout`).
    pub fn recv_timeout<T>(rx: &Receiver<T>, d: Duration) -> Result<T, RecvTimeoutError> {
        rx.recv_timeout(d)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn senders_are_cloneable() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.iter().count(), 2);
    }
}
