//! Property-based equivalence tests for every GEMM entry point against the
//! `gemm_ref` oracle: arbitrary shapes straddling the packed-kernel
//! cutoffs, degenerate dimensions (0 and 1), every transpose combination,
//! arbitrary alpha/beta, and batched launches with shared-A runs.

use el_tensor::batched::{batched_gemm, batched_gemm_seq, GemmBatch};
use el_tensor::gemm::{add_a_bt, add_at_b, gemm, gemm_nn, gemm_ref, par_gemm, Trans};
use el_tensor::micro::{self, gemm_packed, Kernel, Layout, MR, NR};
use proptest::prelude::*;

/// Deterministic pseudo-random fill so failures reproduce exactly.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Max |x| of the reference result, for relative tolerances.
fn tol(c: &[f32], k: usize) -> f32 {
    let scale = c.iter().fold(0.0f32, |m, &x| m.max(x.abs())).max(1.0);
    // f32 accumulation error grows with the reduction depth.
    scale * 1e-5 * (k.max(1) as f32).sqrt()
}

/// Shapes that probe tile remainders (around MR/NR), degenerate dims, and
/// both sides of the packed cutoffs.
fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        2usize..=8,
        Just(MR - 1),
        Just(MR),
        Just(MR + 1),
        Just(NR - 1),
        Just(NR),
        Just(NR + 1),
        17usize..=64,
        Just(96usize),
        Just(130usize),
    ]
}

fn arb_trans() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::No), Just(Trans::Yes)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `gemm` agrees with `gemm_ref` for every transpose combination and
    /// arbitrary alpha/beta on shapes below and above the packed cutoffs.
    #[test]
    fn gemm_matches_reference(
        (m, n, k) in (arb_dim(), arb_dim(), arb_dim()),
        (ta, tb) in (arb_trans(), arb_trans()),
        alpha in prop_oneof![Just(0.0f32), Just(1.0), Just(-0.5), Just(2.25)],
        beta in prop_oneof![Just(0.0f32), Just(1.0), Just(-1.5)],
        seed in 0u64..1000,
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xB0B, k * n);
        let c0 = fill(seed ^ 0xC0C, m * n);

        let mut want = c0.clone();
        gemm_ref(m, n, k, alpha, &a, ta, &b, tb, beta, &mut want);
        let mut got = c0.clone();
        gemm(m, n, k, alpha, &a, ta, &b, tb, beta, &mut got);

        let t = tol(&want, k);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() <= t, "{g} vs {w} (tol {t})");
        }
    }

    /// `gemm_packed` with explicit strided layouts matches the reference
    /// for all four layout combinations.
    #[test]
    fn packed_layouts_match_reference(
        (m, n, k) in (arb_dim(), arb_dim(), arb_dim()),
        (ta, tb) in (proptest::bool::ANY, proptest::bool::ANY),
        beta in prop_oneof![Just(0.0f32), Just(1.0)],
        seed in 0u64..1000,
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xE5E, k * n);
        let c0 = fill(seed ^ 0xF5F, m * n);

        let la = if ta { Layout::transposed(m) } else { Layout::row_major(k) };
        let lb = if tb { Layout::transposed(k) } else { Layout::row_major(n) };
        let mut want = c0.clone();
        gemm_ref(
            m, n, k, 1.0,
            &a, if ta { Trans::Yes } else { Trans::No },
            &b, if tb { Trans::Yes } else { Trans::No },
            beta, &mut want,
        );
        let mut got = c0.clone();
        gemm_packed(m, n, k, 1.0, &a, la, &b, lb, beta, &mut got);

        let t = tol(&want, k);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() <= t, "{g} vs {w} (tol {t})");
        }
    }

    /// The axpy path, the packed path, and the parallel entry point all
    /// compute the same NN product.
    #[test]
    fn nn_entry_points_agree(
        (m, n, k) in (arb_dim(), arb_dim(), arb_dim()),
        seed in 0u64..1000,
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xABC, k * n);

        let mut want = vec![0.0f32; m * n];
        gemm_ref(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut want);

        let t = tol(&want, k);
        let mut nn = vec![0.0f32; m * n];
        gemm_nn(m, n, k, 1.0, &a, &b, 0.0, &mut nn);
        let mut par = vec![0.0f32; m * n];
        par_gemm(m, n, k, 1.0, &a, &b, 0.0, &mut par);
        for i in 0..want.len() {
            prop_assert!((nn[i] - want[i]).abs() <= t);
            prop_assert!((par[i] - want[i]).abs() <= t);
        }
    }

    /// The gradient accumulators match reference accumulation.
    #[test]
    fn gradient_accumulators_match_reference(
        (p, m, n) in (arb_dim(), arb_dim(), arb_dim()),
        seed in 0u64..1000,
    ) {
        let a = fill(seed, p * m);
        let b = fill(seed ^ 0x123, p * n);
        let c0 = fill(seed ^ 0x456, m * n);

        // add_at_b: C += A^T B with A (p x m), B (p x n)
        let mut want = c0.clone();
        gemm_ref(m, n, p, 1.0, &a, Trans::Yes, &b, Trans::No, 1.0, &mut want);
        let mut got = c0.clone();
        add_at_b(p, m, n, &a, &b, &mut got);
        let t = tol(&want, p);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() <= t, "add_at_b: {g} vs {w}");
        }

        // add_a_bt: C += A B^T with A (m x p), B (n x p)
        let a2 = fill(seed ^ 0x789, m * p);
        let b2 = fill(seed ^ 0xDEF, n * p);
        let mut want2 = c0.clone();
        gemm_ref(m, n, p, 1.0, &a2, Trans::No, &b2, Trans::Yes, 1.0, &mut want2);
        let mut got2 = c0.clone();
        add_a_bt(m, n, p, &a2, &b2, &mut got2);
        for (g, w) in got2.iter().zip(&want2) {
            prop_assert!((g - w).abs() <= t, "add_a_bt: {g} vs {w}");
        }
    }

    /// Batched launches with runs of tasks sharing one A block (the
    /// shared-A packing fast path) match the sequential oracle.
    #[test]
    fn batched_shared_a_matches_sequential(
        (m, n, k) in (
            prop_oneof![Just(1usize), Just(4), Just(32)],
            prop_oneof![Just(16usize), Just(64), Just(128)],
            prop_oneof![Just(8usize), Just(32), Just(64)],
        ),
        run_lens in proptest::collection::vec(1usize..6, 1..8),
        seed in 0u64..1000,
    ) {
        let num_a = run_lens.len();
        let tasks: usize = run_lens.iter().sum();
        let a_arena = fill(seed, num_a * m * k);
        let b_arena = fill(seed ^ 0x333, tasks * k * n);

        let mut batch = GemmBatch::new(m, n, k);
        let mut slot = 0usize;
        for (ai, &len) in run_lens.iter().enumerate() {
            for _ in 0..len {
                batch.push(ai * m * k, slot * k * n, slot * m * n);
                slot += 1;
            }
        }

        let mut want = vec![0.0f32; tasks * m * n];
        batched_gemm_seq(&batch, &a_arena, &b_arena, &mut want);
        let mut got = vec![0.0f32; tasks * m * n];
        batched_gemm(&batch, &a_arena, &b_arena, &mut got);

        let t = tol(&want, k);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() <= t, "{g} vs {w}");
        }
    }

    /// Every supported micro-kernel variant agrees with the portable
    /// reference within a per-accumulation-step f32 ulp bound, on tail
    /// shapes that exercise partial MR x NR tiles and depth remainders.
    /// Runs the portable baseline first so the property also holds under
    /// `EL_FORCE_PORTABLE=1` / Miri (where only Portable is exercised).
    #[test]
    fn kernel_variants_agree_with_portable(
        m in arb_dim(),
        n in arb_dim(),
        k in arb_dim(),
        seed in 0u64..1000,
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xABCD, k * n);

        micro::set_kernel(Some(Kernel::Portable));
        let mut want = vec![0.0f32; m * n];
        gemm_packed(m, n, k, 1.0, &a, Layout::row_major(k), &b, Layout::row_major(n), 0.0, &mut want);

        for kernel in Kernel::ALL {
            if !kernel.supported() {
                continue;
            }
            micro::set_kernel(Some(kernel));
            let mut got = vec![0.0f32; m * n];
            gemm_packed(m, n, k, 1.0, &a, Layout::row_major(k), &b, Layout::row_major(n), 0.0, &mut got);
            micro::set_kernel(None);
            // One f32 rounding step per accumulation: |err| <= eps * (k+1)
            // * (sum |a_ip * b_pj| + 1), the same bound the unit suite
            // enforces per kernel.
            for i in 0..m {
                for j in 0..n {
                    let mut mag = 1.0f32;
                    for p in 0..k {
                        mag += (a[i * k + p] * b[p * n + j]).abs();
                    }
                    let bound = f32::EPSILON * (k as f32 + 1.0) * mag;
                    let diff = (got[i * n + j] - want[i * n + j]).abs();
                    prop_assert!(
                        diff <= bound,
                        "{}: c[{i},{j}] diverged by {diff} (bound {bound})",
                        kernel.name()
                    );
                }
            }
        }
        micro::set_kernel(None);
    }

    /// `pooled_gemm` (CSR-pooled A panels consumed inside the kernel)
    /// matches materialize-then-multiply on arbitrary shapes and offset
    /// lists, including repeated and overlapping panels.
    #[test]
    fn pooled_gemm_matches_materialized_sum(
        m in arb_dim(),
        n in arb_dim(),
        k in arb_dim(),
        seed in 0u64..1000,
        panel_picks in proptest::collection::vec(0usize..8, 0..10),
    ) {
        let panels = 8usize;
        let arena = fill(seed, panels.max(1) * m * k);
        let b = fill(seed ^ 0x5A5A, k * n);
        let offsets: Vec<usize> = panel_picks.iter().map(|&p| p * m * k).collect();

        let mut a_sum = vec![0.0f32; m * k];
        for &off in &offsets {
            for (s, &v) in a_sum.iter_mut().zip(&arena[off..off + m * k]) {
                *s += v;
            }
        }
        let mut want = fill(seed ^ 0x777, m * n);
        let mut got = want.clone();
        gemm_ref(m, n, k, 1.0, &a_sum, Trans::No, &b, Trans::No, 1.0, &mut want);
        el_tensor::batched::pooled_gemm(m, n, k, &arena, &offsets, &b, &mut got);

        let bound = tol(&want, k * offsets.len().max(1));
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!((g - w).abs() <= bound, "c[{i}]: {g} vs {w}");
        }
    }
}
