//! Dimension factorization helpers.
//!
//! A TT table reshapes an `M x N` embedding table into a `d`-dimensional
//! tensor with modes `(m_1 n_1) x ... x (m_d n_d)` where
//! `M = m_1 * ... * m_d` and `N = n_1 * ... * n_d` (paper §II-B, Figure 3).
//! Real cardinalities are rarely exact products, so — like TT-Rec — the row
//! count is padded up to the nearest representable product. These helpers
//! pick balanced factors with minimal padding.

/// Splits `target` into `d` factors whose product is the smallest value
/// `>= target` achievable with the greedy balanced scheme
/// (`f_i = ceil(remaining^(1/(d-i)))`).
///
/// Balanced factors minimize both the padding and the per-core footprint
/// `R * m_k * n_k * R`, which is why TT-Rec and EL-Rec use near-cubic-root
/// splits for three cores.
///
/// # Panics
/// Panics if `target == 0` or `d == 0`.
pub fn balanced_factorization(target: usize, d: usize) -> Vec<usize> {
    assert!(target > 0, "cannot factorize zero");
    assert!(d > 0, "need at least one factor");
    let mut factors = Vec::with_capacity(d);
    let mut remaining = target as f64;
    for i in 0..d {
        let left = (d - i) as f64;
        let f = remaining.powf(1.0 / left).ceil().max(1.0) as usize;
        factors.push(f);
        remaining = (remaining / f as f64).max(1.0);
    }
    // The greedy split can overshoot; shrink factors while the product still
    // covers the target to cut padding.
    loop {
        let mut improved = false;
        for i in 0..d {
            if factors[i] > 1 {
                let product_others: usize =
                    factors.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, f)| *f).product();
                if product_others * (factors[i] - 1) >= target {
                    factors[i] -= 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    factors.sort_unstable();
    factors
}

/// Exact factorization of `n` into `d` factors when possible, otherwise the
/// padded balanced factorization. Exactness matters for the *column*
/// dimension: padding `N` would change the embedding dimensionality.
pub fn factorize(n: usize, d: usize) -> Vec<usize> {
    if let Some(exact) = exact_factorization(n, d) {
        return exact;
    }
    balanced_factorization(n, d)
}

/// Tries to split `n` into `d` factors with product exactly `n`, keeping the
/// factors as balanced as the prime structure of `n` allows. Returns `None`
/// when `n` has fewer than useful divisors (e.g. a large prime).
pub fn exact_factorization(n: usize, d: usize) -> Option<Vec<usize>> {
    assert!(n > 0 && d > 0);
    if d == 1 {
        return Some(vec![n]);
    }
    // Choose the divisor closest to n^(1/d), then recurse on the quotient.
    let ideal = (n as f64).powf(1.0 / d as f64);
    let mut best: Option<usize> = None;
    let mut k = 1usize;
    while k * k <= n {
        if n.is_multiple_of(k) {
            for cand in [k, n / k] {
                if cand >= 1 && cand <= n {
                    let better = match best {
                        None => true,
                        Some(b) => (cand as f64 - ideal).abs() < (b as f64 - ideal).abs(),
                    };
                    // a factor of 1 in a multi-way split wastes a core
                    if better && (cand > 1 || n == 1) {
                        best = Some(cand);
                    }
                }
            }
        }
        k += 1;
    }
    let f = best?;
    if f == n && d > 1 && n > 1 {
        // cannot split a prime further without a trailing run of 1s
        return None;
    }
    let mut rest = exact_factorization(n / f, d - 1)?;
    rest.push(f);
    rest.sort_unstable();
    Some(rest)
}

/// Number of padded rows introduced by representing `target` rows with the
/// given factors.
pub fn padding(target: usize, factors: &[usize]) -> usize {
    let product: usize = factors.iter().product();
    assert!(product >= target, "factors must cover the target");
    product - target
}

/// Decomposes a flat index into mixed-radix digits (most-significant first),
/// the per-core TT indices of paper Eq. 3:
/// `i_k = (i / prod_{l>k} m_l) mod m_k`.
#[inline]
pub fn tt_indices(mut index: usize, dims: &[usize], out: &mut [usize]) {
    debug_assert_eq!(dims.len(), out.len());
    for k in (0..dims.len()).rev() {
        out[k] = index % dims[k];
        index /= dims[k];
    }
    debug_assert_eq!(index, 0, "index exceeds the factorized capacity");
}

/// Recomposes mixed-radix digits back into a flat index.
#[inline]
pub fn flat_index(digits: &[usize], dims: &[usize]) -> usize {
    debug_assert_eq!(digits.len(), dims.len());
    let mut idx = 0usize;
    for (d, m) in digits.iter().zip(dims) {
        debug_assert!(d < m);
        idx = idx * m + d;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn balanced_covers_and_is_tight_for_cubes() {
        assert_eq!(balanced_factorization(1000, 3), vec![10, 10, 10]);
        assert_eq!(balanced_factorization(8, 3), vec![2, 2, 2]);
        assert_eq!(balanced_factorization(1, 3), vec![1, 1, 1]);
    }

    #[test]
    fn balanced_padding_is_small() {
        // Criteo Kaggle's biggest table has ~10M rows.
        let f = balanced_factorization(10_131_227, 3);
        let p: usize = f.iter().product();
        assert!(p >= 10_131_227);
        assert!(p as f64 / 10_131_227_f64 <= 1.05, "padding above 5%: {f:?}");
    }

    #[test]
    fn exact_factorization_of_composites() {
        assert_eq!(exact_factorization(64, 3), Some(vec![4, 4, 4]));
        assert_eq!(exact_factorization(128, 3), Some(vec![4, 4, 8]));
        assert_eq!(exact_factorization(12, 2), Some(vec![3, 4]));
    }

    #[test]
    fn exact_factorization_refuses_primes() {
        assert_eq!(exact_factorization(13, 2), None);
        assert_eq!(exact_factorization(13, 1), Some(vec![13]));
    }

    #[test]
    fn tt_indices_round_trip_manual() {
        let dims = [2, 3, 4];
        let mut digits = [0usize; 3];
        tt_indices(12 + 4 + 3, &dims, &mut digits);
        assert_eq!(digits, [1, 1, 3]);
        assert_eq!(flat_index(&digits, &dims), 19);
    }

    proptest! {
        #[test]
        fn prop_balanced_always_covers(target in 1usize..5_000_000, d in 1usize..5) {
            let f = balanced_factorization(target, d);
            prop_assert_eq!(f.len(), d);
            let p: usize = f.iter().product();
            prop_assert!(p >= target);
        }

        #[test]
        fn prop_tt_indices_round_trip(i in 0usize..10_000) {
            let dims = [7usize, 11, 13, 3];
            let cap: usize = dims.iter().product();
            let i = i % cap;
            let mut digits = [0usize; 4];
            tt_indices(i, &dims, &mut digits);
            prop_assert_eq!(flat_index(&digits, &dims), i);
        }

        #[test]
        fn prop_exact_factorization_is_exact(n in 1usize..100_000, d in 1usize..4) {
            if let Some(f) = exact_factorization(n, d) {
                prop_assert_eq!(f.iter().product::<usize>(), n);
                prop_assert_eq!(f.len(), d);
            }
        }
    }
}
