//! Sharded partitioning primitives behind EL-Rec's *parallel pointer
//! preparation* (paper Algorithm 1).
//!
//! `LookupPlan` construction in `el-core` is a chain of counting sorts,
//! run-length dedups and permutation scatters. Parallelizing those needs
//! concurrent writes to disjoint positions of one output buffer — a pattern
//! safe Rust slices cannot express directly. This module packages it behind
//! a *sound* safe API so `el-core` can stay `#![forbid(unsafe_code)]`:
//!
//! * [`AtomicWriter`] reinterprets an exclusive `&mut [u32]`/`&mut [u64]`
//!   borrow as a slice of relaxed atomics. Disjoint writes cost the same as
//!   plain stores on x86/aarch64, and even a buggy caller that writes one
//!   position twice gets an unspecified *value*, never undefined behaviour;
//! * [`sharded_counting_sort`] is a stable parallel counting sort that is
//!   bit-identical to the sequential histogram + cursor scatter
//!   (`Csr::rebuild`) for any group assignment;
//! * [`for_each_segment_mut`] hands out disjoint variable-length segments of
//!   one slice to rayon via `split_at_mut` recursion (no `unsafe` at all).
//!
//! Synchronization: all writers run inside one rayon `join`/dispatch scope,
//! whose latch handshake gives the caller a happens-before edge over every
//! relaxed store before it reads the buffer again.

use rayon::prelude::*;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Scalar with an atomic twin of identical size, alignment and bit
/// representation (a documented guarantee of `std::sync::atomic`).
pub trait AtomicScalar: Copy + sealed::Sealed {
    /// The matching atomic type (`AtomicU32` for `u32`, ...).
    type Atomic: Sync;
    /// Relaxed store of `v` into `slot`.
    fn relaxed_store(slot: &Self::Atomic, v: Self);
}

impl AtomicScalar for u32 {
    type Atomic = AtomicU32;
    #[inline]
    fn relaxed_store(slot: &Self::Atomic, v: Self) {
        slot.store(v, Ordering::Relaxed);
    }
}

impl AtomicScalar for u64 {
    type Atomic = AtomicU64;
    #[inline]
    fn relaxed_store(slot: &Self::Atomic, v: Self) {
        slot.store(v, Ordering::Relaxed);
    }
}

/// Shared-reference scatter writer over an exclusively borrowed slice.
///
/// Concurrent `set` calls to *distinct* positions are exactly as fast as
/// plain stores; concurrent calls to the *same* position are still defined
/// (last write in modification order wins), so this type is sound for any
/// caller — correctness of the written values is the caller's business,
/// memory safety is not.
pub struct AtomicWriter<'a, T: AtomicScalar> {
    cells: &'a [T::Atomic],
}

impl<'a, T: AtomicScalar> AtomicWriter<'a, T> {
    /// Wraps `slice` for the writer's lifetime.
    pub fn new(slice: &'a mut [T]) -> Self {
        let len = slice.len();
        let ptr = slice.as_mut_ptr() as *const T::Atomic;
        // SAFETY: `T::Atomic` has the same size, alignment and bit validity
        // as `T` (std guarantee), the exclusive borrow rules out any other
        // access for 'a, and all further access goes through atomic
        // operations, so aliasing reads/writes are defined.
        let cells = unsafe { std::slice::from_raw_parts(ptr, len) };
        AtomicWriter { cells }
    }

    /// Number of wrapped elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Stores `v` at position `i` (relaxed; bounds-checked).
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        T::relaxed_store(&self.cells[i], v);
    }
}

/// Caps the shard count: beyond this the per-shard histograms cost more
/// than they recover in parallelism.
pub const MAX_SHARDS: usize = 64;

/// Number of contiguous parts worth splitting `n` items into when each part
/// should keep at least `min_len` items: bounded by the pool width and
/// [`MAX_SHARDS`], never zero.
pub fn num_parts(n: usize, min_len: usize) -> usize {
    let by_size = n / min_len.max(1);
    rayon::current_num_threads().min(by_size).clamp(1, MAX_SHARDS)
}

/// The `p`-th of `parts` balanced contiguous ranges covering `0..n`
/// (lengths differ by at most one, earlier parts take the remainder).
pub fn part_range(n: usize, parts: usize, p: usize) -> Range<usize> {
    debug_assert!(p < parts);
    let base = n / parts;
    let rem = n % parts;
    let start = p * base + p.min(rem);
    let len = base + usize::from(p < rem);
    start..start + len
}

/// Stable parallel counting sort of the item ids `0..n` into `groups`
/// buckets.
///
/// `group_of(i)` assigns item `i` to a group (must be `< groups`; checked).
/// On return `offsets` holds `groups + 1` boundaries and
/// `items[offsets[g]..offsets[g+1]]` lists group `g`'s items in ascending
/// id order — bit-identical to the sequential histogram + cursor scatter
/// for *any* assignment, because shard cursors are laid out part-minor
/// within each group.
///
/// `part_counts` is grow-only scratch (`parts * groups` entries).
pub fn sharded_counting_sort<F>(
    n: usize,
    groups: usize,
    group_of: F,
    offsets: &mut Vec<u32>,
    items: &mut Vec<u32>,
    part_counts: &mut Vec<u32>,
) where
    F: Fn(usize) -> u32 + Sync,
{
    assert!(n <= u32::MAX as usize, "item ids must fit in u32");
    let parts = num_parts(n, 1024);
    let want = parts * groups;
    if part_counts.len() < want {
        part_counts.resize(want, 0);
    } else {
        part_counts.truncate(want);
    }

    // Phase 1: per-part histograms (group assignments validated here).
    part_counts.par_chunks_mut(groups).enumerate().for_each(|(p, row)| {
        row.fill(0);
        for i in part_range(n, parts, p) {
            let g = group_of(i) as usize;
            assert!(g < groups, "group {g} out of {groups} groups");
            row[g] += 1;
        }
    });

    // Phase 2: exclusive prefix over (group, part) pairs, part-minor within
    // each group — this ordering is what makes the scatter stable.
    offsets.clear();
    offsets.resize(groups + 1, 0);
    let mut total = 0u32;
    for g in 0..groups {
        for p in 0..parts {
            let c = part_counts[p * groups + g];
            part_counts[p * groups + g] = total;
            total += c;
        }
        offsets[g + 1] = total;
    }

    // Phase 3: scatter through per-part cursors. Even if `group_of` were
    // impure across phases the writes stay defined (atomic), merely
    // producing an unspecified permutation.
    if items.len() < n {
        items.resize(n, 0);
    } else {
        items.truncate(n);
    }
    let writer = AtomicWriter::new(&mut items[..]);
    part_counts.par_chunks_mut(groups).enumerate().for_each(|(p, cursors)| {
        for i in part_range(n, parts, p) {
            let g = group_of(i) as usize;
            assert!(g < groups, "group {g} out of {groups} groups");
            let pos = cursors[g];
            cursors[g] = pos + 1;
            writer.set(pos as usize, i as u32);
        }
    });
}

/// Runs `f(segment_index, segment)` over the disjoint segments
/// `data[bounds[s] - bounds[0] .. bounds[s+1] - bounds[0]]` in parallel.
///
/// `bounds` must be non-decreasing and span exactly `data` (checked); the
/// segments are handed out by `split_at_mut` recursion, so this is entirely
/// safe code.
pub fn for_each_segment_mut<T, F>(data: &mut [T], bounds: &[u32], f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(!bounds.is_empty(), "bounds need at least one entry");
    assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "bounds must be non-decreasing");
    let base = bounds[0];
    assert_eq!((bounds[bounds.len() - 1] - base) as usize, data.len(), "bounds must span data");
    segment_recurse(data, bounds, base, 0, f);
}

fn segment_recurse<T, F>(data: &mut [T], bounds: &[u32], base: u32, first_seg: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let segs = bounds.len() - 1;
    if segs == 0 {
        return;
    }
    // Below ~4k elements the join overhead dominates any parallel win.
    if segs == 1 || data.len() <= 4096 {
        let mut rest = data;
        for s in 0..segs {
            let len = (bounds[s + 1] - bounds[s]) as usize;
            let (seg, tail) = rest.split_at_mut(len);
            f(first_seg + s, seg);
            rest = tail;
        }
        return;
    }
    let mid = segs / 2;
    let cut = (bounds[mid] - base) as usize;
    let (lo, hi) = data.split_at_mut(cut);
    rayon::join(
        || segment_recurse(lo, &bounds[..=mid], base, first_seg, f),
        || segment_recurse(hi, &bounds[mid..], bounds[mid], first_seg + mid, f),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for parts in 1..=9 {
                let mut next = 0;
                for p in 0..parts {
                    let r = part_range(n, parts, p);
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn atomic_writer_scatters() {
        let mut v = vec![0u32; 100];
        {
            let w = AtomicWriter::new(&mut v);
            (0..100usize).into_par_iter().for_each(|i| w.set(i, (99 - i) as u32));
        }
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x as usize, 99 - i);
        }
    }

    #[test]
    fn atomic_writer_u64() {
        let mut v = vec![0u64; 10];
        {
            let w = AtomicWriter::new(&mut v);
            w.set(3, u64::MAX);
            assert_eq!(w.len(), 10);
        }
        assert_eq!(v[3], u64::MAX);
    }

    /// Sequential reference: the `Csr::rebuild` counting sort.
    fn reference_sort(n: usize, groups: usize, assign: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = vec![0u32; groups + 1];
        for &g in assign {
            offsets[g as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..groups].to_vec();
        let mut items = vec![0u32; n];
        for (i, &g) in assign.iter().enumerate() {
            let c = &mut cursor[g as usize];
            items[*c as usize] = i as u32;
            *c += 1;
        }
        (offsets, items)
    }

    #[test]
    fn counting_sort_matches_sequential_reference() {
        let n = 10_000;
        let groups = 37;
        let assign: Vec<u32> = (0..n).map(|i| ((i * 2654435761usize) % groups) as u32).collect();
        let (want_off, want_items) = reference_sort(n, groups, &assign);
        let (mut off, mut items, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        sharded_counting_sort(n, groups, |i| assign[i], &mut off, &mut items, &mut scratch);
        assert_eq!(off, want_off);
        assert_eq!(items, want_items);
    }

    #[test]
    fn counting_sort_is_stable_within_groups() {
        let n = 5000;
        let assign: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let (mut off, mut items, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        sharded_counting_sort(n, 3, |i| assign[i], &mut off, &mut items, &mut scratch);
        for g in 0..3 {
            let seg = &items[off[g] as usize..off[g + 1] as usize];
            assert!(seg.windows(2).all(|w| w[0] < w[1]), "group {g} not in ascending id order");
        }
    }

    #[test]
    fn counting_sort_empty_and_single() {
        let (mut off, mut items, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        sharded_counting_sort(0, 4, |_| 0, &mut off, &mut items, &mut scratch);
        assert_eq!(off, vec![0, 0, 0, 0, 0]);
        assert!(items.is_empty());
        sharded_counting_sort(1, 2, |_| 1, &mut off, &mut items, &mut scratch);
        assert_eq!(off, vec![0, 0, 1]);
        assert_eq!(items, vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn counting_sort_rejects_out_of_range_groups() {
        let (mut off, mut items, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        sharded_counting_sort(4, 2, |_| 7, &mut off, &mut items, &mut scratch);
    }

    #[test]
    fn segments_receive_disjoint_slices() {
        let mut data: Vec<u32> = (0..20_000u32).collect();
        let bounds: Vec<u32> = vec![0, 5, 5, 9000, 9001, 17000, 20_000];
        for_each_segment_mut(&mut data, &bounds, &|s, seg| {
            assert_eq!(seg.len(), (bounds[s + 1] - bounds[s]) as usize);
            if !seg.is_empty() {
                assert_eq!(seg[0], bounds[s]);
            }
            seg.reverse();
        });
        // every segment reversed exactly once
        for s in 0..bounds.len() - 1 {
            let (lo, hi) = (bounds[s] as usize, bounds[s + 1] as usize);
            let seg = &data[lo..hi];
            assert!(seg.iter().rev().map(|&x| x as usize).eq(lo..hi));
        }
    }

    #[test]
    fn segment_sort_equals_global_sort() {
        // bucketed sort: partition by top bits, then sort each bucket —
        // must equal one global sort.
        let n = 30_000usize;
        let keys: Vec<u32> = (0..n).map(|i| ((i * 48271) % 65537) as u32).collect();
        let buckets = 16u32;
        let bucket_of = |i: usize| keys[i] * buckets / 65537;
        let (mut off, mut items, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        sharded_counting_sort(n, buckets as usize, bucket_of, &mut off, &mut items, &mut scratch);
        for_each_segment_mut(&mut items, &off, &|_, seg| {
            seg.sort_unstable_by_key(|&i| (keys[i as usize], i));
        });
        let mut want: Vec<u32> = (0..n as u32).collect();
        want.sort_unstable_by_key(|&i| (keys[i as usize], i));
        assert_eq!(items, want);
    }
}
