//! One-sided Jacobi singular value decomposition.
//!
//! TT-SVD repeatedly factors tall-skinny unfoldings, for which one-sided
//! Jacobi is simple, numerically robust and accurate to working precision.
//! This is a substrate component: production EL-Rec never decomposes a
//! trained table (cores are trained directly), but tests, the compression
//! sweep example and `TtCores::from_dense` need a trustworthy SVD.

// Jacobi rotations address two strided columns by index; iterator zips over
// `w[p]`/`w[q]` simultaneously would obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;

/// A (thin) singular value decomposition `A = U * diag(s) * Vt`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m x r`, orthonormal columns.
    pub u: Matrix,
    /// Singular values, non-increasing, length `r = min(m, n)`.
    pub s: Vec<f32>,
    /// Right singular vectors transposed, `r x n`, orthonormal rows.
    pub vt: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `a` with one-sided Jacobi rotations.
    pub fn compute(a: &Matrix) -> Svd {
        if a.rows() >= a.cols() {
            jacobi_tall(a)
        } else {
            // A = U S Vt  <=>  A^T = V S U^T
            let t = jacobi_tall(&a.transpose());
            Svd { u: t.vt.transpose(), s: t.s, vt: t.u.transpose() }
        }
    }

    /// Truncates the decomposition to at most `rank` components.
    pub fn truncate(mut self, rank: usize) -> Svd {
        let r = rank.min(self.s.len());
        self.s.truncate(r);
        let m = self.u.rows();
        let n = self.vt.cols();
        let mut u = Matrix::zeros(m, r);
        for i in 0..m {
            u.row_mut(i).copy_from_slice(&self.u.row(i)[..r]);
        }
        let mut vt = Matrix::zeros(r, n);
        for i in 0..r {
            vt.row_mut(i).copy_from_slice(self.vt.row(i));
        }
        Svd { u, s: self.s, vt }
    }

    /// Reconstructs `U * diag(s) * Vt`.
    pub fn reconstruct(&self) -> Matrix {
        let r = self.s.len();
        let mut scaled = self.vt.clone();
        for i in 0..r {
            let si = self.s[i];
            for v in scaled.row_mut(i) {
                *v *= si;
            }
        }
        crate::gemm::matmul(&self.u, &scaled)
    }

    /// Number of retained components.
    pub fn rank(&self) -> usize {
        self.s.len()
    }
}

/// One-sided Jacobi on a tall (or square) matrix: rotates column pairs of a
/// working copy `W = A * V` until all pairs are orthogonal; then
/// `s_j = ||W_j||`, `U_j = W_j / s_j`.
fn jacobi_tall(a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    debug_assert!(m >= n);

    // Column-major working copy: rotations touch whole columns.
    let mut w: Vec<Vec<f32>> = (0..n).map(|j| a.col(j)).collect();
    let mut v = Matrix::identity(n);

    let eps = 1e-9f64;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    let (x, y) = (w[p][i] as f64, w[q][i] as f64);
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                off += apq.abs();
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let (cf, sf) = (c as f32, s as f32);
                for i in 0..m {
                    let (x, y) = (w[p][i], w[q][i]);
                    w[p][i] = cf * x - sf * y;
                    w[q][i] = sf * x + cf * y;
                }
                for i in 0..n {
                    let (x, y) = (v.get(i, p), v.get(i, q));
                    v.set(i, p, cf * x - sf * y);
                    v.set(i, q, sf * x + cf * y);
                }
            }
        }
        if off < eps {
            break;
        }
    }

    // Singular values and sort order.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = w
        .iter()
        .map(|col| col.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (dst, &src) in order.iter().enumerate() {
        let norm = norms[src];
        s.push(norm as f32);
        if norm > 0.0 {
            for i in 0..m {
                u.set(i, dst, (w[src][i] as f64 / norm) as f32);
            }
        }
        for i in 0..n {
            vt.set(dst, i, v.get(i, src));
        }
    }
    Svd { u, s, vt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn reconstruction_error(a: &Matrix, svd: &Svd) -> f32 {
        a.max_abs_diff(&svd.reconstruct())
    }

    #[test]
    fn recovers_diagonal_singular_values() {
        let a = Matrix::from_fn(3, 3, |r, c| if r == c { (3 - r) as f32 } else { 0.0 });
        let svd = Svd::compute(&a);
        assert!((svd.s[0] - 3.0).abs() < 1e-5);
        assert!((svd.s[1] - 2.0).abs() < 1e-5);
        assert!((svd.s[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn reconstructs_random_tall_matrix() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = Matrix::uniform(20, 7, 1.0, &mut rng);
        let svd = Svd::compute(&a);
        assert!(reconstruction_error(&a, &svd) < 1e-4, "err {}", reconstruction_error(&a, &svd));
    }

    #[test]
    fn reconstructs_random_wide_matrix() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let a = Matrix::uniform(5, 18, 1.0, &mut rng);
        let svd = Svd::compute(&a);
        assert!(reconstruction_error(&a, &svd) < 1e-4);
    }

    #[test]
    fn singular_values_non_increasing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let a = Matrix::uniform(12, 12, 1.0, &mut rng);
        let svd = Svd::compute(&a);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
    }

    #[test]
    fn u_columns_orthonormal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        let a = Matrix::uniform(15, 6, 1.0, &mut rng);
        let svd = Svd::compute(&a);
        let gram = crate::gemm::matmul(&svd.u.transpose(), &svd.u);
        assert!(gram.max_abs_diff(&Matrix::identity(6)) < 1e-4);
    }

    #[test]
    fn truncation_of_low_rank_matrix_is_exact() {
        // rank-2 matrix: outer products
        let mut rng = rand::rngs::StdRng::seed_from_u64(46);
        let x = Matrix::uniform(10, 2, 1.0, &mut rng);
        let y = Matrix::uniform(2, 8, 1.0, &mut rng);
        let a = crate::gemm::matmul(&x, &y);
        let svd = Svd::compute(&a).truncate(2);
        assert_eq!(svd.rank(), 2);
        assert!(reconstruction_error(&a, &svd) < 1e-4);
    }

    #[test]
    fn truncation_drops_smallest_components() {
        let a = Matrix::from_fn(4, 4, |r, c| if r == c { (4 - r) as f32 } else { 0.0 });
        let svd = Svd::compute(&a).truncate(2);
        assert_eq!(svd.s.len(), 2);
        assert!((svd.s[0] - 4.0).abs() < 1e-5);
        let rec = svd.reconstruct();
        // the two largest diagonal entries survive, the rest vanish
        assert!((rec.get(0, 0) - 4.0).abs() < 1e-4);
        assert!(rec.get(3, 3).abs() < 1e-4);
    }

    #[test]
    fn zero_matrix_svd_is_zero() {
        let a = Matrix::zeros(4, 3);
        let svd = Svd::compute(&a);
        assert!(svd.s.iter().all(|&s| s == 0.0));
        assert!(reconstruction_error(&a, &svd) < 1e-7);
    }
}
