//! GEMM kernels.
//!
//! The Eff-TT forward/backward passes are sequences of small dense
//! matrix products, while the DLRM MLPs run a few large ones. The entry
//! points:
//!
//! * [`gemm_ref`] — textbook triple loop, the correctness oracle;
//! * [`gemm_nn`] — shape-dispatching sequential kernel: small products run
//!   the L1-friendly axpy loop ([`gemm_nn_axpy`]), large ones the packed
//!   register-blocked micro-kernel in [`crate::micro`];
//! * [`gemm`] — adds transpose flags; transposed operands are absorbed by
//!   the packing strides, never materialized;
//! * [`par_gemm`] — rayon row-parallel wrapper with flop-sized bands for
//!   the larger MLP layers.
//!
//! All kernels compute `C = alpha * op(A) * op(B) + beta * C` on row-major
//! slices, mirroring the BLAS `sgemm` contract closely enough that the
//! higher layers read like their CUDA counterparts. In particular `beta ==
//! 0` overwrites `C` (NaN-safe) and zero operand entries still propagate
//! NaN/Inf from the other operand — no value-dependent shortcuts.

use crate::matrix::Matrix;
use crate::micro::{self, Layout};
use rayon::prelude::*;

/// Transpose flag for a GEMM operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Reference GEMM: `C = alpha * op(A) * op(B) + beta * C`.
///
/// `a` is `m x k` after `ta`, `b` is `k x n` after `tb`, `c` is `m x n`.
/// Used as the oracle in tests and for tiny transposed shapes.
#[allow(clippy::too_many_arguments)]
pub fn gemm_ref(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(c.len(), m * n, "C must be m x n");
    match ta {
        Trans::No => assert_eq!(a.len(), m * k, "A must be m x k"),
        Trans::Yes => assert_eq!(a.len(), k * m, "A^T source must be k x m"),
    }
    match tb {
        Trans::No => assert_eq!(b.len(), k * n, "B must be k x n"),
        Trans::Yes => assert_eq!(b.len(), n * k, "B^T source must be n x k"),
    }
    let at = |i: usize, p: usize| match ta {
        Trans::No => a[i * k + p],
        Trans::Yes => a[p * m + i],
    };
    let bt = |p: usize, j: usize| match tb {
        Trans::No => b[p * n + j],
        Trans::Yes => b[j * k + p],
    };
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += at(i, p) * bt(p, j);
            }
            c[i * n + j] = alpha * acc + beta * c[i * n + j];
        }
    }
}

/// Panel width of the axpy kernel. 64 f32 = one cache line quadruple;
/// benchmarked as a good fit for the `n2*R2`-sized panels of TT slices.
const NB: usize = 64;
/// Depth blocking factor (along `k`) of the axpy kernel.
const KB: usize = 128;

/// `m*n*k` at which transposed operands switch from the reference loop to
/// the packed kernel. Much lower than [`micro::PACK_CUTOFF`]: the strided
/// reads of the reference loop are already painful at modest sizes, and
/// packing absorbs the transpose for free.
const TRANS_PACK_CUTOFF: usize = 1 << 12;

/// Sequential GEMM on row-major, non-transposed operands:
/// `C = alpha * A * B + beta * C`.
///
/// Dispatches on problem volume: at or above [`micro::PACK_CUTOFF`] the
/// packed register-blocked kernel wins; below it the operands fit in L1
/// and [`gemm_nn_axpy`] avoids the packing latency (the TT-slice products
/// of the Eff-TT chain all land here).
// BLAS-style signature: callers read it like `sgemm`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    if m * n * k >= micro::PACK_CUTOFF {
        micro::gemm_packed(
            m,
            n,
            k,
            alpha,
            a,
            Layout::row_major(k),
            b,
            Layout::row_major(n),
            beta,
            c,
        );
    } else {
        gemm_nn_axpy(m, n, k, alpha, a, b, beta, c);
    }
}

/// Blocked axpy GEMM — the small-shape kernel (and the packed kernel's
/// benchmark baseline).
///
/// The loop order (i, p-block, j-block) streams rows of `B` from L1/L2 and
/// keeps a row of `C` hot, which is the standard layout-friendly ordering
/// for row-major data.
// BLAS-style signature: callers read it like `sgemm`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_axpy(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill(0.0);
        } else {
            for x in c.iter_mut() {
                *x *= beta;
            }
        }
    }

    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut p0 = 0;
        while p0 < k {
            let pb = KB.min(k - p0);
            let mut j0 = 0;
            while j0 < n {
                let jb = NB.min(n - j0);
                for (pp, &av) in a_row[p0..p0 + pb].iter().enumerate() {
                    let scaled = alpha * av;
                    let b_row = &b[(p0 + pp) * n + j0..(p0 + pp) * n + j0 + jb];
                    let c_blk = &mut c_row[j0..j0 + jb];
                    for (cv, &bv) in c_blk.iter_mut().zip(b_row) {
                        *cv += scaled * bv;
                    }
                }
                j0 += jb;
            }
            p0 += pb;
        }
    }
}

/// Summed-A accumulating GEMM: `C += (Σ_b A_b) * B`, where each `A_b` is
/// the row-major `m x k` block of `a_arena` starting at `offsets[b]`.
///
/// This is the small-shape fused-pooling kernel (EL-Rec's pooled
/// lookup+GEMM): the pooled operand — the sum of per-lookup TT partial
/// products addressed by a lookup plan's CSR offsets — is consumed inline,
/// folded into the broadcast scalar of the axpy loop, and never
/// materialized. An empty `offsets` is an empty sum: `C` is untouched.
///
/// Large shapes should go through
/// [`pooled_gemm`](crate::batched::pooled_gemm), which routes them into the
/// packed loader ([`micro::with_packed_a_sum`]) instead.
pub fn gemm_sum_nn(
    m: usize,
    n: usize,
    k: usize,
    a_arena: &[f32],
    offsets: &[usize],
    b: &[f32],
    c: &mut [f32],
) {
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for &off in offsets {
        assert!(off + m * k <= a_arena.len(), "summed A block escapes its arena");
    }
    if offsets.is_empty() || m == 0 || n == 0 || k == 0 {
        return;
    }
    // Small pooled operands (the common TT fused-pooling shapes: `m*k` =
    // `dim * rank / n_t`) are summed once, panel-major, into a stack
    // buffer and handed to the tuned GEMM — panel-major accumulation
    // streams each A block sequentially instead of striding across all of
    // them per element, and the single `gemm_nn` call amortizes blocking
    // overhead that would otherwise be paid per depth block.
    const SUM_STACK: usize = 256;
    if m * k <= SUM_STACK {
        let mut a_sum = [0.0f32; SUM_STACK];
        let a_sum = &mut a_sum[..m * k];
        for &off in offsets {
            for (s, &v) in a_sum.iter_mut().zip(&a_arena[off..off + m * k]) {
                *s += v;
            }
        }
        gemm_nn(m, n, k, 1.0, a_sum, b, 1.0, c);
        return;
    }
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut p0 = 0;
        while p0 < k {
            let pb = KB.min(k - p0);
            // Pool the A rows once per depth block (stack scratch), then
            // stream B as in `gemm_nn_axpy`.
            let mut a_sum = [0.0f32; KB];
            for (pp, s) in a_sum[..pb].iter_mut().enumerate() {
                let idx = i * k + p0 + pp;
                let mut acc = 0.0f32;
                for &off in offsets {
                    acc += a_arena[off + idx];
                }
                *s = acc;
            }
            let mut j0 = 0;
            while j0 < n {
                let jb = NB.min(n - j0);
                for (pp, &av) in a_sum[..pb].iter().enumerate() {
                    let b_row = &b[(p0 + pp) * n + j0..(p0 + pp) * n + j0 + jb];
                    let c_blk = &mut c_row[j0..j0 + jb];
                    for (cv, &bv) in c_blk.iter_mut().zip(b_row) {
                        *cv += av * bv;
                    }
                }
                j0 += jb;
            }
            p0 += pb;
        }
    }
}

/// General GEMM with transpose flags.
///
/// The `Trans::No/No` case dispatches to [`gemm_nn`]. Transposed operands
/// are consumed in place: above `TRANS_PACK_CUTOFF` the packed kernel
/// absorbs the transpose into its packing strides, below it the reference
/// loop reads through the strides directly — neither path allocates.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    beta: f32,
    c: &mut [f32],
) {
    if ta == Trans::No && tb == Trans::No {
        return gemm_nn(m, n, k, alpha, a, b, beta, c);
    }
    match ta {
        Trans::No => assert_eq!(a.len(), m * k, "A must be m x k"),
        Trans::Yes => assert_eq!(a.len(), k * m, "A^T source must be k x m"),
    }
    match tb {
        Trans::No => assert_eq!(b.len(), k * n, "B must be k x n"),
        Trans::Yes => assert_eq!(b.len(), n * k, "B^T source must be n x k"),
    }
    if m * n * k >= TRANS_PACK_CUTOFF {
        let la = match ta {
            Trans::No => Layout::row_major(k),
            Trans::Yes => Layout::transposed(m),
        };
        let lb = match tb {
            Trans::No => Layout::row_major(n),
            Trans::Yes => Layout::transposed(k),
        };
        micro::gemm_packed(m, n, k, alpha, a, la, b, lb, beta, c);
    } else {
        gemm_ref(m, n, k, alpha, a, ta, b, tb, beta, c);
    }
}

/// Row-parallel GEMM for the large MLP products: `C = alpha*A*B + beta*C`.
///
/// Rows of `C` are split into contiguous bands sized by flops — each band
/// carries roughly `PAR_BAND_FLOPS` multiply-adds, enough to amortize
/// fork/join while leaving several chunks per worker for stealing. Falls
/// back to the sequential kernel when the whole problem is too small.
// BLAS-style signature: callers read it like `sgemm`.
#[allow(clippy::too_many_arguments)]
pub fn par_gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);

    // ~1 MFLOP cutoff: below this the fork/join overhead dominates.
    if m * n * k < 1 << 20 {
        return gemm_nn(m, n, k, alpha, a, b, beta, c);
    }

    // Rows per band so that one band is ~PAR_BAND_FLOPS of work, capped so
    // every worker still sees at least two chunks.
    let by_flops = (PAR_BAND_FLOPS / (2 * n * k).max(1)).max(1);
    let by_threads = m.div_ceil(rayon::current_num_threads() * 2).max(1);
    let band = by_flops.min(by_threads);
    c.par_chunks_mut(band * n).enumerate().for_each(|(bi, c_band)| {
        let row0 = bi * band;
        let rows = c_band.len() / n;
        gemm_nn(rows, n, k, alpha, &a[row0 * k..(row0 + rows) * k], b, beta, c_band);
    });
}

/// Work target per parallel band of [`par_gemm`] (multiply-adds).
const PAR_BAND_FLOPS: usize = 1 << 22;

/// Row-parallel `C = alpha*A*B^T + beta*C` with `B` stored `n x k`
/// row-major (the PyTorch `Linear` weight layout).
///
/// Bands of `C` rows run the transpose-absorbing packed kernel, so `B` is
/// read in place by every band while the batch dimension fans out across
/// the pool. Falls back to the sequential [`gemm`] path when the problem
/// is too small to amortize dispatch.
// BLAS-style signature: callers read it like `sgemm`.
#[allow(clippy::too_many_arguments)]
pub fn par_gemm_bt(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * n);

    if m * n * k < 1 << 20 {
        return gemm(m, n, k, alpha, a, Trans::No, b, Trans::Yes, beta, c);
    }

    let by_flops = (PAR_BAND_FLOPS / (2 * n * k).max(1)).max(1);
    let by_threads = m.div_ceil(rayon::current_num_threads() * 2).max(1);
    let band = by_flops.min(by_threads);
    c.par_chunks_mut(band * n).enumerate().for_each(|(bi, c_band)| {
        let row0 = bi * band;
        let rows = c_band.len() / n;
        gemm(
            rows,
            n,
            k,
            alpha,
            &a[row0 * k..(row0 + rows) * k],
            Trans::No,
            b,
            Trans::Yes,
            beta,
            c_band,
        );
    });
}

/// Accumulates `C += A^T * B` without materializing the transpose.
///
/// `a` is `p x m` (so `A^T` is `m x p`), `b` is `p x n`, `c` is `m x n`.
/// Large products run the packed kernel (the transpose folds into the A
/// packing); small ones use a rank-1-update loop that streams rows of `a`
/// and `b`. This is the workhorse of the TT core-gradient pass where `A^T`
/// products dominate.
pub fn add_at_b(p: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), p * m);
    assert_eq!(b.len(), p * n);
    assert_eq!(c.len(), m * n);
    if p * m * n >= micro::PACK_CUTOFF {
        return micro::gemm_packed(
            m,
            n,
            p,
            1.0,
            a,
            Layout::transposed(m),
            b,
            Layout::row_major(n),
            1.0,
            c,
        );
    }
    for row in 0..p {
        let a_row = &a[row * m..(row + 1) * m];
        let b_row = &b[row * n..(row + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Accumulates `C += A * B^T` without materializing the transpose.
///
/// `a` is `m x k`, `b` is `n x k` (so `B^T` is `k x n`), `c` is `m x n`.
/// Large products run the packed kernel (the transpose folds into the B
/// packing); small ones compute entries of `C` as dot products of rows of
/// `a` and `b`, so both operands stream contiguously. Used by the backward
/// chain pass (`dP_{t-1} += dP_t * G_t^T`).
pub fn add_a_bt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * n);
    if m * n * k >= micro::PACK_CUTOFF {
        return micro::gemm_packed(
            m,
            n,
            k,
            1.0,
            a,
            Layout::row_major(k),
            b,
            Layout::transposed(k),
            1.0,
            c,
        );
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *cv += acc;
        }
    }
}

/// Matrix-level convenience wrapper: returns `A * B`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_nn(a.rows(), b.cols(), a.cols(), 1.0, a.as_slice(), b.as_slice(), 0.0, c.as_mut_slice());
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut impl Rng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn blocked_matches_reference_on_odd_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // spans both sides of the packing cutoff (64^3 is above it)
        for &(m, n, k) in
            &[(1, 1, 1), (3, 5, 7), (17, 13, 9), (64, 64, 64), (65, 63, 130), (2, 200, 2)]
        {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c_ref = rand_vec(m * n, &mut rng);
            let mut c_blk = c_ref.clone();
            gemm_ref(m, n, k, 0.7, &a, Trans::No, &b, Trans::No, 0.3, &mut c_ref);
            gemm_nn(m, n, k, 0.7, &a, &b, 0.3, &mut c_blk);
            assert_close(&c_ref, &c_blk, 1e-5);
        }
    }

    #[test]
    fn axpy_matches_reference_on_odd_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (17, 13, 9), (64, 64, 64), (65, 63, 130)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c_ref = rand_vec(m * n, &mut rng);
            let mut c_axp = c_ref.clone();
            gemm_ref(m, n, k, 0.7, &a, Trans::No, &b, Trans::No, 0.3, &mut c_ref);
            gemm_nn_axpy(m, n, k, 0.7, &a, &b, 0.3, &mut c_axp);
            assert_close(&c_ref, &c_axp, 1e-5);
        }
    }

    #[test]
    fn transposed_variants_match_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // small shape exercises the strided reference path, large the
        // packed path
        for &(m, n, k) in &[(11, 7, 5), (40, 30, 20)] {
            for &(ta, tb) in
                &[(Trans::Yes, Trans::No), (Trans::No, Trans::Yes), (Trans::Yes, Trans::Yes)]
            {
                let a = rand_vec(m * k, &mut rng);
                let b = rand_vec(k * n, &mut rng);
                let mut c_ref = vec![0.0; m * n];
                let mut c_fast = vec![0.0; m * n];
                gemm_ref(m, n, k, 1.0, &a, ta, &b, tb, 0.0, &mut c_ref);
                gemm(m, n, k, 1.0, &a, ta, &b, tb, 0.0, &mut c_fast);
                assert_close(&c_ref, &c_fast, 1e-5);
            }
        }
    }

    #[test]
    fn par_gemm_matches_sequential_on_large_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (m, n, k) = (128, 96, 160);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c_seq = vec![0.0; m * n];
        let mut c_par = vec![0.0; m * n];
        gemm_nn(m, n, k, 1.0, &a, &b, 0.0, &mut c_seq);
        par_gemm(m, n, k, 1.0, &a, &b, 0.0, &mut c_par);
        assert_close(&c_seq, &c_par, 1e-5);
    }

    #[test]
    fn par_gemm_bt_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        // Small shape takes the sequential fallback, large the banded path.
        for &(m, n, k) in &[(9, 13, 7), (192, 80, 128)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(n * k, &mut rng); // n x k row-major, used as B^T
            let mut c_ref = vec![0.5; m * n];
            let mut c_par = vec![0.5; m * n];
            gemm_ref(m, n, k, 1.5, &a, Trans::No, &b, Trans::Yes, 2.0, &mut c_ref);
            par_gemm_bt(m, n, k, 1.5, &a, &b, 2.0, &mut c_par);
            assert_close(&c_ref, &c_par, 1e-4);
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_poison() {
        // BLAS semantics: beta == 0 must overwrite C even if it holds NaN.
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![f32::NAN; 4];
        gemm_nn(2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert!(c.iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn zero_operand_entries_propagate_nan_and_inf() {
        // Regression: the axpy kernel used to skip rank-1 updates whose A
        // entry scaled to zero, silently suppressing NaN/Inf from B.
        // IEEE-754: 0 * NaN = NaN and 0 * Inf = NaN, and BLAS performs the
        // multiplication.
        let a = vec![0.0f32];
        let b = vec![f32::NAN];
        let mut c = vec![1.0f32];
        gemm_nn_axpy(1, 1, 1, 1.0, &a, &b, 1.0, &mut c);
        assert!(c[0].is_nan(), "0 * NaN must poison C, got {}", c[0]);

        let b = vec![f32::INFINITY];
        let mut c = vec![1.0f32];
        gemm_nn_axpy(1, 1, 1, 1.0, &a, &b, 1.0, &mut c);
        assert!(c[0].is_nan(), "0 * Inf must poison C, got {}", c[0]);

        // same contract for the fused accumulators
        let mut c = vec![1.0f32];
        add_at_b(1, 1, 1, &a, &b, &mut c);
        assert!(c[0].is_nan(), "add_at_b must not skip zero A entries");
    }

    #[test]
    fn add_at_b_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // small -> rank-1 loop; large -> packed kernel
        for &(p, m, n) in &[(7, 5, 9), (64, 48, 64)] {
            let a = rand_vec(p * m, &mut rng);
            let b = rand_vec(p * n, &mut rng);
            let mut c_fast = rand_vec(m * n, &mut rng);
            let mut c_ref = c_fast.clone();
            add_at_b(p, m, n, &a, &b, &mut c_fast);
            gemm_ref(m, n, p, 1.0, &a, Trans::Yes, &b, Trans::No, 1.0, &mut c_ref);
            assert_close(&c_ref, &c_fast, 1e-4);
        }
    }

    #[test]
    fn add_a_bt_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        // small -> dot loop; large -> packed kernel
        for &(m, n, k) in &[(6, 8, 5), (48, 64, 64)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(n * k, &mut rng);
            let mut c_fast = rand_vec(m * n, &mut rng);
            let mut c_ref = c_fast.clone();
            add_a_bt(m, n, k, &a, &b, &mut c_fast);
            gemm_ref(m, n, k, 1.0, &a, Trans::No, &b, Trans::Yes, 1.0, &mut c_ref);
            assert_close(&c_ref, &c_fast, 1e-4);
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = Matrix::uniform(6, 6, 1.0, &mut rng);
        let i = Matrix::identity(6);
        assert!(matmul(&a, &i).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&i, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }
}
