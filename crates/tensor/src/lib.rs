//! # el-tensor
//!
//! Dense linear-algebra substrate for the EL-Rec reproduction.
//!
//! The EL-Rec paper implements its Eff-TT embedding kernels in CUDA on top of
//! cuBLAS; the hot primitive is `cublasGemmBatchedEx` — *many small GEMMs of
//! identical shape launched as one kernel*. This crate provides the CPU
//! equivalent of that substrate:
//!
//! * [`Matrix`] — a row-major owned `f32` matrix with the view/slicing
//!   operations the TT kernels need,
//! * [`gemm`] — sequential and rayon-parallel GEMM entry points that
//!   dispatch between a small-shape axpy loop and the packed kernel,
//! * [`micro`] — the register-blocked packed (BLIS-style) GEMM
//!   micro-kernel behind the large-shape paths,
//! * [`batched`] — a batched-GEMM engine executing a *pointer list* of
//!   equally-shaped small GEMMs over a thread pool (the
//!   `cublasGemmBatchedEx` stand-in that EL-Rec's Algorithm 1 prepares
//!   arguments for),
//! * [`svd`] — one-sided Jacobi SVD, accurate for the small/skinny matrices
//!   that arise during TT-SVD,
//! * [`tt`] — TT-SVD decomposition of a dense matrix reshaped as a
//!   `d`-dimensional tensor, plus exact reconstruction,
//! * [`shape`] — factorization helpers that split embedding-table dimensions
//!   `M`/`N` into balanced TT factors.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod batched;
pub mod gemm;
pub mod matrix;
pub mod micro;
pub mod shape;
pub mod shard;
pub mod svd;
pub mod tt;

pub use batched::{batched_gemm, GemmBatch, GemmTask};
pub use matrix::Matrix;
pub use shape::{balanced_factorization, factorize};
pub use svd::Svd;
pub use tt::{TtCores, TtDecomposition};
