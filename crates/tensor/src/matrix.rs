//! Row-major owned `f32` matrix.
//!
//! A deliberately small type: the TT kernels in `el-core` work on raw slices
//! for performance, so `Matrix` mostly manages shape bookkeeping and offers
//! readable accessors for tests, model code and examples.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// An all-zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// A matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { data: vec![value; rows * cols], rows, cols }
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { data, rows, cols }
    }

    /// A matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(-scale..=scale)).collect();
        Self { data, rows, cols }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A borrowed view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector (rows are contiguous, columns are
    /// strided, so columns are only materialized on demand).
    pub fn col(&self, c: usize) -> Vec<f32> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(self, rows: usize, cols: usize) -> Self {
        assert_eq!(self.data.len(), rows * cols, "reshape must preserve element count");
        Self { data: self.data, rows, cols }
    }

    /// An owned transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += alpha * other` (element-wise).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (d, s) in self.data.iter_mut().zip(&other.data) {
            *d += alpha * s;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for d in &mut self.data {
            *d *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes in place to `rows x cols` with every element zeroed,
    /// reusing the existing allocation when it is large enough. This is the
    /// pooled-output reset of the zero-allocation training loop: after
    /// warm-up a recycled output matrix never reallocates.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        self.data.clear();
        self.data.resize(len, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Largest absolute difference from `other` — the metric used by the
    /// kernel-equivalence tests.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// Extracts a sub-matrix (used by sharded-embedding baselines).
    pub fn submatrix(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(row0 + rows <= self.rows && col0 + cols <= self.cols);
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let src =
                &self.data[(row0 + r) * self.cols + col0..(row0 + r) * self.cols + col0 + cols];
            out.row_mut(r).copy_from_slice(src);
        }
        out
    }

    /// Memory footprint of the element buffer in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let max_cols = 8.min(self.cols);
            let vals: Vec<String> =
                self.row(r)[..max_cols].iter().map(|v| format!("{v:+.4}")).collect();
            let ellipsis = if self.cols > max_cols { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", vals.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = Matrix::uniform(5, 3, 1.0, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_moves_elements() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
    }

    #[test]
    fn row_and_col_accessors_agree_with_get() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(m.row(2), &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(m.col(1), vec![1.0, 5.0, 9.0, 13.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn identity_multiplication_neutral_element_shape() {
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.frobenius_norm(), (3.0f32).sqrt());
    }

    #[test]
    fn reshape_preserves_buffer() {
        let m = Matrix::from_fn(2, 6, |r, c| (r * 6 + c) as f32);
        let r = m.clone().reshape(3, 4);
        assert_eq!(r.as_slice(), m.as_slice());
        assert_eq!(r.get(1, 0), 4.0);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let s = m.submatrix(1, 2, 2, 2);
        assert_eq!(s.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let a = Matrix::zeros(2, 2);
        let mut b = Matrix::zeros(2, 2);
        b.set(1, 1, 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }
}
