//! Register-blocked packed GEMM micro-kernel (BLIS-style) with a runtime
//! kernel registry.
//!
//! The axpy kernel in [`crate::gemm`] streams `B` straight from memory and
//! re-reads every `C` row once per `k`-block; past roughly 128³ it is bound
//! by load bandwidth, not FLOPs. This module rebuilds the dense path around
//! the classic three-loop-around-a-micro-kernel structure:
//!
//! * `A` is packed into **row panels** of [`MR`] rows, column-interleaved so
//!   the micro-kernel reads it as one contiguous stream;
//! * `B` is packed into **column panels** of [`NR`] columns, row-interleaved
//!   the same way;
//! * the inner [`MR`]`x`[`NR`] tile lives entirely in registers.
//!
//! The register tile itself is provided by one of several interchangeable
//! micro-kernels (the [`Kernel`] registry, DESIGN.md §2.2): a portable
//! scalar form, an auto-vectorized FMA form, and hand-written AVX2 /
//! AVX-512 / NEON intrinsics kernels. Dispatch is decided once per GEMM
//! from runtime CPU detection, overridable via the `EL_KERNEL` environment
//! variable (`portable|autovec|avx2|avx512|neon`), the legacy
//! `EL_FORCE_PORTABLE` escape hatch, or the [`set_kernel`] test hook.
//!
//! Packing is parameterized by row/column **strides** ([`Layout`]), so a
//! transposed operand costs nothing extra: the transpose is absorbed while
//! packing instead of being materialized into a scratch matrix. The
//! summed-A variant ([`pack_a_sum`]) goes one step further and folds a
//! *sum of blocks* — addressed by caller-supplied arena offsets, e.g. the
//! CSR slot lists of a lookup plan — into the panels while packing, so a
//! pooled operand is never materialized outside the pack buffer.
//!
//! Cache blocking follows BLIS: `KC x NR` slivers of packed `B` stream from
//! L1, the `MC x KC` packed `A` block sits in L2, and the `KC x NC` packed
//! `B` panel in L3. Pack buffers are thread-local and grow-only, so the
//! steady-state hot path performs no heap allocation.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Rows per A panel / micro-tile. With `NR = 16` (two AVX2 vectors) the
/// accumulator needs `6 x 2 = 12` vector registers, leaving room for two
/// `B` loads and one `A` broadcast inside the 16-register x86-64 budget.
pub const MR: usize = 6;
/// Columns per B panel / micro-tile: two 8-lane f32 vectors.
pub const NR: usize = 16;
/// Depth of one packed block (`KC x NR` sliver = 16 KiB, half of L1d).
///
/// Under Miri the cache-blocking constants shrink (`KC = 16`, `MC = 12`,
/// `NC = 32`, `PACK_CUTOFF = 256`) so the multi-block loop structure and
/// tail-panel arithmetic execute at interpreter-affordable sizes; the
/// constants are performance tuning only, never correctness.
pub const KC: usize = if cfg!(miri) { 16 } else { 256 };
/// Rows of one packed A block (multiple of `MR`; `MC x KC` = 120 KiB ≈ L2).
pub const MC: usize = if cfg!(miri) { 12 } else { 120 };
/// Columns of one packed B panel (multiple of `NR`; `KC x NC` = 512 KiB).
pub const NC: usize = if cfg!(miri) { 32 } else { 512 };

/// `m·n·k` at or above which packing pays for itself. Below it (notably the
/// TT-slice products, whose `m·n·k` is a few thousand) the axpy kernel in
/// [`crate::gemm`] wins because the operands already fit in L1.
pub const PACK_CUTOFF: usize = if cfg!(miri) { 1 << 8 } else { 1 << 17 };

/// Strides describing how a logical `rows x cols` operand sits in its
/// slice: element `(r, c)` lives at `r * rs + c * cs`.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Distance between vertically adjacent elements.
    pub rs: usize,
    /// Distance between horizontally adjacent elements.
    pub cs: usize,
}

impl Layout {
    /// Row-major storage with `cols` columns.
    #[inline]
    pub fn row_major(cols: usize) -> Self {
        Layout { rs: cols, cs: 1 }
    }

    /// The logical transpose of a row-major operand with `stored_cols`
    /// columns (i.e. the operand is consumed as `X^T` without copying).
    #[inline]
    pub fn transposed(stored_cols: usize) -> Self {
        Layout { rs: 1, cs: stored_cols }
    }
}

thread_local! {
    static A_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static B_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    // Dedicated buffer for `with_packed_a`: its borrow spans the caller's
    // closure, so it must not be shared with the per-call `A_PACK` that
    // `gemm_packed` borrows internally.
    static A_SHARED_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    // Same story for `with_packed_a_sum` (the fused-pooling loader), which
    // may run inside code that also uses `with_packed_a`.
    static A_SUM_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Grow-only resize: reuses capacity, never shrinks, and only zero-fills
/// bytes that have never been written (the pack routines overwrite every
/// element they later read).
#[inline]
fn ensure_len(buf: &mut Vec<f32>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Packs the `mc x kc` block of `A` starting at `(i0, p0)` into MR-row
/// panels: panel `pi` holds rows `i0 + pi*MR ..`, stored column by column
/// (`buf[pi*MR*kc + p*MR + i]`). Short tail panels are zero-padded so the
/// micro-kernel never branches on `mr`.
#[allow(clippy::too_many_arguments)]
fn pack_a(a: &[f32], la: Layout, i0: usize, mc: usize, p0: usize, kc: usize, buf: &mut [f32]) {
    let mut dst = 0;
    let mut ir = 0;
    while ir < mc {
        let mr = MR.min(mc - ir);
        let base = (i0 + ir) * la.rs + p0 * la.cs;
        for p in 0..kc {
            let col = base + p * la.cs;
            for i in 0..mr {
                buf[dst + i] = a[col + i * la.rs];
            }
            for i in mr..MR {
                buf[dst + i] = 0.0;
            }
            dst += MR;
        }
        ir += MR;
    }
}

/// Packs the elementwise **sum** of several row-major `m x k` blocks of
/// `arena` (block `b` starting at `offsets[b]`) into MR-row panels with the
/// exact layout of `pack_a`.
///
/// This is the fused-pooling A-panel loader: the offsets come straight from
/// a lookup plan's CSR slot lists, so the pooled operand (the sum of
/// per-lookup TT partial products) is consumed here and never materialized
/// outside the pack buffer.
pub fn pack_a_sum(arena: &[f32], offsets: &[usize], m: usize, k: usize, buf: &mut [f32]) {
    for &off in offsets {
        assert!(off + m * k <= arena.len(), "summed A block escapes its arena");
    }
    let mut dst = 0;
    let mut ir = 0;
    while ir < m {
        let mr = MR.min(m - ir);
        for p in 0..k {
            for i in 0..mr {
                let idx = (ir + i) * k + p;
                let mut acc = 0.0f32;
                for &off in offsets {
                    acc += arena[off + idx];
                }
                buf[dst + i] = acc;
            }
            for i in mr..MR {
                buf[dst + i] = 0.0;
            }
            dst += MR;
        }
        ir += MR;
    }
}

/// Packs the `kc x nc` block of `B` starting at `(p0, j0)` into NR-column
/// panels: panel `pj` holds columns `j0 + pj*NR ..`, stored row by row
/// (`buf[pj*NR*kc + p*NR + j]`), zero-padded on the column tail.
#[allow(clippy::too_many_arguments)]
fn pack_b(b: &[f32], lb: Layout, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut [f32]) {
    let mut dst = 0;
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let base = p0 * lb.rs + (j0 + jr) * lb.cs;
        for p in 0..kc {
            let row = base + p * lb.rs;
            for j in 0..nr {
                buf[dst + j] = b[row + j * lb.cs];
            }
            for j in nr..NR {
                buf[dst + j] = 0.0;
            }
            dst += NR;
        }
        jr += NR;
    }
}

// ---------------------------------------------------------------------------
// Micro-kernel implementations
// ---------------------------------------------------------------------------

/// The register tile: `acc[i][j] += A_panel[p][i] * B_panel[p][j]` over the
/// packed `kc` depth. `FMA` selects `mul_add` (a single vfmadd under the
/// AVX2+FMA target feature) versus the portable mul-then-add form — calling
/// `mul_add` without hardware FMA would fall back to a libm routine.
#[inline(always)]
fn ukr_body<const FMA: bool>(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    for p in 0..kc {
        let ap: &[f32; MR] = a[p * MR..p * MR + MR].try_into().unwrap();
        let bp: &[f32; NR] = b[p * NR..p * NR + NR].try_into().unwrap();
        for i in 0..MR {
            let av = ap[i];
            for j in 0..NR {
                acc[i][j] = if FMA { av.mul_add(bp[j], acc[i][j]) } else { av * bp[j] + acc[i][j] };
            }
        }
    }
}

/// AVX2+FMA monomorphization of the scalar micro-kernel body — the
/// "autovec" registry tier, kept as a baseline the hand-written kernels
/// must beat.
///
/// # Safety
/// The caller must have verified AVX2 and FMA support at runtime.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn ukr_fma(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    ukr_body::<true>(kc, a, b, acc);
}

/// Portable micro-kernel (auto-vectorized with whatever the baseline
/// target features allow).
fn ukr_portable(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    ukr_body::<false>(kc, a, b, acc);
}

/// Hand-written AVX2+FMA micro-kernel: the `MR x NR` tile held in twelve
/// `__m256` accumulators, one broadcast + two FMAs per (row, depth) step,
/// depth loop unrolled by four.
///
/// Per-element arithmetic (one fused multiply-add per accumulation, depth
/// ascending) is identical to [`ukr_fma`], so the two produce bit-equal
/// tiles; only the instruction schedule differs.
///
/// # Safety
/// The caller must have verified AVX2 and FMA support at runtime
/// (`is_x86_feature_detected!`) before calling; in-bounds access is
/// guaranteed by the panel-length assert on entry.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn ukr_avx2(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    assert!(a.len() >= kc * MR && b.len() >= kc * NR, "packed panel shorter than kc");
    // SAFETY: every load/store below stays in bounds — `a[p*MR + i]` with
    // `p < kc`, `i < MR` and the 8-wide loads at `b[p*NR]`/`b[p*NR + 8]`
    // with `NR == 16` are covered by the length assert above; `acc` rows
    // are `[f32; NR]` so the two 8-wide spills per row fit exactly. The
    // AVX2/FMA instructions themselves are available per this function's
    // caller contract.
    unsafe {
        let mut t: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        for (i, row) in acc.iter().enumerate() {
            t[i][0] = _mm256_loadu_ps(row.as_ptr());
            t[i][1] = _mm256_loadu_ps(row.as_ptr().add(8));
        }
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        macro_rules! step {
            ($p:expr) => {{
                let p = $p;
                let b0 = _mm256_loadu_ps(bp.add(p * NR));
                let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
                for (i, tr) in t.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*ap.add(p * MR + i));
                    tr[0] = _mm256_fmadd_ps(av, b0, tr[0]);
                    tr[1] = _mm256_fmadd_ps(av, b1, tr[1]);
                }
            }};
        }
        let mut p = 0;
        while p + 4 <= kc {
            step!(p);
            step!(p + 1);
            step!(p + 2);
            step!(p + 3);
            p += 4;
        }
        while p < kc {
            step!(p);
            p += 1;
        }
        for (i, row) in acc.iter_mut().enumerate() {
            _mm256_storeu_ps(row.as_mut_ptr(), t[i][0]);
            _mm256_storeu_ps(row.as_mut_ptr().add(8), t[i][1]);
        }
    }
}

/// Hand-written AVX-512F micro-kernel: one 16-lane `__m512` accumulator per
/// tile row (`NR == 16`), so the whole `MR x NR` tile is six zmm registers
/// and each depth step is one broadcast + one FMA per row.
///
/// Same per-element arithmetic as `ukr_fma`/`ukr_avx2` (bit-equal
/// results); never auto-selected — see [`Kernel::Avx512`].
///
/// # Safety
/// The caller must have verified AVX-512F support at runtime
/// (`is_x86_feature_detected!`) before calling; in-bounds access is
/// guaranteed by the panel-length assert on entry.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
unsafe fn ukr_avx512(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    assert!(a.len() >= kc * MR && b.len() >= kc * NR, "packed panel shorter than kc");
    // SAFETY: the 16-wide loads at `b[p*NR]` (`NR == 16`) and scalar reads
    // `a[p*MR + i]` with `p < kc`, `i < MR` are covered by the length
    // assert above, and each `acc` row is exactly one 16-lane spill. The
    // AVX-512F instructions are available per this function's caller
    // contract.
    unsafe {
        let mut t: [__m512; MR] = [_mm512_setzero_ps(); MR];
        for (i, row) in acc.iter().enumerate() {
            t[i] = _mm512_loadu_ps(row.as_ptr());
        }
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        macro_rules! step {
            ($p:expr) => {{
                let p = $p;
                let bv = _mm512_loadu_ps(bp.add(p * NR));
                for (i, tr) in t.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*ap.add(p * MR + i));
                    *tr = _mm512_fmadd_ps(av, bv, *tr);
                }
            }};
        }
        let mut p = 0;
        while p + 4 <= kc {
            step!(p);
            step!(p + 1);
            step!(p + 2);
            step!(p + 3);
            p += 4;
        }
        while p < kc {
            step!(p);
            p += 1;
        }
        for (i, row) in acc.iter_mut().enumerate() {
            _mm512_storeu_ps(row.as_mut_ptr(), t[i]);
        }
    }
}

/// Hand-written NEON micro-kernel for aarch64: four 4-lane `float32x4_t`
/// vectors per tile row (24 q-registers of accumulator out of 32), one
/// broadcast + four FMAs per (row, depth) step.
///
/// Same per-element arithmetic as the other FMA-contracted kernels
/// (`vfmaq_f32` is fused), so results are bit-equal to [`ukr_fma`].
///
/// # Safety
/// The caller must only dispatch this on aarch64, where NEON is a baseline
/// target feature; in-bounds access is guaranteed by the panel-length
/// assert on entry.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn ukr_neon(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    use core::arch::aarch64::*;

    assert!(a.len() >= kc * MR && b.len() >= kc * NR, "packed panel shorter than kc");
    // SAFETY: the four 4-wide loads per depth step at `b[p*NR + 4h]`
    // (`NR == 16`, `h < 4`) and scalar reads `a[p*MR + i]` with `p < kc`,
    // `i < MR` are covered by the length assert above; each `acc` row takes
    // exactly four 4-lane spills. NEON is a baseline aarch64 feature per
    // this function's caller contract.
    unsafe {
        let mut t: [[float32x4_t; 4]; MR] = [[vdupq_n_f32(0.0); 4]; MR];
        for (i, row) in acc.iter().enumerate() {
            for (h, lane) in t[i].iter_mut().enumerate() {
                *lane = vld1q_f32(row.as_ptr().add(4 * h));
            }
        }
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for p in 0..kc {
            let b0 = vld1q_f32(bp.add(p * NR));
            let b1 = vld1q_f32(bp.add(p * NR + 4));
            let b2 = vld1q_f32(bp.add(p * NR + 8));
            let b3 = vld1q_f32(bp.add(p * NR + 12));
            for (i, tr) in t.iter_mut().enumerate() {
                let av = vdupq_n_f32(*ap.add(p * MR + i));
                tr[0] = vfmaq_f32(tr[0], av, b0);
                tr[1] = vfmaq_f32(tr[1], av, b1);
                tr[2] = vfmaq_f32(tr[2], av, b2);
                tr[3] = vfmaq_f32(tr[3], av, b3);
            }
        }
        for (i, row) in acc.iter_mut().enumerate() {
            for (h, lane) in t[i].iter().enumerate() {
                vst1q_f32(row.as_mut_ptr().add(4 * h), *lane);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel registry & dispatch
// ---------------------------------------------------------------------------

/// The selectable micro-kernel implementations (DESIGN.md §2.2).
///
/// Discriminant values double as the wire encoding of the dispatch atomics
/// (0 and 1 are reserved for "no override" / "auto-detect forced").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Kernel {
    /// Scalar mul-then-add body, baseline target features only. The one
    /// kernel every platform (and Miri) can run.
    Portable = 2,
    /// The scalar body compiled under AVX2+FMA and auto-vectorized by LLVM
    /// — the previous default "fast" tier, kept as the yardstick the
    /// hand-written kernels must beat.
    Autovec = 3,
    /// Hand-written AVX2+FMA intrinsics kernel (`ukr_avx2`).
    Avx2 = 4,
    /// Hand-written AVX-512F intrinsics kernel. Opt-in only (`EL_KERNEL=
    /// avx512` or [`set_kernel`]): license-based downclocking can make
    /// 512-bit vectors a net loss on mixed workloads, so auto-detection
    /// never selects it.
    Avx512 = 5,
    /// Hand-written NEON intrinsics kernel, auto-selected on aarch64.
    Neon = 6,
}

impl Kernel {
    /// Every registry entry, in override-name order.
    pub const ALL: [Kernel; 5] =
        [Kernel::Portable, Kernel::Autovec, Kernel::Avx2, Kernel::Avx512, Kernel::Neon];

    /// The provenance / `EL_KERNEL` name of this kernel.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Portable => "portable",
            Kernel::Autovec => "autovec+fma",
            Kernel::Avx2 => "avx2",
            Kernel::Avx512 => "avx512",
            Kernel::Neon => "neon",
        }
    }

    /// Parses an `EL_KERNEL` value (the provenance spelling `autovec+fma`
    /// is accepted alongside the short form).
    pub fn from_name(s: &str) -> Option<Kernel> {
        match s {
            "portable" => Some(Kernel::Portable),
            "autovec" | "autovec+fma" => Some(Kernel::Autovec),
            "avx2" => Some(Kernel::Avx2),
            "avx512" => Some(Kernel::Avx512),
            "neon" => Some(Kernel::Neon),
            _ => None,
        }
    }

    /// True when this kernel's CPU-feature contract holds on the running
    /// machine, i.e. dispatching it is sound.
    pub fn supported(self) -> bool {
        match self {
            Kernel::Portable => true,
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            Kernel::Autovec | Kernel::Avx2 => {
                std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
            }
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            Kernel::Avx512 => std::is_x86_feature_detected!("avx512f"),
            Kernel::Neon => cfg!(target_arch = "aarch64"),
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            Kernel::Autovec | Kernel::Avx2 | Kernel::Avx512 => false,
        }
    }
}

/// Kernel-override state: 0 = none (consult the environment, cached in
/// [`ENV_KERNEL`]), 1 = auto-detection forced (ignore the environment),
/// otherwise the discriminant of the forced [`Kernel`].
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);
/// Cached environment decision: 0 = not yet resolved, otherwise a
/// [`Kernel`] discriminant.
static ENV_KERNEL: AtomicU8 = AtomicU8::new(0);

fn decode(v: u8) -> Kernel {
    match v {
        3 => Kernel::Autovec,
        4 => Kernel::Avx2,
        5 => Kernel::Avx512,
        6 => Kernel::Neon,
        _ => Kernel::Portable,
    }
}

/// The micro-kernel the current dispatch decision selects.
///
/// Priority order:
/// 1. under Miri the portable kernel is always used, so the interpreter
///    never executes `#[target_feature]` code its host may not model;
/// 2. the [`set_kernel`] / [`set_force_portable`] test hooks;
/// 3. the `EL_KERNEL` environment variable (consulted once) — an unknown
///    or unsupported-on-this-host value falls back to auto-detection, so a
///    shared CI matrix can set it unconditionally;
/// 4. `EL_FORCE_PORTABLE` (`1`/`true`/`yes`, consulted once): the legacy
///    escape hatch, and how the analysis harness pins the packing +
///    pointer-arithmetic paths onto code Miri can check;
/// 5. auto-detection: the fastest hand-written kernel whose CPU-feature
///    contract holds (AVX2 on x86 with AVX2+FMA, NEON on aarch64),
///    otherwise portable. AVX-512 is never auto-selected.
pub fn selected_kernel() -> Kernel {
    if cfg!(miri) {
        return Kernel::Portable;
    }
    match KERNEL_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_kernel(),
        1 => auto_kernel(),
        v => decode(v),
    }
}

fn env_kernel() -> Kernel {
    match ENV_KERNEL.load(Ordering::Relaxed) {
        0 => {
            let k = resolve_env_kernel();
            ENV_KERNEL.store(k as u8, Ordering::Relaxed);
            k
        }
        v => decode(v),
    }
}

fn resolve_env_kernel() -> Kernel {
    if let Ok(v) = std::env::var("EL_KERNEL") {
        if let Some(k) = Kernel::from_name(v.trim()) {
            if k.supported() {
                return k;
            }
        }
    }
    if std::env::var("EL_FORCE_PORTABLE")
        .map(|v| matches!(v.trim(), "1" | "true" | "yes"))
        .unwrap_or(false)
    {
        return Kernel::Portable;
    }
    auto_kernel()
}

fn auto_kernel() -> Kernel {
    if Kernel::Avx2.supported() {
        return Kernel::Avx2;
    }
    if Kernel::Neon.supported() {
        return Kernel::Neon;
    }
    Kernel::Portable
}

/// Test/bench hook pinning kernel dispatch to `kernel` (process-global), or
/// — with `None` — clearing every override *and* the cached `EL_KERNEL` /
/// `EL_FORCE_PORTABLE` decision so the environment is re-read on next use.
///
/// Panics when the requested kernel's CPU-feature contract does not hold on
/// this machine: the hook exists for tests and benches, which must skip
/// unsupported variants rather than silently measure a fallback. All
/// kernels compute identical results (within FMA-contraction rounding), so
/// flipping the hook concurrently with running GEMMs is benign.
pub fn set_kernel(kernel: Option<Kernel>) {
    match kernel {
        Some(k) => {
            assert!(k.supported(), "kernel `{}` is not supported on this host", k.name());
            KERNEL_OVERRIDE.store(k as u8, Ordering::Relaxed);
        }
        None => {
            KERNEL_OVERRIDE.store(0, Ordering::Relaxed);
            ENV_KERNEL.store(0, Ordering::Relaxed);
        }
    }
}

/// True when kernel dispatch currently resolves to the portable kernel.
pub fn force_portable() -> bool {
    selected_kernel() == Kernel::Portable
}

/// Legacy test hook predating the [`Kernel`] registry, kept because the
/// analysis harness and older tests use it: `Some(true)` forces the
/// portable kernel, `Some(false)` forces auto-detection (hardware
/// dispatch), `None` re-reads the environment on next use.
pub fn set_force_portable(on: Option<bool>) {
    match on {
        Some(true) => KERNEL_OVERRIDE.store(Kernel::Portable as u8, Ordering::Relaxed),
        Some(false) => KERNEL_OVERRIDE.store(1, Ordering::Relaxed),
        None => set_kernel(None),
    }
}

/// Name of the micro-kernel the current dispatch decision selects — for
/// logs, benchmark provenance, and tests asserting an override took
/// effect.
pub fn active_kernel() -> &'static str {
    selected_kernel().name()
}

/// Comma-separated list of the SIMD CPU features detected at runtime on
/// this machine — recorded as provenance next to benchmark numbers.
pub fn cpu_features() -> String {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        let mut out = Vec::new();
        for (name, on) in [
            ("avx2", std::is_x86_feature_detected!("avx2")),
            ("fma", std::is_x86_feature_detected!("fma")),
            ("avx512f", std::is_x86_feature_detected!("avx512f")),
        ] {
            if on {
                out.push(name);
            }
        }
        out.join(",")
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon".to_string()
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64", target_arch = "aarch64")))]
    {
        String::new()
    }
}

#[inline]
fn run_ukr(kern: Kernel, kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    match kern {
        Kernel::Portable => ukr_portable(kc, a, b, acc),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: dispatch only yields Autovec after `Kernel::supported`
        // verified AVX2+FMA at runtime (set_kernel asserts it; env/auto
        // selection checks it), meeting ukr_fma's caller contract.
        Kernel::Autovec => unsafe { ukr_fma(kc, a, b, acc) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: as above — Avx2 is only selectable after runtime
        // detection of AVX2+FMA.
        Kernel::Avx2 => unsafe { ukr_avx2(kc, a, b, acc) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: Avx512 is only selectable after runtime detection of
        // AVX-512F (it is never auto-selected).
        Kernel::Avx512 => unsafe { ukr_avx512(kc, a, b, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon is only selectable on aarch64, where NEON is a
        // baseline feature of the target.
        Kernel::Neon => unsafe { ukr_neon(kc, a, b, acc) },
        // A kernel compiled out on this target (cross-arch names that slip
        // past the supported() gates) degrades to the portable tile.
        _ => ukr_portable(kc, a, b, acc),
    }
}

/// Spills the register tile into `C` (row-major, leading dimension `ldc`)
/// at `(row0, col0)`, applying `alpha`/`beta` BLAS-style: `beta == 0`
/// overwrites unconditionally (NaN-safe), `beta == 1` accumulates.
#[allow(clippy::too_many_arguments)]
fn write_tile(
    acc: &[[f32; NR]; MR],
    mr: usize,
    nr: usize,
    alpha: f32,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
) {
    for (i, arow) in acc.iter().enumerate().take(mr) {
        let crow = &mut c[(row0 + i) * ldc + col0..][..nr];
        if beta == 0.0 {
            for (cv, &av) in crow.iter_mut().zip(arow) {
                *cv = alpha * av;
            }
        } else if beta == 1.0 {
            for (cv, &av) in crow.iter_mut().zip(arow) {
                *cv += alpha * av;
            }
        } else {
            for (cv, &av) in crow.iter_mut().zip(arow) {
                *cv = alpha * av + beta * *cv;
            }
        }
    }
}

/// `C *= beta` with BLAS semantics (`beta == 0` overwrites NaN).
fn scale_c(beta: f32, c: &mut [f32]) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
}

/// Packed GEMM: `C = alpha * A * B + beta * C` where `A` is a logical
/// `m x k` operand described by `la`, `B` a logical `k x n` operand
/// described by `lb`, and `C` is row-major `m x n`.
///
/// Transposed operands are handled by their [`Layout`] — packing reads
/// through the strides, so no transpose is ever materialized. Degenerate
/// shapes (`m`, `n` or `k` of 0) follow the BLAS contract.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    la: Layout,
    b: &[f32],
    lb: Layout,
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(c.len(), m * n, "C must be m x n");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        scale_c(beta, c);
        return;
    }
    let kern = selected_kernel();
    A_PACK.with(|ac| {
        B_PACK.with(|bc| {
            let a_buf = &mut *ac.borrow_mut();
            let b_buf = &mut *bc.borrow_mut();
            let mut jc = 0;
            while jc < n {
                let nc = NC.min(n - jc);
                let nc_panels = nc.div_ceil(NR);
                let mut pc = 0;
                while pc < k {
                    let kc = KC.min(k - pc);
                    // beta applies once, on the first depth block; later
                    // blocks accumulate.
                    let beta_eff = if pc == 0 { beta } else { 1.0 };
                    let b_need = nc_panels * NR * kc;
                    ensure_len(b_buf, b_need);
                    pack_b(b, lb, pc, kc, jc, nc, &mut b_buf[..b_need]);
                    let mut ic = 0;
                    while ic < m {
                        let mc = MC.min(m - ic);
                        let mc_panels = mc.div_ceil(MR);
                        let a_need = mc_panels * MR * kc;
                        ensure_len(a_buf, a_need);
                        pack_a(a, la, ic, mc, pc, kc, &mut a_buf[..a_need]);
                        macro_kernel(
                            mc,
                            nc,
                            kc,
                            alpha,
                            beta_eff,
                            &a_buf[..a_need],
                            &b_buf[..b_need],
                            c,
                            n,
                            ic,
                            jc,
                            kern,
                        );
                        ic += mc;
                    }
                    pc += kc;
                }
                jc += nc;
            }
        });
    });
}

/// Drives the micro-kernel over one packed `mc x kc` A block and one packed
/// `kc x nc` B panel, writing the `mc x nc` result block of `C` at
/// `(row0, col0)`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f32,
    beta: f32,
    a_pack: &[f32],
    b_pack: &[f32],
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    kern: Kernel,
) {
    let mc_panels = mc.div_ceil(MR);
    let nc_panels = nc.div_ceil(NR);
    for pj in 0..nc_panels {
        let jr = pj * NR;
        let nr = NR.min(nc - jr);
        let b_panel = &b_pack[pj * NR * kc..][..NR * kc];
        for pi in 0..mc_panels {
            let ir = pi * MR;
            let mr = MR.min(mc - ir);
            let a_panel = &a_pack[pi * MR * kc..][..MR * kc];
            let mut acc = [[0.0f32; NR]; MR];
            run_ukr(kern, kc, a_panel, b_panel, &mut acc);
            write_tile(&acc, mr, nr, alpha, beta, c, ldc, row0 + ir, col0 + jr);
        }
    }
}

/// Packs an entire `m x k` A operand (requires `k <= KC`) into the
/// thread-local A buffer and hands the packed panels to `f`.
///
/// This is the batched-GEMM reuse hook: when many tasks share one A block
/// (the Eff-TT chain, where every child of a slot multiplies the same
/// partial product), the block is packed once per group instead of once per
/// task.
///
/// The closure may freely call [`gemm_prepacked_a`], [`gemm_packed`] or
/// [`gemm_nn`](crate::gemm::gemm_nn) — the shared pack lives in its own
/// thread-local buffer, separate from the per-call scratch those kernels
/// borrow. The one thing it must **not** do is call `with_packed_a` again
/// on the same thread: that would overwrite (and double-borrow) the pack
/// the outer closure is still reading.
pub fn with_packed_a<R>(
    m: usize,
    k: usize,
    a: &[f32],
    la: Layout,
    f: impl FnOnce(&[f32]) -> R,
) -> R {
    assert!(k <= KC, "shared-A packing requires k <= KC");
    let need = m.div_ceil(MR) * MR * k;
    A_SHARED_PACK.with(|ac| {
        let buf = &mut *ac.borrow_mut();
        ensure_len(buf, need);
        pack_a(a, la, 0, m, 0, k, &mut buf[..need]);
        f(&buf[..need])
    })
}

/// Packs the sum of the row-major `m x k` blocks of `arena` addressed by
/// `offsets` (see [`pack_a_sum`]; requires `k <= KC`) into a dedicated
/// thread-local buffer and hands the packed panels to `f` — the
/// fused-pooling entry point: the pooled operand exists only inside the
/// pack buffer.
///
/// Like [`with_packed_a`] this must not be re-entered on the same thread,
/// but the two compose freely with each other (separate buffers), so a
/// fused-pooling product may run inside a shared-A batch group.
pub fn with_packed_a_sum<R>(
    m: usize,
    k: usize,
    arena: &[f32],
    offsets: &[usize],
    f: impl FnOnce(&[f32]) -> R,
) -> R {
    assert!(k <= KC, "summed-A packing requires k <= KC");
    let need = m.div_ceil(MR) * MR * k;
    A_SUM_PACK.with(|ac| {
        let buf = &mut *ac.borrow_mut();
        ensure_len(buf, need);
        pack_a_sum(arena, offsets, m, k, &mut buf[..need]);
        f(&buf[..need])
    })
}

/// `C = alpha * A * B + beta * C` with `A` already packed by
/// [`with_packed_a`] or [`with_packed_a_sum`] (so `k <= KC` and the whole
/// depth is one block).
#[allow(clippy::too_many_arguments)]
pub fn gemm_prepacked_a(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a_pack: &[f32],
    b: &[f32],
    lb: Layout,
    beta: f32,
    c: &mut [f32],
) {
    assert!(k <= KC, "prepacked-A products require k <= KC");
    assert_eq!(c.len(), m * n, "C must be m x n");
    assert_eq!(a_pack.len(), m.div_ceil(MR) * MR * k, "A pack length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        scale_c(beta, c);
        return;
    }
    let kern = selected_kernel();
    B_PACK.with(|bc| {
        let b_buf = &mut *bc.borrow_mut();
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let nc_panels = nc.div_ceil(NR);
            let b_need = nc_panels * NR * k;
            ensure_len(b_buf, b_need);
            pack_b(b, lb, 0, k, jc, nc, &mut b_buf[..b_need]);
            macro_kernel(m, nc, k, alpha, beta, a_pack, &b_buf[..b_need], c, n, 0, jc, kern);
            jc += nc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_ref, Trans};
    use rand::{Rng, SeedableRng};

    /// Dispatch state is process-global; every test that mutates it (via
    /// `set_kernel` / `set_force_portable`) holds this lock so concurrent
    /// tests never observe each other's overrides mid-assertion.
    static DISPATCH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn rand_vec(n: usize, rng: &mut impl Rng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "multi-second shapes; miri covers the same paths at small sizes")]
    fn packed_matches_reference_across_tile_remainders() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        // shapes probing every edge: sub-tile, exact tiles, MR/NR/KC
        // remainders, and multi-block m/n/k
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR, NR, 4),
            (MR + 1, NR + 1, KC + 1),
            (MC, NC, KC),
            (MC + 5, NC + 9, KC + 17),
            (3, 300, 2),
            (130, 70, 300),
        ] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c_ref = rand_vec(m * n, &mut rng);
            let mut c_pck = c_ref.clone();
            gemm_ref(m, n, k, 0.9, &a, Trans::No, &b, Trans::No, 0.4, &mut c_ref);
            gemm_packed(
                m,
                n,
                k,
                0.9,
                &a,
                Layout::row_major(k),
                &b,
                Layout::row_major(n),
                0.4,
                &mut c_pck,
            );
            assert_close(&c_ref, &c_pck, 1e-4);
        }
    }

    #[test]
    fn strided_layouts_absorb_transposes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (m, n, k) = if cfg!(miri) { (9, 8, 7) } else { (37, 29, 23) };
        for &(ta, tb) in
            &[(Trans::Yes, Trans::No), (Trans::No, Trans::Yes), (Trans::Yes, Trans::Yes)]
        {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let la = match ta {
                Trans::No => Layout::row_major(k),
                Trans::Yes => Layout::transposed(m),
            };
            let lb = match tb {
                Trans::No => Layout::row_major(n),
                Trans::Yes => Layout::transposed(k),
            };
            let mut c_ref = vec![0.0; m * n];
            let mut c_pck = vec![0.0; m * n];
            gemm_ref(m, n, k, 1.0, &a, ta, &b, tb, 0.0, &mut c_ref);
            gemm_packed(m, n, k, 1.0, &a, la, &b, lb, 0.0, &mut c_pck);
            assert_close(&c_ref, &c_pck, 1e-4);
        }
    }

    #[test]
    fn degenerate_shapes_follow_blas_contract() {
        // m == 0 / n == 0: no-op; k == 0: C = beta * C with NaN-safe beta=0.
        let mut c: Vec<f32> = vec![];
        gemm_packed(
            0,
            5,
            3,
            1.0,
            &[],
            Layout::row_major(3),
            &[0.0; 15],
            Layout::row_major(5),
            0.0,
            &mut c,
        );
        let mut c = vec![f32::NAN; 6];
        gemm_packed(
            2,
            3,
            0,
            1.0,
            &[],
            Layout::row_major(0),
            &[],
            Layout::row_major(3),
            0.0,
            &mut c,
        );
        assert!(c.iter().all(|&x| x == 0.0));
        let mut c = vec![2.0; 6];
        gemm_packed(
            2,
            3,
            0,
            1.0,
            &[],
            Layout::row_major(0),
            &[],
            Layout::row_major(3),
            0.5,
            &mut c,
        );
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn beta_zero_overwrites_nan_poison() {
        let (m, n, k) = (MR + 2, NR + 3, 9);
        let a = vec![1.0; m * k];
        let b = vec![1.0; k * n];
        let mut c = vec![f32::NAN; m * n];
        gemm_packed(m, n, k, 1.0, &a, Layout::row_major(k), &b, Layout::row_major(n), 0.0, &mut c);
        assert!(c.iter().all(|&x| (x - k as f32).abs() < 1e-5));
    }

    #[test]
    fn prepacked_a_matches_full_packed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        // `k` must stay within the (miri-shrunk) KC; `n` spans several NC
        // panels either way.
        let (m, n, k) = if cfg!(miri) { (5, 70, 12) } else { (11, 600, 40) };
        let a = rand_vec(m * k, &mut rng);
        let b1 = rand_vec(k * n, &mut rng);
        let b2 = rand_vec(k * n, &mut rng);
        let mut c_full = vec![0.0; m * n];
        let mut c_pre1 = vec![0.0; m * n];
        let mut c_pre2 = vec![0.0; m * n];
        with_packed_a(m, k, &a, Layout::row_major(k), |apack| {
            gemm_prepacked_a(m, n, k, 1.0, apack, &b1, Layout::row_major(n), 0.0, &mut c_pre1);
            gemm_prepacked_a(m, n, k, 1.0, apack, &b2, Layout::row_major(n), 0.0, &mut c_pre2);
        });
        gemm_packed(
            m,
            n,
            k,
            1.0,
            &a,
            Layout::row_major(k),
            &b1,
            Layout::row_major(n),
            0.0,
            &mut c_full,
        );
        assert_close(&c_full, &c_pre1, 1e-5);
        gemm_packed(
            m,
            n,
            k,
            1.0,
            &a,
            Layout::row_major(k),
            &b2,
            Layout::row_major(n),
            0.0,
            &mut c_full,
        );
        assert_close(&c_full, &c_pre2, 1e-5);
    }

    #[test]
    fn packed_gemm_inside_shared_a_closure_does_not_double_borrow() {
        // Regression: with_packed_a once shared A_PACK with gemm_packed's
        // internal scratch, so a packed product inside the closure hit a
        // RefCell double-borrow. The inner shape is large enough that
        // gemm_packed packs A (not just the axpy path).
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let (m, n, k) = (8, 16, 12);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let (im, inn, ik) = if cfg!(miri) { (16, 16, 16) } else { (64, 64, 64) };
        let ia = rand_vec(im * ik, &mut rng);
        let ib = rand_vec(ik * inn, &mut rng);
        let mut c_outer = vec![0.0; m * n];
        let mut c_inner = vec![0.0; im * inn];
        with_packed_a(m, k, &a, Layout::row_major(k), |apack| {
            gemm_packed(
                im,
                inn,
                ik,
                1.0,
                &ia,
                Layout::row_major(ik),
                &ib,
                Layout::row_major(inn),
                0.0,
                &mut c_inner,
            );
            gemm_prepacked_a(m, n, k, 1.0, apack, &b, Layout::row_major(n), 0.0, &mut c_outer);
        });
        let mut c_ref = vec![0.0; m * n];
        gemm_ref(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c_ref);
        assert_close(&c_ref, &c_outer, 1e-5);
        let mut ci_ref = vec![0.0; im * inn];
        gemm_ref(im, inn, ik, 1.0, &ia, Trans::No, &ib, Trans::No, 0.0, &mut ci_ref);
        assert_close(&ci_ref, &c_inner, 1e-4);
    }

    #[test]
    fn block_constants_are_tile_aligned() {
        assert_eq!(MC % MR, 0, "MC must hold whole A panels");
        assert_eq!(NC % NR, 0, "NC must hold whole B panels");
    }

    /// Miri-sized sweep of the packing + tile arithmetic: shapes straddle
    /// every boundary of the (miri-shrunk) MR/NR/KC/MC/NC grid, so the
    /// multi-block loops, tail panels and zero-padding all execute under
    /// the interpreter in a few thousand operations.
    #[test]
    fn small_shapes_cover_all_pack_boundaries() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR - 1, NR - 1, 2),
            (MR, NR, 3),
            (MR + 1, NR + 1, KC.min(8) + 1),
            (MC + 1, NC + 1, KC + 1),
        ] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c_ref = rand_vec(m * n, &mut rng);
            let mut c_pck = c_ref.clone();
            gemm_ref(m, n, k, 1.1, &a, Trans::No, &b, Trans::No, 0.3, &mut c_ref);
            gemm_packed(
                m,
                n,
                k,
                1.1,
                &a,
                Layout::row_major(k),
                &b,
                Layout::row_major(n),
                0.3,
                &mut c_pck,
            );
            assert_close(&c_ref, &c_pck, 1e-4);
        }
    }

    /// The portable-kernel override: forcing it must flip the dispatch
    /// decision (observable through [`active_kernel`]) without changing
    /// results; resetting must restore the environment-driven default.
    #[test]
    fn force_portable_override_flips_dispatch_not_results() {
        let _guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = rand::rngs::StdRng::seed_from_u64(46);
        let (m, n, k) = (MR + 2, NR + 2, 5);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c_hw = vec![0.0; m * n];
        let mut c_po = vec![0.0; m * n];

        set_force_portable(Some(false));
        let hw_kernel = active_kernel();
        gemm_packed(
            m,
            n,
            k,
            1.0,
            &a,
            Layout::row_major(k),
            &b,
            Layout::row_major(n),
            0.0,
            &mut c_hw,
        );

        set_force_portable(Some(true));
        assert_eq!(active_kernel(), "portable");
        gemm_packed(
            m,
            n,
            k,
            1.0,
            &a,
            Layout::row_major(k),
            &b,
            Layout::row_major(n),
            0.0,
            &mut c_po,
        );

        set_force_portable(None);
        if cfg!(miri) {
            // Miri pins dispatch to the portable kernel unconditionally.
            assert_eq!(hw_kernel, "portable");
        }
        assert_close(&c_hw, &c_po, 1e-5);
    }

    /// The registry hook: each supported kernel can be pinned, reports its
    /// own name, and produces results matching the reference.
    #[test]
    fn kernel_override_hook_selects_each_supported_variant() {
        let _guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        let (m, n, k) = if cfg!(miri) { (7, 17, 9) } else { (MR * 3 + 1, NR * 2 + 3, 33) };
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c_ref = vec![0.0; m * n];
        gemm_ref(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c_ref);
        for kern in Kernel::ALL {
            if !kern.supported() || cfg!(miri) {
                continue;
            }
            set_kernel(Some(kern));
            assert_eq!(active_kernel(), kern.name());
            let mut c = vec![0.0; m * n];
            gemm_packed(
                m,
                n,
                k,
                1.0,
                &a,
                Layout::row_major(k),
                &b,
                Layout::row_major(n),
                0.0,
                &mut c,
            );
            assert_close(&c_ref, &c, 1e-4);
        }
        set_kernel(None);
        // Portable is supported everywhere, including under Miri's pin.
        assert!(Kernel::Portable.supported());
    }

    /// Every kernel name round-trips through the `EL_KERNEL` parser.
    #[test]
    fn kernel_names_round_trip() {
        for kern in Kernel::ALL {
            assert_eq!(Kernel::from_name(kern.name()), Some(kern));
        }
        assert_eq!(Kernel::from_name("autovec"), Some(Kernel::Autovec));
        assert_eq!(Kernel::from_name("sse9000"), None);
    }

    /// Register-tile agreement at the micro-kernel level, across depths
    /// that exercise the 4x unroll and its remainders: every
    /// FMA-contracted variant (autovec / avx2 / avx512 / neon) is
    /// **bit-exact** against the others (identical per-element operation
    /// order), and each stays within one rounding step per accumulation of
    /// the portable mul-then-add kernel.
    #[test]
    #[cfg_attr(miri, ignore = "SIMD kernels are never dispatched under miri")]
    fn micro_tile_variants_agree_within_per_step_ulp() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(48);
        for &kc in &[1usize, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 100, KC] {
            let a = rand_vec(kc * MR, &mut rng);
            let b = rand_vec(kc * NR, &mut rng);
            let mut init = [[0.0f32; NR]; MR];
            for row in init.iter_mut() {
                for v in row.iter_mut() {
                    *v = rng.gen_range(-1.0..1.0);
                }
            }

            let mut portable = init;
            ukr_portable(kc, &a, &b, &mut portable);

            // Per-element bound: the portable kernel rounds each product
            // before adding where the fused kernels do not — at most one
            // extra rounding per accumulation step, i.e. eps * sum|a*b|.
            let mut bound = [[0.0f32; NR]; MR];
            for p in 0..kc {
                for i in 0..MR {
                    for j in 0..NR {
                        bound[i][j] += (a[p * MR + i] * b[p * NR + j]).abs();
                    }
                }
            }

            let mut fused_tiles: Vec<[[f32; NR]; MR]> = Vec::new();
            for kern in [Kernel::Autovec, Kernel::Avx2, Kernel::Avx512, Kernel::Neon] {
                if !kern.supported() {
                    continue;
                }
                let mut acc = init;
                run_ukr(kern, kc, &a, &b, &mut acc);
                for i in 0..MR {
                    for j in 0..NR {
                        let diff = (acc[i][j] - portable[i][j]).abs();
                        let tol = f32::EPSILON * (kc as f32 + 1.0) * (bound[i][j] + 1.0);
                        assert!(
                            diff <= tol,
                            "{}: tile ({i},{j}) kc={kc}: |{} - {}| = {diff} > {tol}",
                            kern.name(),
                            acc[i][j],
                            portable[i][j],
                        );
                    }
                }
                fused_tiles.push(acc);
            }
            for pair in fused_tiles.windows(2) {
                for (i, (ra, rb)) in pair[0].iter().zip(&pair[1]).enumerate() {
                    for (j, (va, vb)) in ra.iter().zip(rb).enumerate() {
                        assert_eq!(
                            va.to_bits(),
                            vb.to_bits(),
                            "FMA-contracted kernels must be bit-exact at ({i},{j}), kc={kc}"
                        );
                    }
                }
            }
        }
    }

    /// `pack_a_sum` over one block is exactly `pack_a`, and over several
    /// blocks equals packing the materialized sum — including zero-padded
    /// row tails.
    #[test]
    fn pack_a_sum_matches_materialized_sum() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(49);
        for &(m, k, blocks) in &[(1usize, 1usize, 1usize), (MR, 3, 2), (MR + 2, 7, 4), (13, 5, 3)] {
            let arena = rand_vec(blocks * m * k + 11, &mut rng);
            // deliberately overlapping / unordered offsets
            let offsets: Vec<usize> = (0..blocks).rev().map(|b| b * m * k + (b % 2) * 3).collect();
            let mut summed = vec![0.0f32; m * k];
            for &off in &offsets {
                for (s, &v) in summed.iter_mut().zip(&arena[off..off + m * k]) {
                    *s += v;
                }
            }
            let need = m.div_ceil(MR) * MR * k;
            let mut want = vec![f32::NAN; need];
            pack_a(&summed, Layout::row_major(k), 0, m, 0, k, &mut want);
            let mut got = vec![f32::NAN; need];
            pack_a_sum(&arena, &offsets, m, k, &mut got);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() <= 1e-5, "packed index {i}: {g} vs {w}");
            }
        }
    }

    /// A fused-pooling product via `with_packed_a_sum` + `gemm_prepacked_a`
    /// equals materializing the pooled operand and multiplying it, and the
    /// loader composes with `with_packed_a` on the same thread.
    #[test]
    fn with_packed_a_sum_matches_materialize_then_multiply() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let (m, n, k, blocks) = if cfg!(miri) { (5, 20, 6, 3) } else { (11, 100, 24, 5) };
        let arena = rand_vec(blocks * m * k, &mut rng);
        let offsets: Vec<usize> = (0..blocks).map(|b| b * m * k).collect();
        let b = rand_vec(k * n, &mut rng);
        let mut summed = vec![0.0f32; m * k];
        for &off in &offsets {
            for (s, &v) in summed.iter_mut().zip(&arena[off..off + m * k]) {
                *s += v;
            }
        }
        let mut want = rand_vec(m * n, &mut rng);
        let mut got = want.clone();
        gemm_ref(m, n, k, 1.0, &summed, Trans::No, &b, Trans::No, 1.0, &mut want);
        with_packed_a(m, k, &arena[..m * k], Layout::row_major(k), |_outer| {
            // composition check: the sum loader must not disturb an open
            // shared-A pack
            with_packed_a_sum(m, k, &arena, &offsets, |apack| {
                gemm_prepacked_a(m, n, k, 1.0, apack, &b, Layout::row_major(n), 1.0, &mut got);
            });
        });
        assert_close(&want, &got, 1e-4);
    }
}
