//! Register-blocked packed GEMM micro-kernel (BLIS-style).
//!
//! The axpy kernel in [`crate::gemm`] streams `B` straight from memory and
//! re-reads every `C` row once per `k`-block; past roughly 128³ it is bound
//! by load bandwidth, not FLOPs. This module rebuilds the dense path around
//! the classic three-loop-around-a-micro-kernel structure:
//!
//! * `A` is packed into **row panels** of [`MR`] rows, column-interleaved so
//!   the micro-kernel reads it as one contiguous stream;
//! * `B` is packed into **column panels** of [`NR`] columns, row-interleaved
//!   the same way;
//! * the inner [`MR`]`x`[`NR`] tile lives entirely in registers as a
//!   fixed-size array accumulator that LLVM keeps in vector registers and —
//!   under the AVX2+FMA feature gate — lowers to FMA instructions.
//!
//! Packing is parameterized by row/column **strides** ([`Layout`]), so a
//! transposed operand costs nothing extra: the transpose is absorbed while
//! packing instead of being materialized into a scratch matrix.
//!
//! Cache blocking follows BLIS: `KC x NR` slivers of packed `B` stream from
//! L1, the `MC x KC` packed `A` block sits in L2, and the `KC x NC` packed
//! `B` panel in L3. Pack buffers are thread-local and grow-only, so the
//! steady-state hot path performs no heap allocation.

use std::cell::RefCell;

/// Rows per A panel / micro-tile. With `NR = 16` (two AVX2 vectors) the
/// accumulator needs `6 x 2 = 12` vector registers, leaving room for two
/// `B` loads and one `A` broadcast inside the 16-register x86-64 budget.
pub const MR: usize = 6;
/// Columns per B panel / micro-tile: two 8-lane f32 vectors.
pub const NR: usize = 16;
/// Depth of one packed block (`KC x NR` sliver = 16 KiB, half of L1d).
///
/// Under Miri the cache-blocking constants shrink (`KC = 16`, `MC = 12`,
/// `NC = 32`, `PACK_CUTOFF = 256`) so the multi-block loop structure and
/// tail-panel arithmetic execute at interpreter-affordable sizes; the
/// constants are performance tuning only, never correctness.
pub const KC: usize = if cfg!(miri) { 16 } else { 256 };
/// Rows of one packed A block (multiple of `MR`; `MC x KC` = 120 KiB ≈ L2).
pub const MC: usize = if cfg!(miri) { 12 } else { 120 };
/// Columns of one packed B panel (multiple of `NR`; `KC x NC` = 512 KiB).
pub const NC: usize = if cfg!(miri) { 32 } else { 512 };

/// `m·n·k` at or above which packing pays for itself. Below it (notably the
/// TT-slice products, whose `m·n·k` is a few thousand) the axpy kernel in
/// [`crate::gemm`] wins because the operands already fit in L1.
pub const PACK_CUTOFF: usize = if cfg!(miri) { 1 << 8 } else { 1 << 17 };

/// Strides describing how a logical `rows x cols` operand sits in its
/// slice: element `(r, c)` lives at `r * rs + c * cs`.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Distance between vertically adjacent elements.
    pub rs: usize,
    /// Distance between horizontally adjacent elements.
    pub cs: usize,
}

impl Layout {
    /// Row-major storage with `cols` columns.
    #[inline]
    pub fn row_major(cols: usize) -> Self {
        Layout { rs: cols, cs: 1 }
    }

    /// The logical transpose of a row-major operand with `stored_cols`
    /// columns (i.e. the operand is consumed as `X^T` without copying).
    #[inline]
    pub fn transposed(stored_cols: usize) -> Self {
        Layout { rs: 1, cs: stored_cols }
    }
}

thread_local! {
    static A_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static B_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    // Dedicated buffer for `with_packed_a`: its borrow spans the caller's
    // closure, so it must not be shared with the per-call `A_PACK` that
    // `gemm_packed` borrows internally.
    static A_SHARED_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Grow-only resize: reuses capacity, never shrinks, and only zero-fills
/// bytes that have never been written (the pack routines overwrite every
/// element they later read).
#[inline]
fn ensure_len(buf: &mut Vec<f32>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Packs the `mc x kc` block of `A` starting at `(i0, p0)` into MR-row
/// panels: panel `pi` holds rows `i0 + pi*MR ..`, stored column by column
/// (`buf[pi*MR*kc + p*MR + i]`). Short tail panels are zero-padded so the
/// micro-kernel never branches on `mr`.
#[allow(clippy::too_many_arguments)]
fn pack_a(a: &[f32], la: Layout, i0: usize, mc: usize, p0: usize, kc: usize, buf: &mut [f32]) {
    let mut dst = 0;
    let mut ir = 0;
    while ir < mc {
        let mr = MR.min(mc - ir);
        let base = (i0 + ir) * la.rs + p0 * la.cs;
        for p in 0..kc {
            let col = base + p * la.cs;
            for i in 0..mr {
                buf[dst + i] = a[col + i * la.rs];
            }
            for i in mr..MR {
                buf[dst + i] = 0.0;
            }
            dst += MR;
        }
        ir += MR;
    }
}

/// Packs the `kc x nc` block of `B` starting at `(p0, j0)` into NR-column
/// panels: panel `pj` holds columns `j0 + pj*NR ..`, stored row by row
/// (`buf[pj*NR*kc + p*NR + j]`), zero-padded on the column tail.
#[allow(clippy::too_many_arguments)]
fn pack_b(b: &[f32], lb: Layout, p0: usize, kc: usize, j0: usize, nc: usize, buf: &mut [f32]) {
    let mut dst = 0;
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let base = p0 * lb.rs + (j0 + jr) * lb.cs;
        for p in 0..kc {
            let row = base + p * lb.rs;
            for j in 0..nr {
                buf[dst + j] = b[row + j * lb.cs];
            }
            for j in nr..NR {
                buf[dst + j] = 0.0;
            }
            dst += NR;
        }
        jr += NR;
    }
}

/// The register tile: `acc[i][j] += A_panel[p][i] * B_panel[p][j]` over the
/// packed `kc` depth. `FMA` selects `mul_add` (a single vfmadd under the
/// AVX2+FMA target feature) versus the portable mul-then-add form — calling
/// `mul_add` without hardware FMA would fall back to a libm routine.
#[inline(always)]
fn ukr_body<const FMA: bool>(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    for p in 0..kc {
        let ap: &[f32; MR] = a[p * MR..p * MR + MR].try_into().unwrap();
        let bp: &[f32; NR] = b[p * NR..p * NR + NR].try_into().unwrap();
        for i in 0..MR {
            let av = ap[i];
            for j in 0..NR {
                acc[i][j] = if FMA { av.mul_add(bp[j], acc[i][j]) } else { av * bp[j] + acc[i][j] };
            }
        }
    }
}

/// AVX2+FMA monomorphization of the micro-kernel.
///
/// # Safety
/// The caller must have verified AVX2 and FMA support at runtime.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn ukr_fma(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    ukr_body::<true>(kc, a, b, acc);
}

/// Portable micro-kernel (auto-vectorized with whatever the baseline
/// target features allow).
fn ukr_portable(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    ukr_body::<false>(kc, a, b, acc);
}

/// Portable-kernel override state: 0 = consult `EL_FORCE_PORTABLE` (once),
/// 1 = forced portable, 2 = hardware dispatch allowed.
static FORCE_PORTABLE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// True when kernel dispatch must ignore hardware FMA and use the portable
/// micro-kernel.
///
/// Controlled three ways, in priority order:
/// 1. [`set_force_portable`] (test hook) — explicit `true`/`false` wins;
/// 2. under Miri the portable kernel is always used, so the interpreter
///    never executes `#[target_feature]` code its host may not model;
/// 3. the `EL_FORCE_PORTABLE` environment variable (`1`/`true`/`yes`,
///    consulted once): the production escape hatch, and how the analysis
///    harness pins the packing + pointer-arithmetic paths onto code Miri
///    can check.
pub fn force_portable() -> bool {
    use std::sync::atomic::Ordering;
    if cfg!(miri) {
        return true;
    }
    match FORCE_PORTABLE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("EL_FORCE_PORTABLE")
                .map(|v| matches!(v.trim(), "1" | "true" | "yes"))
                .unwrap_or(false);
            FORCE_PORTABLE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Test hook overriding the `EL_FORCE_PORTABLE` decision (process-global).
/// `Some(true)` forces the portable kernel, `Some(false)` re-enables
/// hardware dispatch, `None` re-reads the environment on next use. Both
/// kernels compute identical results, so flipping this concurrently with
/// running GEMMs is benign.
pub fn set_force_portable(on: Option<bool>) {
    use std::sync::atomic::Ordering;
    FORCE_PORTABLE.store(
        match on {
            Some(true) => 1,
            Some(false) => 2,
            None => 0,
        },
        Ordering::Relaxed,
    );
}

/// Name of the micro-kernel the current dispatch decision selects — for
/// logs and tests asserting the override took effect.
pub fn active_kernel() -> &'static str {
    if use_fma() {
        "avx2+fma"
    } else {
        "portable"
    }
}

/// One-time runtime dispatch: true when the AVX2+FMA micro-kernel is safe
/// to call on this machine (and no portable override is active).
fn use_fma() -> bool {
    if force_portable() {
        return false;
    }
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        static STATE: AtomicU8 = AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let ok =
                    std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma");
                STATE.store(if ok { 1 } else { 2 }, Ordering::Relaxed);
                ok
            }
        }
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        false
    }
}

#[inline]
fn run_ukr(fma: bool, kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    if fma {
        // SAFETY: `fma` is only true when use_fma() detected AVX2+FMA.
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        unsafe {
            ukr_fma(kc, a, b, acc);
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        ukr_portable(kc, a, b, acc);
    } else {
        ukr_portable(kc, a, b, acc);
    }
}

/// Spills the register tile into `C` (row-major, leading dimension `ldc`)
/// at `(row0, col0)`, applying `alpha`/`beta` BLAS-style: `beta == 0`
/// overwrites unconditionally (NaN-safe), `beta == 1` accumulates.
#[allow(clippy::too_many_arguments)]
fn write_tile(
    acc: &[[f32; NR]; MR],
    mr: usize,
    nr: usize,
    alpha: f32,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
) {
    for (i, arow) in acc.iter().enumerate().take(mr) {
        let crow = &mut c[(row0 + i) * ldc + col0..][..nr];
        if beta == 0.0 {
            for (cv, &av) in crow.iter_mut().zip(arow) {
                *cv = alpha * av;
            }
        } else if beta == 1.0 {
            for (cv, &av) in crow.iter_mut().zip(arow) {
                *cv += alpha * av;
            }
        } else {
            for (cv, &av) in crow.iter_mut().zip(arow) {
                *cv = alpha * av + beta * *cv;
            }
        }
    }
}

/// `C *= beta` with BLAS semantics (`beta == 0` overwrites NaN).
fn scale_c(beta: f32, c: &mut [f32]) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
}

/// Packed GEMM: `C = alpha * A * B + beta * C` where `A` is a logical
/// `m x k` operand described by `la`, `B` a logical `k x n` operand
/// described by `lb`, and `C` is row-major `m x n`.
///
/// Transposed operands are handled by their [`Layout`] — packing reads
/// through the strides, so no transpose is ever materialized. Degenerate
/// shapes (`m`, `n` or `k` of 0) follow the BLAS contract.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    la: Layout,
    b: &[f32],
    lb: Layout,
    beta: f32,
    c: &mut [f32],
) {
    assert_eq!(c.len(), m * n, "C must be m x n");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        scale_c(beta, c);
        return;
    }
    let fma = use_fma();
    A_PACK.with(|ac| {
        B_PACK.with(|bc| {
            let a_buf = &mut *ac.borrow_mut();
            let b_buf = &mut *bc.borrow_mut();
            let mut jc = 0;
            while jc < n {
                let nc = NC.min(n - jc);
                let nc_panels = nc.div_ceil(NR);
                let mut pc = 0;
                while pc < k {
                    let kc = KC.min(k - pc);
                    // beta applies once, on the first depth block; later
                    // blocks accumulate.
                    let beta_eff = if pc == 0 { beta } else { 1.0 };
                    let b_need = nc_panels * NR * kc;
                    ensure_len(b_buf, b_need);
                    pack_b(b, lb, pc, kc, jc, nc, &mut b_buf[..b_need]);
                    let mut ic = 0;
                    while ic < m {
                        let mc = MC.min(m - ic);
                        let mc_panels = mc.div_ceil(MR);
                        let a_need = mc_panels * MR * kc;
                        ensure_len(a_buf, a_need);
                        pack_a(a, la, ic, mc, pc, kc, &mut a_buf[..a_need]);
                        macro_kernel(
                            mc,
                            nc,
                            kc,
                            alpha,
                            beta_eff,
                            &a_buf[..a_need],
                            &b_buf[..b_need],
                            c,
                            n,
                            ic,
                            jc,
                            fma,
                        );
                        ic += mc;
                    }
                    pc += kc;
                }
                jc += nc;
            }
        });
    });
}

/// Drives the micro-kernel over one packed `mc x kc` A block and one packed
/// `kc x nc` B panel, writing the `mc x nc` result block of `C` at
/// `(row0, col0)`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f32,
    beta: f32,
    a_pack: &[f32],
    b_pack: &[f32],
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    fma: bool,
) {
    let mc_panels = mc.div_ceil(MR);
    let nc_panels = nc.div_ceil(NR);
    for pj in 0..nc_panels {
        let jr = pj * NR;
        let nr = NR.min(nc - jr);
        let b_panel = &b_pack[pj * NR * kc..][..NR * kc];
        for pi in 0..mc_panels {
            let ir = pi * MR;
            let mr = MR.min(mc - ir);
            let a_panel = &a_pack[pi * MR * kc..][..MR * kc];
            let mut acc = [[0.0f32; NR]; MR];
            run_ukr(fma, kc, a_panel, b_panel, &mut acc);
            write_tile(&acc, mr, nr, alpha, beta, c, ldc, row0 + ir, col0 + jr);
        }
    }
}

/// Packs an entire `m x k` A operand (requires `k <= KC`) into the
/// thread-local A buffer and hands the packed panels to `f`.
///
/// This is the batched-GEMM reuse hook: when many tasks share one A block
/// (the Eff-TT chain, where every child of a slot multiplies the same
/// partial product), the block is packed once per group instead of once per
/// task.
///
/// The closure may freely call [`gemm_prepacked_a`], [`gemm_packed`] or
/// [`gemm_nn`](crate::gemm::gemm_nn) — the shared pack lives in its own
/// thread-local buffer, separate from the per-call scratch those kernels
/// borrow. The one thing it must **not** do is call `with_packed_a` again
/// on the same thread: that would overwrite (and double-borrow) the pack
/// the outer closure is still reading.
pub fn with_packed_a<R>(
    m: usize,
    k: usize,
    a: &[f32],
    la: Layout,
    f: impl FnOnce(&[f32]) -> R,
) -> R {
    assert!(k <= KC, "shared-A packing requires k <= KC");
    let need = m.div_ceil(MR) * MR * k;
    A_SHARED_PACK.with(|ac| {
        let buf = &mut *ac.borrow_mut();
        ensure_len(buf, need);
        pack_a(a, la, 0, m, 0, k, &mut buf[..need]);
        f(&buf[..need])
    })
}

/// `C = alpha * A * B + beta * C` with `A` already packed by
/// [`with_packed_a`] (so `k <= KC` and the whole depth is one block).
#[allow(clippy::too_many_arguments)]
pub fn gemm_prepacked_a(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a_pack: &[f32],
    b: &[f32],
    lb: Layout,
    beta: f32,
    c: &mut [f32],
) {
    assert!(k <= KC, "prepacked-A products require k <= KC");
    assert_eq!(c.len(), m * n, "C must be m x n");
    assert_eq!(a_pack.len(), m.div_ceil(MR) * MR * k, "A pack length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        scale_c(beta, c);
        return;
    }
    let fma = use_fma();
    B_PACK.with(|bc| {
        let b_buf = &mut *bc.borrow_mut();
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let nc_panels = nc.div_ceil(NR);
            let b_need = nc_panels * NR * k;
            ensure_len(b_buf, b_need);
            pack_b(b, lb, 0, k, jc, nc, &mut b_buf[..b_need]);
            macro_kernel(m, nc, k, alpha, beta, a_pack, &b_buf[..b_need], c, n, 0, jc, fma);
            jc += nc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_ref, Trans};
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut impl Rng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "multi-second shapes; miri covers the same paths at small sizes")]
    fn packed_matches_reference_across_tile_remainders() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        // shapes probing every edge: sub-tile, exact tiles, MR/NR/KC
        // remainders, and multi-block m/n/k
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR, NR, 4),
            (MR + 1, NR + 1, KC + 1),
            (MC, NC, KC),
            (MC + 5, NC + 9, KC + 17),
            (3, 300, 2),
            (130, 70, 300),
        ] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c_ref = rand_vec(m * n, &mut rng);
            let mut c_pck = c_ref.clone();
            gemm_ref(m, n, k, 0.9, &a, Trans::No, &b, Trans::No, 0.4, &mut c_ref);
            gemm_packed(
                m,
                n,
                k,
                0.9,
                &a,
                Layout::row_major(k),
                &b,
                Layout::row_major(n),
                0.4,
                &mut c_pck,
            );
            assert_close(&c_ref, &c_pck, 1e-4);
        }
    }

    #[test]
    fn strided_layouts_absorb_transposes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (m, n, k) = if cfg!(miri) { (9, 8, 7) } else { (37, 29, 23) };
        for &(ta, tb) in
            &[(Trans::Yes, Trans::No), (Trans::No, Trans::Yes), (Trans::Yes, Trans::Yes)]
        {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let la = match ta {
                Trans::No => Layout::row_major(k),
                Trans::Yes => Layout::transposed(m),
            };
            let lb = match tb {
                Trans::No => Layout::row_major(n),
                Trans::Yes => Layout::transposed(k),
            };
            let mut c_ref = vec![0.0; m * n];
            let mut c_pck = vec![0.0; m * n];
            gemm_ref(m, n, k, 1.0, &a, ta, &b, tb, 0.0, &mut c_ref);
            gemm_packed(m, n, k, 1.0, &a, la, &b, lb, 0.0, &mut c_pck);
            assert_close(&c_ref, &c_pck, 1e-4);
        }
    }

    #[test]
    fn degenerate_shapes_follow_blas_contract() {
        // m == 0 / n == 0: no-op; k == 0: C = beta * C with NaN-safe beta=0.
        let mut c: Vec<f32> = vec![];
        gemm_packed(
            0,
            5,
            3,
            1.0,
            &[],
            Layout::row_major(3),
            &[0.0; 15],
            Layout::row_major(5),
            0.0,
            &mut c,
        );
        let mut c = vec![f32::NAN; 6];
        gemm_packed(
            2,
            3,
            0,
            1.0,
            &[],
            Layout::row_major(0),
            &[],
            Layout::row_major(3),
            0.0,
            &mut c,
        );
        assert!(c.iter().all(|&x| x == 0.0));
        let mut c = vec![2.0; 6];
        gemm_packed(
            2,
            3,
            0,
            1.0,
            &[],
            Layout::row_major(0),
            &[],
            Layout::row_major(3),
            0.5,
            &mut c,
        );
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn beta_zero_overwrites_nan_poison() {
        let (m, n, k) = (MR + 2, NR + 3, 9);
        let a = vec![1.0; m * k];
        let b = vec![1.0; k * n];
        let mut c = vec![f32::NAN; m * n];
        gemm_packed(m, n, k, 1.0, &a, Layout::row_major(k), &b, Layout::row_major(n), 0.0, &mut c);
        assert!(c.iter().all(|&x| (x - k as f32).abs() < 1e-5));
    }

    #[test]
    fn prepacked_a_matches_full_packed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        // `k` must stay within the (miri-shrunk) KC; `n` spans several NC
        // panels either way.
        let (m, n, k) = if cfg!(miri) { (5, 70, 12) } else { (11, 600, 40) };
        let a = rand_vec(m * k, &mut rng);
        let b1 = rand_vec(k * n, &mut rng);
        let b2 = rand_vec(k * n, &mut rng);
        let mut c_full = vec![0.0; m * n];
        let mut c_pre1 = vec![0.0; m * n];
        let mut c_pre2 = vec![0.0; m * n];
        with_packed_a(m, k, &a, Layout::row_major(k), |apack| {
            gemm_prepacked_a(m, n, k, 1.0, apack, &b1, Layout::row_major(n), 0.0, &mut c_pre1);
            gemm_prepacked_a(m, n, k, 1.0, apack, &b2, Layout::row_major(n), 0.0, &mut c_pre2);
        });
        gemm_packed(
            m,
            n,
            k,
            1.0,
            &a,
            Layout::row_major(k),
            &b1,
            Layout::row_major(n),
            0.0,
            &mut c_full,
        );
        assert_close(&c_full, &c_pre1, 1e-5);
        gemm_packed(
            m,
            n,
            k,
            1.0,
            &a,
            Layout::row_major(k),
            &b2,
            Layout::row_major(n),
            0.0,
            &mut c_full,
        );
        assert_close(&c_full, &c_pre2, 1e-5);
    }

    #[test]
    fn packed_gemm_inside_shared_a_closure_does_not_double_borrow() {
        // Regression: with_packed_a once shared A_PACK with gemm_packed's
        // internal scratch, so a packed product inside the closure hit a
        // RefCell double-borrow. The inner shape is large enough that
        // gemm_packed packs A (not just the axpy path).
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let (m, n, k) = (8, 16, 12);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let (im, inn, ik) = if cfg!(miri) { (16, 16, 16) } else { (64, 64, 64) };
        let ia = rand_vec(im * ik, &mut rng);
        let ib = rand_vec(ik * inn, &mut rng);
        let mut c_outer = vec![0.0; m * n];
        let mut c_inner = vec![0.0; im * inn];
        with_packed_a(m, k, &a, Layout::row_major(k), |apack| {
            gemm_packed(
                im,
                inn,
                ik,
                1.0,
                &ia,
                Layout::row_major(ik),
                &ib,
                Layout::row_major(inn),
                0.0,
                &mut c_inner,
            );
            gemm_prepacked_a(m, n, k, 1.0, apack, &b, Layout::row_major(n), 0.0, &mut c_outer);
        });
        let mut c_ref = vec![0.0; m * n];
        gemm_ref(m, n, k, 1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c_ref);
        assert_close(&c_ref, &c_outer, 1e-5);
        let mut ci_ref = vec![0.0; im * inn];
        gemm_ref(im, inn, ik, 1.0, &ia, Trans::No, &ib, Trans::No, 0.0, &mut ci_ref);
        assert_close(&ci_ref, &c_inner, 1e-4);
    }

    #[test]
    fn block_constants_are_tile_aligned() {
        assert_eq!(MC % MR, 0, "MC must hold whole A panels");
        assert_eq!(NC % NR, 0, "NC must hold whole B panels");
    }

    /// Miri-sized sweep of the packing + tile arithmetic: shapes straddle
    /// every boundary of the (miri-shrunk) MR/NR/KC/MC/NC grid, so the
    /// multi-block loops, tail panels and zero-padding all execute under
    /// the interpreter in a few thousand operations.
    #[test]
    fn small_shapes_cover_all_pack_boundaries() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR - 1, NR - 1, 2),
            (MR, NR, 3),
            (MR + 1, NR + 1, KC.min(8) + 1),
            (MC + 1, NC + 1, KC + 1),
        ] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c_ref = rand_vec(m * n, &mut rng);
            let mut c_pck = c_ref.clone();
            gemm_ref(m, n, k, 1.1, &a, Trans::No, &b, Trans::No, 0.3, &mut c_ref);
            gemm_packed(
                m,
                n,
                k,
                1.1,
                &a,
                Layout::row_major(k),
                &b,
                Layout::row_major(n),
                0.3,
                &mut c_pck,
            );
            assert_close(&c_ref, &c_pck, 1e-4);
        }
    }

    /// The portable-kernel override: forcing it must flip the dispatch
    /// decision (observable through [`active_kernel`]) without changing
    /// results; resetting must restore the environment-driven default.
    #[test]
    fn force_portable_override_flips_dispatch_not_results() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(46);
        let (m, n, k) = (MR + 2, NR + 2, 5);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c_hw = vec![0.0; m * n];
        let mut c_po = vec![0.0; m * n];

        set_force_portable(Some(false));
        let hw_kernel = active_kernel();
        gemm_packed(
            m,
            n,
            k,
            1.0,
            &a,
            Layout::row_major(k),
            &b,
            Layout::row_major(n),
            0.0,
            &mut c_hw,
        );

        set_force_portable(Some(true));
        assert_eq!(active_kernel(), "portable");
        gemm_packed(
            m,
            n,
            k,
            1.0,
            &a,
            Layout::row_major(k),
            &b,
            Layout::row_major(n),
            0.0,
            &mut c_po,
        );

        set_force_portable(None);
        if cfg!(miri) {
            // Miri pins dispatch to the portable kernel unconditionally.
            assert_eq!(hw_kernel, "portable");
        }
        assert_close(&c_hw, &c_po, 1e-5);
    }
}
