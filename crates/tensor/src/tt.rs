//! Tensor-train representation of a 2-D embedding table.
//!
//! Paper §II-B: an `M x N` table with `M = m_1*...*m_d`, `N = n_1*...*n_d`
//! is reshaped into a `d`-dimensional tensor with modes `(m_k n_k)` and
//! decomposed into cores `G_k` of shape `(R_{k-1}, m_k*n_k, R_k)`,
//! `R_0 = R_d = 1`. Row `i` of the table is recovered by multiplying one
//! slice per core (paper Eq. 2).
//!
//! # Core memory layout
//!
//! Core `k` is stored as `m_k` contiguous blocks; block `t` is the row-major
//! `(R_{k-1}, n_k * R_k)` matrix `G_k[:, (t, :), :]`. This is the layout the
//! Eff-TT kernels in `el-core` rely on: looking up TT index `t` yields one
//! contiguous operand for the batched GEMM, exactly like the device pointers
//! TT-Rec/EL-Rec pass to `cublasGemmBatchedEx`.

// Mixed-radix digit loops index several parallel arrays by position; the
// index form mirrors the paper's Eq. 2/3 notation.
#![allow(clippy::needless_range_loop)]

use crate::gemm::gemm_nn;
use crate::matrix::Matrix;
use crate::shape::tt_indices;
use crate::svd::Svd;
use rand::Rng;
use rand_like_normal::normal_f32;

/// TT cores of one embedding table.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct TtCores {
    /// Row-dimension factors `m_k` (their product is the padded row capacity).
    pub row_dims: Vec<usize>,
    /// Column-dimension factors `n_k` (their product is the embedding dim).
    pub col_dims: Vec<usize>,
    /// TT ranks `R_0..R_d`, with `R_0 = R_d = 1`.
    pub ranks: Vec<usize>,
    /// `cores[k]` laid out as `[m_k][R_{k-1}][n_k][R_k]` (see module docs).
    pub cores: Vec<Vec<f32>>,
}

impl TtCores {
    /// Number of TT cores (`d`).
    pub fn order(&self) -> usize {
        self.row_dims.len()
    }

    /// Padded row capacity `prod m_k`.
    pub fn row_capacity(&self) -> usize {
        self.row_dims.iter().product()
    }

    /// Embedding dimension `prod n_k`.
    pub fn embedding_dim(&self) -> usize {
        self.col_dims.iter().product()
    }

    /// Size in elements of one slice of core `k`.
    #[inline]
    pub fn slice_len(&self, k: usize) -> usize {
        self.ranks[k] * self.col_dims[k] * self.ranks[k + 1]
    }

    /// The contiguous `(R_{k-1}, n_k*R_k)` slice of core `k` at TT index `t`.
    #[inline]
    pub fn slice(&self, k: usize, t: usize) -> &[f32] {
        let len = self.slice_len(k);
        &self.cores[k][t * len..(t + 1) * len]
    }

    /// Mutable variant of [`TtCores::slice`].
    #[inline]
    pub fn slice_mut(&mut self, k: usize, t: usize) -> &mut [f32] {
        let len = self.slice_len(k);
        &mut self.cores[k][t * len..(t + 1) * len]
    }

    /// Randomly initialized cores.
    ///
    /// Entries are drawn i.i.d. Gaussian with a per-core standard deviation
    /// chosen so a reconstructed embedding entry has standard deviation
    /// `target_std`: an entry is a sum over `P = prod R_k` rank paths of
    /// products of `d` core entries, so `sigma^(2d) * P = target_std^2`.
    pub fn random(
        row_dims: Vec<usize>,
        col_dims: Vec<usize>,
        ranks: Vec<usize>,
        target_std: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let d = row_dims.len();
        assert_eq!(col_dims.len(), d, "row and column factor counts must match");
        assert_eq!(ranks.len(), d + 1, "need d+1 ranks");
        assert_eq!(ranks[0], 1, "R_0 must be 1");
        assert_eq!(ranks[d], 1, "R_d must be 1");

        let path_count: f64 = ranks.iter().map(|&r| r as f64).product();
        let sigma = ((target_std as f64).powi(2) / path_count).powf(1.0 / (2.0 * d as f64)) as f32;

        let cores = (0..d)
            .map(|k| {
                let len = row_dims[k] * ranks[k] * col_dims[k] * ranks[k + 1];
                (0..len).map(|_| normal_f32(rng) * sigma).collect()
            })
            .collect();
        Self { row_dims, col_dims, ranks, cores }
    }

    /// TT-SVD decomposition of a dense table.
    ///
    /// Rows beyond `table.rows()` (padding up to `prod row_dims`) are treated
    /// as zero. Ranks are capped at `max_rank` and at the exact ranks of the
    /// unfoldings, so low-rank tables are represented exactly.
    pub fn from_dense(
        table: &Matrix,
        row_dims: Vec<usize>,
        col_dims: Vec<usize>,
        max_rank: usize,
    ) -> Self {
        let d = row_dims.len();
        assert_eq!(col_dims.len(), d);
        let capacity: usize = row_dims.iter().product();
        let n: usize = col_dims.iter().product();
        assert!(capacity >= table.rows(), "row factors must cover the table");
        assert_eq!(n, table.cols(), "column factors must multiply to the embedding dim");

        // Build the reshaped tensor as a row-major buffer over modes
        // s_k = m_k * n_k with combined mode index u_k = i_k * n_k + j_k.
        let modes: Vec<usize> = row_dims.iter().zip(&col_dims).map(|(m, nn)| m * nn).collect();
        let total: usize = modes.iter().product();
        let mut tensor = vec![0.0f32; total];
        let mut row_digits = vec![0usize; d];
        let mut col_digits = vec![0usize; d];
        for i in 0..table.rows() {
            tt_indices(i, &row_dims, &mut row_digits);
            for j in 0..n {
                tt_indices(j, &col_dims, &mut col_digits);
                let mut off = 0usize;
                for k in 0..d {
                    off = off * modes[k] + row_digits[k] * col_dims[k] + col_digits[k];
                }
                tensor[off] = table.get(i, j);
            }
        }

        // Sequential TT-SVD over the unfoldings.
        let mut cores_raw: Vec<(usize, usize, usize, Vec<f32>)> = Vec::with_capacity(d);
        let mut rank_prev = 1usize;
        let mut rest: usize = total;
        let mut work = tensor;
        for (k, &mode) in modes.iter().enumerate().take(d - 1) {
            rest /= mode;
            let rows = rank_prev * mode;
            let unfolding = Matrix::from_vec(rows, rest, work);
            let svd = Svd::compute(&unfolding);
            // Drop numerically-zero components before applying the cap: they
            // carry no signal and would bloat the cores.
            let tol = svd.s.first().copied().unwrap_or(0.0) * 1e-6;
            let effective = svd.s.iter().take_while(|&&s| s > tol).count().max(1);
            let r = max_rank.min(effective);
            let svd = svd.truncate(r);
            // Core k (raw TT layout): (rank_prev, mode, r).
            cores_raw.push((rank_prev, mode, r, svd.u.into_vec()));
            // Carry diag(s) * Vt forward.
            let mut carry = svd.vt.into_vec();
            for (row, &s) in svd.s.iter().enumerate() {
                for v in &mut carry[row * rest..(row + 1) * rest] {
                    *v *= s;
                }
            }
            let _ = k;
            rank_prev = r;
            work = carry;
        }
        // Last core: whatever is left, shape (rank_prev, mode_d, 1).
        cores_raw.push((rank_prev, modes[d - 1], 1, work));

        // Permute raw (R_{k-1}, m_k*n_k, R_k) into the canonical
        // [m_k][R_{k-1}][n_k][R_k] layout.
        let mut ranks = Vec::with_capacity(d + 1);
        ranks.push(1);
        let mut cores = Vec::with_capacity(d);
        for (k, (rl, mode, rr, raw)) in cores_raw.into_iter().enumerate() {
            let (mk, nk) = (row_dims[k], col_dims[k]);
            assert_eq!(mode, mk * nk);
            let mut canon = vec![0.0f32; rl * mode * rr];
            for r_left in 0..rl {
                for ik in 0..mk {
                    for jk in 0..nk {
                        for r_right in 0..rr {
                            let src = (r_left * mode + ik * nk + jk) * rr + r_right;
                            let dst = ((ik * rl + r_left) * nk + jk) * rr + r_right;
                            canon[dst] = raw[src];
                        }
                    }
                }
            }
            ranks.push(rr);
            cores.push(canon);
        }
        Self { row_dims, col_dims, ranks, cores }
    }

    /// Reconstructs row `index` of the represented table into `out`
    /// (length = embedding dim) via the prefix-product chain of Eq. 2.
    pub fn reconstruct_row(&self, index: usize, out: &mut [f32]) {
        let d = self.order();
        assert!(index < self.row_capacity(), "row index out of capacity");
        assert_eq!(out.len(), self.embedding_dim());

        let mut digits = vec![0usize; d];
        tt_indices(index, &self.row_dims, &mut digits);

        // cur: (p, R_k) with p = prod_{l<k} n_l, starting from core 0 whose
        // slice is (1, n_0 * R_1) == (n_0, R_1) after the free reshape.
        let mut cur: Vec<f32> = self.slice(0, digits[0]).to_vec();
        let mut p = self.col_dims[0];
        for k in 1..d {
            let r_in = self.ranks[k];
            let cols_out = self.col_dims[k] * self.ranks[k + 1];
            let mut next = vec![0.0f32; p * cols_out];
            gemm_nn(p, cols_out, r_in, 1.0, &cur, self.slice(k, digits[k]), 0.0, &mut next);
            // row-major (p, n_k*R_{k+1}) reshapes to (p*n_k, R_{k+1}) for free
            p *= self.col_dims[k];
            cur = next;
        }
        debug_assert_eq!(cur.len(), out.len());
        out.copy_from_slice(&cur);
    }

    /// Materializes the full (padded) table — the test oracle. Quadratic in
    /// footprint; only call on small shapes.
    pub fn reconstruct(&self) -> Matrix {
        let rows = self.row_capacity();
        let n = self.embedding_dim();
        let mut out = Matrix::zeros(rows, n);
        for i in 0..rows {
            self.reconstruct_row(i, out.row_mut(i));
        }
        out
    }

    /// Total parameter count across cores.
    pub fn param_count(&self) -> usize {
        self.cores.iter().map(|c| c.len()).sum()
    }

    /// Core memory footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Compression ratio versus the dense `rows x N` table the cores stand
    /// in for.
    pub fn compression_ratio(&self, dense_rows: usize) -> f64 {
        let dense = dense_rows * self.embedding_dim();
        dense as f64 / self.param_count() as f64
    }
}

/// Convenience bundle returned by [`decompose`] containing the cores and the
/// achieved reconstruction error.
#[derive(Clone, Debug)]
pub struct TtDecomposition {
    /// The fitted cores.
    pub cores: TtCores,
    /// `max |dense - reconstruction|` over the non-padded rows.
    pub max_error: f32,
}

/// Decomposes `table` with balanced 3-way factorizations and reports the
/// reconstruction error (used by the compression-sweep example).
pub fn decompose(table: &Matrix, d: usize, max_rank: usize) -> TtDecomposition {
    let row_dims = crate::shape::balanced_factorization(table.rows(), d);
    let col_dims = crate::shape::factorize(table.cols(), d);
    let cores = TtCores::from_dense(table, row_dims, col_dims, max_rank);
    let mut row = vec![0.0f32; table.cols()];
    let mut max_error = 0.0f32;
    for i in 0..table.rows() {
        cores.reconstruct_row(i, &mut row);
        for (a, b) in row.iter().zip(table.row(i)) {
            max_error = max_error.max((a - b).abs());
        }
    }
    TtDecomposition { cores, max_error }
}

/// Minimal Box–Muller normal sampler so the crate only depends on `rand`'s
/// uniform source (keeps `rand_distr` optional at this layer).
mod rand_like_normal {
    use rand::Rng;

    pub fn normal_f32(rng: &mut impl Rng) -> f32 {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_cores_have_declared_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let tt = TtCores::random(vec![4, 5, 6], vec![2, 4, 4], vec![1, 8, 8, 1], 0.1, &mut rng);
        assert_eq!(tt.order(), 3);
        assert_eq!(tt.row_capacity(), 120);
        assert_eq!(tt.embedding_dim(), 32);
        assert_eq!(tt.cores[0].len(), 4 * 2 * 8);
        assert_eq!(tt.cores[1].len(), 5 * 8 * 4 * 8);
        assert_eq!(tt.cores[2].len(), (6 * 8 * 4));
    }

    #[test]
    fn random_init_hits_target_std() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let target = 0.1f32;
        let tt =
            TtCores::random(vec![8, 8, 8], vec![4, 4, 4], vec![1, 16, 16, 1], target, &mut rng);
        let dense = tt.reconstruct();
        let var: f64 = dense.as_slice().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()
            / dense.len() as f64;
        let std = var.sqrt() as f32;
        assert!(
            (std / target) > 0.5 && (std / target) < 2.0,
            "reconstructed std {std} too far from target {target}"
        );
    }

    #[test]
    fn tt_svd_reconstructs_small_table_exactly_with_full_rank() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let table = Matrix::uniform(12, 8, 1.0, &mut rng);
        // full-rank caps: rank can grow to min of unfolding dims
        let dec = decompose(&table, 3, 64);
        assert!(dec.max_error < 1e-3, "max error {}", dec.max_error);
    }

    #[test]
    fn tt_svd_with_padding_zeroes_padded_rows() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let table = Matrix::uniform(10, 8, 1.0, &mut rng); // capacity 2*2*3=12 > 10
        let cores = TtCores::from_dense(&table, vec![2, 2, 3], vec![2, 2, 2], 64);
        let rec = cores.reconstruct();
        for i in 10..12 {
            for j in 0..8 {
                assert!(rec.get(i, j).abs() < 1e-3, "padded row leaked: {}", rec.get(i, j));
            }
        }
    }

    #[test]
    fn low_rank_table_compresses_exactly_at_low_rank() {
        // Build a table that is exactly TT-rank (2,2): reconstruct from tiny
        // random cores, then re-decompose with the same rank cap.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let src = TtCores::random(vec![3, 3, 3], vec![2, 2, 2], vec![1, 2, 2, 1], 0.5, &mut rng);
        let dense = src.reconstruct();
        let cores = TtCores::from_dense(&dense, vec![3, 3, 3], vec![2, 2, 2], 2);
        let err = cores.reconstruct().max_abs_diff(&dense);
        assert!(err < 1e-3, "rank-2 table should be exact at rank 2, err {err}");
    }

    #[test]
    fn reconstruct_row_matches_full_reconstruction() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let tt = TtCores::random(vec![3, 4, 5], vec![2, 2, 4], vec![1, 6, 6, 1], 0.2, &mut rng);
        let dense = tt.reconstruct();
        let mut row = vec![0.0f32; tt.embedding_dim()];
        for i in [0usize, 7, 33, 59] {
            tt.reconstruct_row(i, &mut row);
            assert_eq!(&row[..], dense.row(i));
        }
    }

    #[test]
    fn order_two_tables_work() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let table = Matrix::uniform(6, 4, 1.0, &mut rng);
        let cores = TtCores::from_dense(&table, vec![2, 3], vec![2, 2], 16);
        let err = cores.reconstruct().submatrix(0, 0, 6, 4).max_abs_diff(&table);
        assert!(err < 1e-3);
    }

    #[test]
    fn footprint_is_much_smaller_than_dense() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        // 1M-row table at dim 64, rank 16
        let tt =
            TtCores::random(vec![100, 100, 100], vec![4, 4, 4], vec![1, 16, 16, 1], 0.1, &mut rng);
        let dense_bytes = 1_000_000usize * 64 * 4;
        assert!(tt.footprint_bytes() * 50 < dense_bytes);
        assert!(tt.compression_ratio(1_000_000) > 50.0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn reconstruct_row_rejects_out_of_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let tt = TtCores::random(vec![2, 2], vec![2, 2], vec![1, 2, 1], 0.1, &mut rng);
        let mut row = vec![0.0f32; 4];
        tt.reconstruct_row(4, &mut row);
    }
}
