//! Batched GEMM — the `cublasGemmBatchedEx` stand-in.
//!
//! EL-Rec's Algorithm 1 (parallel pointer preparation) produces three pointer
//! lists `Ptr_a`, `Ptr_b`, `Ptr_c` and hands them to one batched-GEMM launch
//! that executes every small product concurrently. This module reproduces
//! that contract on the CPU:
//!
//! * operands live in three flat **arenas** (`a_arena`, `b_arena`, `c_arena`),
//! * a [`GemmTask`] is a triple of element offsets into those arenas — the
//!   safe-Rust analogue of a device pointer triple,
//! * [`batched_gemm`] executes all tasks of a [`GemmBatch`] across the rayon
//!   pool in one call.
//!
//! # Safety contract
//!
//! Like its CUDA counterpart, the batched kernel requires the *output*
//! regions of all tasks to be pairwise disjoint; this is checked with an
//! `O(t log t)` validation in debug builds and trusted in release builds.

use crate::gemm::{gemm_nn, gemm_sum_nn};
use crate::micro::{self, Layout};
use rayon::prelude::*;

/// One small GEMM inside a batch: element offsets of A, B and C inside their
/// respective arenas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmTask {
    /// Offset of the `m x k` A block in the A arena.
    pub a: usize,
    /// Offset of the `k x n` B block in the B arena.
    pub b: usize,
    /// Offset of the `m x n` C block in the C arena.
    pub c: usize,
}

/// A batch of equally-shaped GEMMs: `C_i = alpha * A_i * B_i + beta * C_i`.
#[derive(Clone, Debug)]
pub struct GemmBatch {
    /// Rows of each A/C block.
    pub m: usize,
    /// Columns of each B/C block.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Scale on the product.
    pub alpha: f32,
    /// Scale on the existing C contents.
    pub beta: f32,
    /// The pointer list.
    pub tasks: Vec<GemmTask>,
}

impl Default for GemmBatch {
    /// An empty degenerate-shape batch — a placeholder whose task list
    /// capacity can be recycled via [`GemmBatch::reset`].
    fn default() -> Self {
        Self::new(0, 0, 0)
    }
}

impl GemmBatch {
    /// An empty batch of the given shape with `alpha = 1`, `beta = 0`.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        Self { m, n, k, alpha: 1.0, beta: 0.0, tasks: Vec::new() }
    }

    /// Reshapes the batch in place for a new level, clearing the task list
    /// but keeping its allocation (the zero-alloc hot-path hook).
    pub fn reset(&mut self, m: usize, n: usize, k: usize) {
        self.m = m;
        self.n = n;
        self.k = k;
        self.alpha = 1.0;
        self.beta = 0.0;
        self.tasks.clear();
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Queues one task.
    pub fn push(&mut self, a: usize, b: usize, c: usize) {
        self.tasks.push(GemmTask { a, b, c });
    }

    /// Total floating-point operations the batch performs (2·m·n·k each).
    pub fn flops(&self) -> usize {
        2 * self.m * self.n * self.k * self.tasks.len()
    }
}

/// Wrapper that lets rayon move a raw pointer across threads. The
/// disjointness contract of [`batched_gemm`] makes concurrent writes
/// through it race-free.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: SendPtr is only constructed inside `batched_gemm`, whose tasks
// write through disjoint C regions (checked in debug builds); no two
// threads ever touch the same element.
unsafe impl Send for SendPtr {}
// SAFETY: as above — shared references only enable disjoint writes.
unsafe impl Sync for SendPtr {}

/// Executes every task of `batch` over the rayon pool.
///
/// # Panics
///
/// Panics when a task reads or writes out of arena bounds, and — in debug
/// builds — when two tasks' C regions overlap.
pub fn batched_gemm(batch: &GemmBatch, a_arena: &[f32], b_arena: &[f32], c_arena: &mut [f32]) {
    let (m, n, k) = (batch.m, batch.n, batch.k);
    let (a_len, b_len, c_len) = (m * k, k * n, m * n);
    if batch.tasks.is_empty() || c_len == 0 {
        return;
    }

    for t in &batch.tasks {
        assert!(t.a + a_len <= a_arena.len(), "A block out of bounds: off={} len={}", t.a, a_len);
        assert!(t.b + b_len <= b_arena.len(), "B block out of bounds: off={} len={}", t.b, b_len);
        assert!(t.c + c_len <= c_arena.len(), "C block out of bounds: off={} len={}", t.c, c_len);
    }
    debug_assert!(outputs_disjoint(&batch.tasks, c_len), "C regions of tasks must be disjoint");

    let c_ptr = SendPtr(c_arena.as_mut_ptr());
    let (alpha, beta) = (batch.alpha, batch.beta);

    // One small GEMM is far below the fork/join break-even point, so tasks
    // are processed in chunks sized by flops: each chunk carries roughly
    // CHUNK_FLOPS multiply-adds regardless of the per-task shape, so tiny
    // TT-slice products coalesce into few forks while big tasks still
    // spread across workers.
    let task_flops = (m * n * k).max(1);
    let chunk = (CHUNK_FLOPS / task_flops).max(1);
    batch.tasks.par_chunks(chunk).for_each(|tasks| {
        // Tasks are pushed in slot order, so tasks reading the same A block
        // (all children of one chain slot) sit in contiguous runs. Each run
        // reuses its A block: packed once for large shapes, or simply kept
        // hot in L1 for the small TT-slice shapes.
        let mut i = 0;
        while i < tasks.len() {
            let a_off = tasks[i].a;
            let mut j = i + 1;
            while j < tasks.len() && tasks[j].a == a_off {
                j += 1;
            }
            let a = &a_arena[a_off..a_off + a_len];
            let group = &tasks[i..j];
            let packable = group.len() > 1 && m * n * k >= micro::PACK_CUTOFF && k <= micro::KC;
            if packable {
                micro::with_packed_a(m, k, a, Layout::row_major(k), |a_pack| {
                    for t in group {
                        // SAFETY: bounds were validated above and C regions
                        // are disjoint by contract, so each task writes a
                        // region no other task touches.
                        let c = unsafe {
                            let base = c_ptr;
                            std::slice::from_raw_parts_mut(base.0.add(t.c), c_len)
                        };
                        micro::gemm_prepacked_a(
                            m,
                            n,
                            k,
                            alpha,
                            a_pack,
                            &b_arena[t.b..t.b + b_len],
                            Layout::row_major(n),
                            beta,
                            c,
                        );
                    }
                });
            } else {
                for t in group {
                    // SAFETY: as above — validated bounds, disjoint outputs.
                    let c = unsafe {
                        let base = c_ptr;
                        std::slice::from_raw_parts_mut(base.0.add(t.c), c_len)
                    };
                    gemm_nn(m, n, k, alpha, a, &b_arena[t.b..t.b + b_len], beta, c);
                }
            }
            i = j;
        }
    });
}

/// Multiply-adds per parallel chunk of [`batched_gemm`]. Chunk boundaries
/// may split a shared-A run; the split run just packs its A block twice,
/// which is cheaper than materializing run boundaries up front.
const CHUNK_FLOPS: usize = 1 << 21;

/// Sequential execution of the same batch; the oracle for tests and the
/// fallback used when the caller is already inside a parallel region.
pub fn batched_gemm_seq(batch: &GemmBatch, a_arena: &[f32], b_arena: &[f32], c_arena: &mut [f32]) {
    let (m, n, k) = (batch.m, batch.n, batch.k);
    let (a_len, b_len, c_len) = (m * k, k * n, m * n);
    for t in &batch.tasks {
        gemm_nn(
            m,
            n,
            k,
            batch.alpha,
            &a_arena[t.a..t.a + a_len],
            &b_arena[t.b..t.b + b_len],
            batch.beta,
            &mut c_arena[t.c..t.c + c_len],
        );
    }
}

/// One fused pooled-lookup+GEMM product: `C += (Σ_b A_b) * B` with each
/// `A_b` the row-major `m x k` block of `a_arena` at `offsets[b]`.
///
/// The dispatcher of the fused-pooling path (EL-Rec's lookup+GEMM fusion):
/// the per-lookup TT partial products named by the offsets — which come
/// straight from a lookup plan's CSR slot lists — are pooled *inside* the
/// kernel, so the intermediate `(lookups x dim)` matrix of the
/// materialize-then-pool path is never written or re-read. Large shapes go
/// through the packed A-panel loader ([`micro::with_packed_a_sum`]), which
/// folds the sum while packing; small shapes (the common TT-slice sizes)
/// run the summed axpy kernel [`gemm_sum_nn`].
pub fn pooled_gemm(
    m: usize,
    n: usize,
    k: usize,
    a_arena: &[f32],
    offsets: &[usize],
    b: &[f32],
    c: &mut [f32],
) {
    if offsets.is_empty() || m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * n * k >= micro::PACK_CUTOFF && k <= micro::KC {
        micro::with_packed_a_sum(m, k, a_arena, offsets, |apack| {
            micro::gemm_prepacked_a(m, n, k, 1.0, apack, b, micro::Layout::row_major(n), 1.0, c);
        });
    } else {
        gemm_sum_nn(m, n, k, a_arena, offsets, b, c);
    }
}

fn outputs_disjoint(tasks: &[GemmTask], c_len: usize) -> bool {
    let mut spans: Vec<(usize, usize)> = tasks.iter().map(|t| (t.c, t.c + c_len)).collect();
    spans.sort_unstable();
    spans.windows(2).all(|w| w[0].1 <= w[1].0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_vec(n: usize, rng: &mut impl Rng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let (m, n, k) = (4, 6, 5);
        let count = 100;
        let a_arena = rand_vec(m * k * count, &mut rng);
        let b_arena = rand_vec(k * n * count, &mut rng);
        let mut batch = GemmBatch::new(m, n, k);
        for i in 0..count {
            // shuffle the pointer association to exercise indirection
            batch.push((count - 1 - i) * m * k, i * k * n, i * m * n);
        }
        let mut c_par = vec![0.0; m * n * count];
        let mut c_seq = vec![0.0; m * n * count];
        batched_gemm(&batch, &a_arena, &b_arena, &mut c_par);
        batched_gemm_seq(&batch, &a_arena, &b_arena, &mut c_seq);
        assert_eq!(c_par, c_seq);
    }

    #[test]
    fn shared_inputs_are_allowed() {
        // Many tasks reading the same A block (the whole point of the
        // reuse buffer) must work.
        let (m, n, k) = (2, 2, 2);
        let a_arena = vec![1.0, 2.0, 3.0, 4.0];
        let b_arena = vec![1.0, 0.0, 0.0, 1.0];
        let mut batch = GemmBatch::new(m, n, k);
        for i in 0..8 {
            batch.push(0, 0, i * m * n);
        }
        let mut c = vec![0.0; m * n * 8];
        batched_gemm(&batch, &a_arena, &b_arena, &mut c);
        for i in 0..8 {
            assert_eq!(&c[i * 4..(i + 1) * 4], &[1.0, 2.0, 3.0, 4.0]);
        }
    }

    #[test]
    fn beta_accumulates_into_existing_c() {
        let (m, n, k) = (1, 1, 1);
        let a_arena = vec![3.0];
        let b_arena = vec![4.0];
        let mut c = vec![5.0];
        let mut batch = GemmBatch::new(m, n, k);
        batch.alpha = 2.0;
        batch.beta = 1.0;
        batch.push(0, 0, 0);
        batched_gemm(&batch, &a_arena, &b_arena, &mut c);
        assert_eq!(c[0], 2.0 * 12.0 + 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_task_panics() {
        let mut batch = GemmBatch::new(2, 2, 2);
        batch.push(100, 0, 0);
        let a = vec![0.0; 4];
        let b = vec![0.0; 4];
        let mut c = vec![0.0; 4];
        batched_gemm(&batch, &a, &b, &mut c);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "disjoint")]
    fn overlapping_outputs_panic_in_debug() {
        let mut batch = GemmBatch::new(2, 2, 2);
        batch.push(0, 0, 0);
        batch.push(0, 0, 2); // overlaps the first 2x2 block
        let a = vec![0.0; 4];
        let b = vec![0.0; 4];
        let mut c = vec![0.0; 8];
        batched_gemm(&batch, &a, &b, &mut c);
    }

    #[test]
    fn shared_a_runs_take_packed_path() {
        // Shapes above the packing cutoff with contiguous shared-A runs of
        // varying length exercise the pack-once-per-group path against the
        // sequential oracle.
        // m*n*k >= PACK_CUTOFF (with the miri-shrunk constants a toy shape
        // already qualifies, so the packed raw-pointer path runs under Miri)
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (m, n, k) = if cfg!(miri) { (4, 8, 8) } else { (32, 128, 64) };
        let num_a = 3;
        let count = 10;
        let a_arena = rand_vec(m * k * num_a, &mut rng);
        let b_arena = rand_vec(k * n * count, &mut rng);
        let mut batch = GemmBatch::new(m, n, k);
        // runs of length 4, 5, 1 over the three A blocks
        for (i, &a_idx) in [0, 0, 0, 0, 1, 1, 1, 1, 1, 2].iter().enumerate() {
            batch.push(a_idx * m * k, i * k * n, i * m * n);
        }
        let mut c_par = vec![0.0; m * n * count];
        let mut c_seq = vec![0.0; m * n * count];
        batched_gemm(&batch, &a_arena, &b_arena, &mut c_par);
        batched_gemm_seq(&batch, &a_arena, &b_arena, &mut c_seq);
        for (i, (x, y)) in c_par.iter().zip(&c_seq).enumerate() {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn reset_keeps_task_capacity() {
        let mut batch = GemmBatch::new(2, 2, 2);
        for i in 0..100 {
            batch.push(0, 0, i * 4);
        }
        let cap = batch.tasks.capacity();
        batch.reset(3, 4, 5);
        assert_eq!((batch.m, batch.n, batch.k), (3, 4, 5));
        assert!(batch.is_empty());
        assert_eq!(batch.tasks.capacity(), cap);
    }

    #[test]
    fn flops_accounting() {
        let mut batch = GemmBatch::new(4, 4, 4);
        batch.push(0, 0, 0);
        batch.push(0, 0, 16);
        assert_eq!(batch.flops(), 2 * 64 * 2);
    }

    #[test]
    fn empty_batch_is_noop() {
        let batch = GemmBatch::new(4, 4, 4);
        let mut c = vec![7.0; 16];
        batched_gemm(&batch, &[], &[], &mut c);
        assert!(c.iter().all(|&x| x == 7.0));
    }

    /// The SendPtr disjointness contract, checked cell by cell: every task
    /// writes its own C region through the shared raw pointer and no cell
    /// is written twice or missed. Small enough for Miri, where the
    /// `from_raw_parts_mut` offset arithmetic runs under full provenance
    /// checking.
    #[test]
    fn sendptr_disjoint_writes_cover_every_cell() {
        let (m, n, k) = (2, 3, 1);
        let count = 7;
        // A_i = [i+1, i+1]^T (2x1), B = ones (1x3) => C_i = (i+1) everywhere.
        let a_arena: Vec<f32> = (0..count).flat_map(|i| [i as f32 + 1.0; 2]).collect();
        let b_arena = vec![1.0; k * n];
        let mut batch = GemmBatch::new(m, n, k);
        for i in 0..count {
            // Reverse C placement so task order differs from memory order.
            batch.push(i * m * k, 0, (count - 1 - i) * m * n);
        }
        let mut c = vec![f32::NAN; m * n * count];
        batched_gemm(&batch, &a_arena, &b_arena, &mut c);
        for i in 0..count {
            let region = &c[(count - 1 - i) * m * n..][..m * n];
            assert!(region.iter().all(|&x| x == i as f32 + 1.0), "task {i} wrote {region:?}");
        }
    }

    /// Materialize-then-multiply oracle for [`pooled_gemm`]: sums the A
    /// blocks into a dense matrix first, then runs the reference GEMM.
    fn pooled_oracle(
        m: usize,
        n: usize,
        k: usize,
        a_arena: &[f32],
        offsets: &[usize],
        b: &[f32],
        c: &mut [f32],
    ) {
        let mut a_sum = vec![0.0f32; m * k];
        for &off in offsets {
            for (s, &v) in a_sum.iter_mut().zip(&a_arena[off..off + m * k]) {
                *s += v;
            }
        }
        use crate::gemm::Trans;
        crate::gemm::gemm_ref(m, n, k, 1.0, &a_sum, Trans::No, b, Trans::No, 1.0, c);
    }

    #[test]
    fn pooled_gemm_small_shapes_match_oracle() {
        // Below PACK_CUTOFF: exercises the gemm_sum_nn axpy path, including
        // overlapping and repeated offsets (a slot pooled twice).
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 4), (6, 16, 8), (7, 17, 9)] {
            let a_arena = rand_vec(m * k * 4 + 3, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let offsets = [0, m * k, 3, 0, 2 * m * k];
            let mut c = rand_vec(m * n, &mut rng);
            let mut c_ref = c.clone();
            pooled_gemm(m, n, k, &a_arena, &offsets, &b, &mut c);
            pooled_oracle(m, n, k, &a_arena, &offsets, &b, &mut c_ref);
            for (i, (x, y)) in c.iter().zip(&c_ref).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                    "({m},{n},{k}) mismatch at {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn pooled_gemm_packed_path_matches_oracle() {
        // Above PACK_CUTOFF with k <= KC: exercises the with_packed_a_sum
        // packed path. With the miri-shrunk constants a toy shape qualifies,
        // so the packed loader also runs under Miri.
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let (m, n, k) = if cfg!(miri) { (6, 12, 8) } else { (48, 96, 64) };
        assert!(m * n * k >= micro::PACK_CUTOFF && k <= micro::KC);
        let a_arena = rand_vec(m * k * 3, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let offsets = [2 * m * k, 0, m * k, 0];
        let mut c = rand_vec(m * n, &mut rng);
        let mut c_ref = c.clone();
        pooled_gemm(m, n, k, &a_arena, &offsets, &b, &mut c);
        pooled_oracle(m, n, k, &a_arena, &offsets, &b, &mut c_ref);
        for (i, (x, y)) in c.iter().zip(&c_ref).enumerate() {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn pooled_gemm_empty_offsets_is_noop() {
        let mut c = vec![7.0; 6];
        pooled_gemm(2, 3, 4, &[0.0; 8], &[], &[0.0; 12], &mut c);
        assert!(c.iter().all(|&x| x == 7.0));
    }

    #[test]
    #[should_panic]
    fn pooled_gemm_out_of_bounds_offset_panics() {
        let mut c = vec![0.0; 4];
        pooled_gemm(2, 2, 2, &[0.0; 8], &[100], &[0.0; 4], &mut c);
    }
}
