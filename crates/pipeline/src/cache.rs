//! The embedding cache that resolves pipelined training's
//! read-after-write conflict (paper §V-B, Figure 10).
//!
//! Pre-fetching embeddings for batch `i+1` while batch `i` trains means the
//! pre-fetched rows may miss the update batch `i` is about to produce. The
//! worker therefore keeps the *freshest* value of every row it has updated
//! but the server has not yet applied, and overwrites stale pre-fetched
//! rows on arrival ("synchronization", Figure 10b step 1).
//!
//! The paper manages cache occupancy with life-cycle (LC) counters sized by
//! the request-queue length. This implementation uses **version
//! watermarks**, which enforce the same invariant with an explicit proof
//! obligation:
//!
//! * an entry inserted after training batch `k` is stamped `pushed_at = k`;
//! * every pre-fetched batch is stamped with `applied_through` — the number
//!   of gradient batches the server had applied when it gathered the rows;
//! * a pre-fetched row is stale iff `applied_through <= pushed_at`, in
//!   which case the cached value (bit-identical to what the server will
//!   eventually hold) replaces it;
//! * entries with `pushed_at < applied_through` can never be needed again
//!   (the server copy already includes them), so the watermark advancing
//!   evicts them — the moment the paper's LC counter would reach zero.

use el_tensor::Matrix;
use std::collections::HashMap;

/// Per-table cache of worker-fresh embedding rows.
#[derive(Clone, Debug, Default)]
pub struct EmbeddingCache {
    /// row index -> (freshest row value, batch seq that produced it).
    entries: HashMap<u32, (Vec<f32>, u64)>,
    /// Highest `applied_through` observed; entries older than this are
    /// evicted.
    watermark: u64,
    /// Lifetime sync statistics: rows overwritten because they were stale.
    pub stale_hits: u64,
    /// Lifetime sync statistics: rows that were already fresh.
    pub fresh_rows: u64,
}

impl EmbeddingCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Synchronizes a pre-fetched batch: for every row the worker updated
    /// more recently than the server applied (`pushed_at >= applied_through`),
    /// the cached value overwrites the pre-fetched one.
    ///
    /// Also advances the watermark, evicting entries the server has
    /// caught up on.
    pub fn sync(&mut self, indices: &[u32], rows: &mut Matrix, applied_through: u64) {
        assert_eq!(rows.rows(), indices.len());
        for (r, &idx) in indices.iter().enumerate() {
            if let Some((value, pushed_at)) = self.entries.get(&idx) {
                if *pushed_at >= applied_through {
                    rows.row_mut(r).copy_from_slice(value);
                    self.stale_hits += 1;
                } else {
                    self.fresh_rows += 1;
                }
            } else {
                self.fresh_rows += 1;
            }
        }
        self.advance(applied_through);
    }

    /// Inserts (or refreshes) rows after training batch `batch_seq`.
    pub fn insert(&mut self, indices: &[u32], rows: &Matrix, batch_seq: u64) {
        assert_eq!(rows.rows(), indices.len());
        for (r, &idx) in indices.iter().enumerate() {
            match self.entries.get_mut(&idx) {
                Some((value, pushed_at)) => {
                    value.copy_from_slice(rows.row(r));
                    *pushed_at = batch_seq;
                }
                None => {
                    self.entries.insert(idx, (rows.row(r).to_vec(), batch_seq));
                }
            }
        }
    }

    /// Advances the server watermark, evicting entries whose update the
    /// server has applied (`pushed_at < applied_through`).
    pub fn advance(&mut self, applied_through: u64) {
        if applied_through <= self.watermark {
            return;
        }
        self.watermark = applied_through;
        self.entries.retain(|_, (_, pushed_at)| *pushed_at >= applied_through);
    }

    /// Bytes held by cached rows (the memory the LC system bounds).
    pub fn footprint_bytes(&self) -> usize {
        self.entries.values().map(|(v, _)| v.len() * std::mem::size_of::<f32>() + 16).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[f32], dim: usize) -> Matrix {
        Matrix::from_vec(vals.len() / dim, dim, vals.to_vec())
    }

    #[test]
    fn stale_prefetch_is_overwritten() {
        let mut cache = EmbeddingCache::new();
        // worker updated row 5 after batch 3
        cache.insert(&[5], &rows(&[1.0, 2.0], 2), 3);
        // prefetch gathered when server had applied only through batch 2
        let mut pre = rows(&[9.0, 9.0], 2);
        cache.sync(&[5], &mut pre, 2);
        assert_eq!(pre.row(0), &[1.0, 2.0]);
        assert_eq!(cache.stale_hits, 1);
    }

    #[test]
    fn fresh_prefetch_is_kept_and_entry_evicted() {
        let mut cache = EmbeddingCache::new();
        cache.insert(&[5], &rows(&[1.0, 2.0], 2), 3);
        // server has applied through batch 4 > 3: its copy includes the
        // update, so the prefetched value is authoritative
        let mut pre = rows(&[7.0, 8.0], 2);
        cache.sync(&[5], &mut pre, 4);
        assert_eq!(pre.row(0), &[7.0, 8.0]);
        assert!(cache.is_empty(), "entry should be evicted once applied");
    }

    #[test]
    fn boundary_equal_versions_use_cache() {
        // applied_through == pushed_at means the server gathered *before*
        // applying this batch's push: still stale.
        let mut cache = EmbeddingCache::new();
        cache.insert(&[1], &rows(&[5.0], 1), 3);
        let mut pre = rows(&[0.0], 1);
        cache.sync(&[1], &mut pre, 3);
        assert_eq!(pre.row(0), &[5.0]);
    }

    #[test]
    fn reinsert_updates_version_and_value() {
        let mut cache = EmbeddingCache::new();
        cache.insert(&[2], &rows(&[1.0], 1), 1);
        cache.insert(&[2], &rows(&[2.0], 1), 5);
        let mut pre = rows(&[0.0], 1);
        cache.sync(&[2], &mut pre, 4);
        assert_eq!(pre.row(0), &[2.0]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn watermark_never_regresses() {
        let mut cache = EmbeddingCache::new();
        cache.insert(&[1], &rows(&[1.0], 1), 10);
        cache.advance(20); // evicts
        assert!(cache.is_empty());
        cache.insert(&[1], &rows(&[2.0], 1), 25);
        cache.advance(15); // stale watermark: ignored
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn footprint_is_bounded_by_eviction() {
        let mut cache = EmbeddingCache::new();
        for k in 0..100u64 {
            cache.insert(&[k as u32], &rows(&[k as f32], 1), k);
        }
        assert_eq!(cache.len(), 100);
        cache.advance(100);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.footprint_bytes(), 0);
    }

    #[test]
    fn untouched_rows_count_as_fresh() {
        let mut cache = EmbeddingCache::new();
        let mut pre = rows(&[1.0, 2.0], 1);
        cache.sync(&[0, 1], &mut pre, 0);
        assert_eq!(cache.fresh_rows, 2);
        assert_eq!(pre.row(0), &[1.0]);
    }
}
