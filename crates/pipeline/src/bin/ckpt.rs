//! Checkpoint tooling (`cargo xtask ckpt`).
//!
//! Three subcommands over the framed checkpoint format of DESIGN.md §11:
//!
//! * `ckpt verify <path>` — fully verify one `.elck` file (frame trailer,
//!   per-section checksums, payload decode) or, given a store directory,
//!   every checkpoint in it plus manifest drift.
//! * `ckpt ls <dir>` — list a store: sequence numbers, sizes, checksums,
//!   validity, and which file recovery would pick.
//! * `ckpt bench [--rows N] [--dim D] [--tt]` — measure checkpoint size
//!   and save/verify/restore wall time on a representative model (the
//!   numbers EXPERIMENTS.md reports).

use el_dlrm::checkpoint::DlrmCheckpoint;
use el_dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer, OptimizerKind};
use el_pipeline::ckpt::{verify_bytes, CkptInfo, CkptStore, FsStorage};
use el_pipeline::trainer::PipelineTrainer;
use rand::SeedableRng;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: ckpt <command>
  verify <path>               verify one .elck file, or every checkpoint in a store dir
  ls <dir>                    list a checkpoint store (files, validity, recovery pick)
  bench [--rows N] [--dim D] [--tt] [--dir PATH]
                              measure checkpoint size and save/restore time
                              (defaults: --rows 100000 --dim 16, dense tables;
                              --dir keeps the store at PATH for ls/verify)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("verify") => match args.get(1) {
            Some(path) => cmd_verify(Path::new(path)),
            None => {
                eprintln!("ckpt verify: missing path\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("ls") => match args.get(1) {
            Some(dir) => cmd_ls(Path::new(dir)),
            None => {
                eprintln!("ckpt ls: missing store directory\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        Some(other) => {
            eprintln!("ckpt: unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn print_info(info: &CkptInfo) {
    println!("  bytes       {}", info.bytes);
    println!("  checksum    {:#018x} (fnv-1a)", info.checksum);
    for (name, len) in &info.sections {
        println!("  section     {name} ({len} bytes)");
    }
    println!("  next_batch  {}", info.next_batch);
    println!("  server tables captured: {}", info.server_tables);
}

/// Verifies a single file or a whole store directory.
fn cmd_verify(path: &Path) -> ExitCode {
    if path.is_file() {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ckpt verify: reading {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match verify_bytes(&bytes) {
            Ok(info) => {
                println!("{}: VALID", path.display());
                print_info(&info);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{}: INVALID — {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }
    let store = match open_store(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let names = match store.names_newest_first() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("ckpt verify: listing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if names.is_empty() {
        println!("{}: empty store (no ckpt-*.elck files)", path.display());
        return ExitCode::SUCCESS;
    }
    let mut bad = 0usize;
    for name in &names {
        match store.verify(name) {
            Ok(info) => {
                println!("{name}: VALID");
                print_info(&info);
            }
            Err(e) => {
                bad += 1;
                println!("{name}: INVALID — {e}");
            }
        }
    }
    report_manifest_drift(&store);
    match store.latest_valid() {
        Ok((name, ckpt)) => {
            println!("recovery would resume from {name} at batch {}", ckpt.next_batch)
        }
        Err(e) => println!("recovery: {e}"),
    }
    if bad == 0 {
        println!("{}: all {} checkpoint(s) valid", path.display(), names.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("{}: {bad}/{} checkpoint(s) INVALID", path.display(), names.len());
        ExitCode::FAILURE
    }
}

fn open_store(dir: &Path) -> Result<CkptStore<FsStorage>, ExitCode> {
    let storage = FsStorage::open(dir).map_err(|e| {
        eprintln!("ckpt: opening store {}: {e}", dir.display());
        ExitCode::FAILURE
    })?;
    CkptStore::open(storage, usize::MAX).map_err(|e| {
        eprintln!("ckpt: scanning store {}: {e}", dir.display());
        ExitCode::FAILURE
    })
}

/// Compares the advisory manifest against what is actually on disk.
fn report_manifest_drift(store: &CkptStore<FsStorage>) {
    let Ok(actual) = store.scan_manifest() else {
        println!("manifest: store unreadable during scan");
        return;
    };
    match store.read_manifest() {
        None => println!("manifest: absent or unparseable (advisory only; recovery unaffected)"),
        Some(stored) => {
            let same = stored.entries.len() == actual.entries.len()
                && stored.entries.iter().zip(&actual.entries).all(|(a, b)| {
                    a.name == b.name && a.bytes == b.bytes && a.checksum == b.checksum
                });
            if same {
                println!("manifest: matches the {} file(s) on disk", actual.entries.len());
            } else {
                println!(
                    "manifest: DRIFT — lists {} entr{}, disk has {} \
                     (advisory only; recovery scans actual files)",
                    stored.entries.len(),
                    if stored.entries.len() == 1 { "y" } else { "ies" },
                    actual.entries.len()
                );
            }
        }
    }
}

/// Lists the store contents with per-file validity.
fn cmd_ls(dir: &Path) -> ExitCode {
    let store = match open_store(dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let manifest = match store.scan_manifest() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("ckpt ls: scanning {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    if manifest.entries.is_empty() {
        println!("{}: empty store", dir.display());
        return ExitCode::SUCCESS;
    }
    let pick = store.latest_valid().ok().map(|(name, _)| name);
    println!("{:<20} {:>6} {:>10}  {:<18} state", "name", "seq", "bytes", "checksum");
    for e in &manifest.entries {
        let state = match store.verify(&e.name) {
            Ok(info) => {
                let mark =
                    if pick.as_deref() == Some(e.name.as_str()) { "  <- recovery" } else { "" };
                format!("valid (next_batch {}){mark}", info.next_batch)
            }
            Err(err) => format!("INVALID — {err}"),
        };
        println!("{:<20} {:>6} {:>10}  {:#018x} {state}", e.name, e.seq, e.bytes, e.checksum);
    }
    report_manifest_drift(&store);
    ExitCode::SUCCESS
}

/// Builds the bench model: four embedding tables, the two largest either
/// dense or TT-factorized (`--tt`), the two smallest hosted on the
/// parameter server — the placement split the trainer tests use.
fn bench_state(
    rows: usize,
    dim: usize,
    tt: bool,
) -> (DlrmModel, Vec<(usize, el_dlrm::embedding_bag::EmbeddingBag)>) {
    let cfg = DlrmConfig {
        num_dense: 13,
        table_cardinalities: vec![rows, rows / 2, rows / 10, rows / 10],
        dim,
        bottom_hidden: vec![64, 32],
        top_hidden: vec![64, 32],
        tt_threshold: if tt { rows / 4 } else { usize::MAX },
        tt_rank: 16,
        lr: 0.05,
        optimizer: OptimizerKind::Adagrad { eps: 1e-8 },
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut model = DlrmModel::new(&cfg, &mut rng);
    let mut host = Vec::new();
    for t in [2usize, 3] {
        let dense = match std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim }) {
            EmbeddingLayer::Dense(bag) => bag,
            _ => unreachable!("tables 2 and 3 are below any TT threshold"),
        };
        host.push((t, dense));
    }
    (model, host)
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Measures checkpoint size and save/verify/restore wall time against a
/// real filesystem store (full atomic protocol including fsyncs).
fn cmd_bench(args: &[String]) -> ExitCode {
    let mut rows = 100_000usize;
    let mut dim = 16usize;
    let mut tt = false;
    let mut keep_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--rows" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => rows = v,
                None => {
                    eprintln!("--rows needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--dim" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => dim = v,
                None => {
                    eprintln!("--dim needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--tt" => tt = true,
            "--dir" => match it.next() {
                Some(v) => keep_dir = Some(v.clone()),
                None => {
                    eprintln!("--dir needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("ckpt bench: unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "bench: tables [{rows}, {}, {}, {}] dim {dim}, Adagrad, largest tables {}",
        rows / 2,
        rows / 10,
        rows / 10,
        if tt { "TT-factorized" } else { "dense" }
    );
    let (model, host) = bench_state(rows, dim, tt);

    let t = Instant::now();
    let ckpt = PipelineTrainer::capture(&model, &host, 0.05, 128);
    let capture_ms = ms(t.elapsed());

    let t = Instant::now();
    let framed = ckpt.to_framed_bytes();
    let encode_ms = ms(t.elapsed());
    let size = framed.len();

    let dir = match &keep_dir {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("elrec-ckpt-bench-{}", std::process::id())),
    };
    let result = (|| -> Result<(), el_dlrm::checkpoint::CkptError> {
        let mut store = CkptStore::open(FsStorage::open(&dir)?, 2)?;
        let t = Instant::now();
        let name = store.save(&ckpt)?;
        let save_ms = ms(t.elapsed());

        let reopened = CkptStore::open(FsStorage::open(&dir)?, 2)?;
        let t = Instant::now();
        let (_, loaded) = reopened.latest_valid()?;
        let load_ms = ms(t.elapsed());

        let t = Instant::now();
        let restored = loaded.model.restore()?;
        let restore_ms = ms(t.elapsed());
        assert_eq!(
            DlrmCheckpoint::capture(&restored).to_bytes(),
            ckpt.model.to_bytes(),
            "bench round trip must be byte-identical"
        );

        println!("checkpoint {name}: {size} bytes ({:.2} MiB)", size as f64 / (1 << 20) as f64);
        println!("  capture          {capture_ms:>9.2} ms  (model + hosted tables -> checkpoint)");
        println!("  encode           {encode_ms:>9.2} ms  (checkpoint -> framed bytes)");
        println!(
            "  save             {save_ms:>9.2} ms  (atomic protocol: write+fsync+rename+fsync dir)"
        );
        println!("  load + verify    {load_ms:>9.2} ms  (scan, checksums, decode)");
        println!("  restore          {restore_ms:>9.2} ms  (checkpoint -> live model)");
        Ok(())
    })();
    if keep_dir.is_some() {
        println!("store kept at {}", dir.display());
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ckpt bench: {e}");
            ExitCode::FAILURE
        }
    }
}
