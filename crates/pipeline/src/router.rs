//! Sharded parameter-tier routing (table-wise + row-range sharding).
//!
//! The single [`HostServer`] of paper Figure 9 owns every hosted table;
//! this module splits that tier into N independent shards the way
//! "Two-dimensional Sparse Parallelism" partitions DLRM tables: each
//! table's row space is cut into fixed-size **row ranges**, and every
//! `(table, range)` cell is placed on a shard by **consistent hashing**
//! over a virtual-node ring, so both table-wise and row-wise partitions
//! fall out of one placement function and adding a shard only moves the
//! ranges that hash to its virtual nodes.
//!
//! The [`ShardRouter`] is the seam the rest of the system sees:
//!
//! * [`ShardRouter::gather`] fans a batch's unique rows out across the
//!   shards and reassembles a [`PrefetchedBatch`] byte-identical to the
//!   single-server gather, stamped with the **minimum** per-shard
//!   `applied` watermark (the global staleness stamp is stitched from
//!   the per-shard stamp domains);
//! * [`ShardRouter::scatter_push`] splits one worker [`GradientPush`]
//!   into one push **per shard** — every shard receives a push for every
//!   batch (possibly with empty per-table gradients), so each shard's
//!   stamp domain advances exactly once per batch and the existing
//!   [`HostServer::apply_checked`] dedup/gap machinery works unchanged
//!   per shard.
//!
//! Why the min-stamp reassembly preserves byte-identity: a worker cache
//! entry always holds the freshest worker-predicted post-update row, and
//! the cache keeps any entry with `pushed_at >= applied_through`. Taking
//! the minimum over shards only *lowers* the stamp, which only makes the
//! cache keep entries longer — and when the minimum watermark passes an
//! entry's `pushed_at`, the shard owning that row has necessarily
//! applied the update, so the served row already equals the cached
//! prediction. Per-shard skew therefore never changes trained bytes.

use crate::server::{ApplyOutcome, GradientPush, HostServer, PrefetchedBatch, ServerError};
use el_data::MiniBatch;
use el_dlrm::embedding_bag::{EmbeddingBag, SparseGrad};
use el_tensor::Matrix;
use std::fmt;

/// Virtual nodes per shard on the consistent-hash ring. More nodes
/// smooth the range distribution; 16 keeps the ring tiny while holding
/// the max/mean shard load under ~2x for small shard counts.
const VNODES_PER_SHARD: u64 = 16;

/// SplitMix64 — the same mixer the simulator uses for seed derivation,
/// copied privately so the placement function has no dependency on the
/// sim crate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Typed failures of the routing layer.
///
/// Placement errors are plain data (no formatting, no allocation) so the
/// hot [`ShardLayout::route`] path stays allocation-free even on the
/// error branch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouterError {
    /// The layout does not place this table.
    UnknownTable(usize),
    /// A row index beyond the table's placed row count.
    RowOutOfRange {
        /// Table the row was addressed in.
        table: usize,
        /// The offending row index.
        row: u32,
        /// Rows the layout placed for that table.
        rows: u32,
    },
    /// The shard slice handed to a router operation does not match the
    /// layout's shard count.
    ShardCountMismatch {
        /// Shards the layout places onto.
        expected: u32,
        /// Shards the caller provided.
        got: u32,
    },
    /// The sharded tier serves `UniqueRows` mode only; pooled-embedding
    /// payloads cannot be row-partitioned.
    PooledUnsupported,
    /// A shard's intake rejected the scattered push.
    Shard(ServerError),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::UnknownTable(t) => write!(f, "layout places no table {t}"),
            RouterError::RowOutOfRange { table, row, rows } => {
                write!(f, "row {row} out of range for table {table} ({rows} rows placed)")
            }
            RouterError::ShardCountMismatch { expected, got } => {
                write!(f, "layout places {expected} shards but {got} were provided")
            }
            RouterError::PooledUnsupported => {
                write!(f, "the sharded tier serves UniqueRows mode only")
            }
            RouterError::Shard(e) => write!(f, "shard intake rejected the push: {e}"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<ServerError> for RouterError {
    fn from(e: ServerError) -> Self {
        RouterError::Shard(e)
    }
}

/// Sharding knobs, environment-overridable for the trainer wiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of host-server shards (1 = the single-server degenerate).
    pub num_shards: u32,
    /// Rows per placement range; each `(table, range)` cell is placed
    /// independently on the ring.
    pub rows_per_range: u32,
    /// Seed of the consistent-hash ring (placements are a pure function
    /// of this seed plus the table list).
    pub placement_seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self { num_shards: 1, rows_per_range: 64, placement_seed: 0 }
    }
}

impl ShardConfig {
    /// Reads `EL_SHARDS` / `EL_SHARD_RANGE_ROWS` overrides on top of the
    /// defaults. Unset or unparsable values keep the default; both knobs
    /// are clamped to at least 1.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("EL_SHARDS") {
            if let Ok(n) = v.trim().parse::<u32>() {
                cfg.num_shards = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("EL_SHARD_RANGE_ROWS") {
            if let Ok(n) = v.trim().parse::<u32>() {
                cfg.rows_per_range = n.max(1);
            }
        }
        cfg
    }
}

/// Placement of one table's row ranges onto shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableOwnership {
    /// Table id in the model.
    pub table_id: usize,
    /// Total rows placed for this table.
    pub rows: u32,
    /// Owning shard of each row range (`range = row / rows_per_range`).
    pub owners: Vec<u32>,
    /// Per range: how many of the table's earlier rows the same shard
    /// owns — the base of the range's rows inside the shard's sub-table,
    /// which stores its owned rows in ascending global order.
    pub local_base: Vec<u32>,
}

/// Where one `(table, row)` lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowRoute {
    /// Owning shard.
    pub shard: u32,
    /// Row index inside that shard's sub-table for the table.
    pub local: u32,
}

/// The full placement: every hosted table's ranges mapped onto
/// `num_shards` shards by consistent hashing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    num_shards: u32,
    rows_per_range: u32,
    placement_seed: u64,
    tables: Vec<TableOwnership>,
}

impl ShardLayout {
    /// Places `tables` (`(table id, rows)`) under `cfg`. The placement
    /// is a pure function of the config and the table list, so every
    /// participant (trainer, shards, serving tier, simulator) derives
    /// the identical layout independently.
    pub fn place(cfg: &ShardConfig, tables: &[(usize, usize)]) -> Self {
        let num_shards = cfg.num_shards.max(1);
        let rows_per_range = cfg.rows_per_range.max(1);
        // the virtual-node ring: (point, shard), sorted by point
        let mut ring: Vec<(u64, u32)> =
            Vec::with_capacity((num_shards as u64 * VNODES_PER_SHARD) as usize);
        for s in 0..num_shards {
            for v in 0..VNODES_PER_SHARD {
                let point = splitmix64(cfg.placement_seed ^ splitmix64((u64::from(s) << 20) | v));
                ring.push((point, s));
            }
        }
        ring.sort_unstable();
        let owner_of = |key: u64| -> u32 {
            let idx = ring.partition_point(|(p, _)| *p < key);
            ring[if idx == ring.len() { 0 } else { idx }].1
        };
        let tables = tables
            .iter()
            .map(|&(table_id, rows)| {
                let rows = rows as u32;
                let num_ranges = (rows as usize).div_ceil(rows_per_range as usize);
                let mut owners = Vec::with_capacity(num_ranges);
                let mut local_base = Vec::with_capacity(num_ranges);
                // running count of this table's rows owned by each shard
                let mut owned_so_far = vec![0u32; num_shards as usize];
                for range in 0..num_ranges {
                    let key = splitmix64(
                        cfg.placement_seed
                            ^ splitmix64(
                                (table_id as u64).wrapping_mul(0x517C_C1B7_2722_0A95)
                                    ^ ((range as u64) << 1 | 1),
                            ),
                    );
                    let shard = owner_of(key);
                    owners.push(shard);
                    local_base.push(owned_so_far[shard as usize]);
                    let start = range as u32 * rows_per_range;
                    let len = rows_per_range.min(rows - start);
                    owned_so_far[shard as usize] += len;
                }
                TableOwnership { table_id, rows, owners, local_base }
            })
            .collect();
        Self { num_shards, rows_per_range, placement_seed: cfg.placement_seed, tables }
    }

    /// Places the tables a [`HostServer`] hosts (id + row count taken
    /// from the bags themselves).
    pub fn place_for(cfg: &ShardConfig, tables: &[(usize, EmbeddingBag)]) -> Self {
        let sizes: Vec<(usize, usize)> =
            tables.iter().map(|(t, bag)| (*t, bag.num_rows())).collect();
        Self::place(cfg, &sizes)
    }

    /// Number of shards this layout places onto.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Rows per placement range.
    pub fn rows_per_range(&self) -> u32 {
        self.rows_per_range
    }

    /// Seed of the placement ring.
    pub fn placement_seed(&self) -> u64 {
        self.placement_seed
    }

    /// Per-table ownership records, in placement order.
    pub fn tables(&self) -> &[TableOwnership] {
        &self.tables
    }

    /// Maps `(table_id, row)` to its owning shard and local row index.
    ///
    /// The hot path of every scatter and of the serving read tier: a
    /// linear scan over the (few) hosted tables plus two array reads —
    /// no allocation on either branch.
    // CONTRACT: zero-alloc
    pub fn route(&self, table_id: usize, row: u32) -> Result<RowRoute, RouterError> {
        let mut ownership = None;
        for t in &self.tables {
            if t.table_id == table_id {
                ownership = Some(t);
                break;
            }
        }
        let Some(t) = ownership else {
            return Err(RouterError::UnknownTable(table_id));
        };
        if row >= t.rows {
            return Err(RouterError::RowOutOfRange { table: table_id, row, rows: t.rows });
        }
        let range = (row / self.rows_per_range) as usize;
        let shard = t.owners[range];
        let local = t.local_base[range] + (row % self.rows_per_range);
        Ok(RowRoute { shard, local })
    }

    /// Routes a sorted slice of rows of one table into `out`'s per-shard
    /// buffers: `locals` receives the shard-local row indices, `slots`
    /// the positions in `rows` (so a gather can be reassembled and a
    /// push's gradient values can be copied out).
    ///
    /// Per-shard outputs stay sorted when `rows` is sorted: ranges are
    /// monotone in the row index and `local_base` grows with the range.
    /// The caller recycles `out` across batches ([`ShardScatter::reset`]
    /// keeps the capacity), so the steady state allocates nothing.
    // CONTRACT: zero-alloc
    pub fn scatter_into(
        &self,
        table_id: usize,
        rows: &[u32],
        out: &mut ShardScatter,
    ) -> Result<(), RouterError> {
        for (slot, &row) in rows.iter().enumerate() {
            let route = self.route(table_id, row)?;
            let shard = route.shard as usize;
            out.locals[shard].push(route.local);
            out.slots[shard].push(slot as u32);
        }
        Ok(())
    }

    /// The global rows of `table_id` owned by `shard`, ascending — the
    /// order the shard's sub-table stores them in.
    pub fn owned_rows(&self, table_id: usize, shard: u32) -> Result<Vec<u32>, RouterError> {
        let t = self
            .tables
            .iter()
            .find(|t| t.table_id == table_id)
            .ok_or(RouterError::UnknownTable(table_id))?;
        let mut owned = Vec::new();
        for (range, &owner) in t.owners.iter().enumerate() {
            if owner == shard {
                let start = range as u32 * self.rows_per_range;
                let end = (start + self.rows_per_range).min(t.rows);
                owned.extend(start..end);
            }
        }
        Ok(owned)
    }
}

/// Recycled per-shard scatter buffers (see [`ShardLayout::scatter_into`]).
#[derive(Clone, Debug, Default)]
pub struct ShardScatter {
    /// Per shard: shard-local row indices.
    pub locals: Vec<Vec<u32>>,
    /// Per shard: positions in the scattered slice.
    pub slots: Vec<Vec<u32>>,
}

impl ShardScatter {
    /// Empty buffers; size them with [`ShardScatter::reset`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the buffers and ensures one pair per shard, keeping any
    /// existing capacity.
    pub fn reset(&mut self, num_shards: usize) {
        self.locals.resize_with(num_shards, Vec::new);
        self.slots.resize_with(num_shards, Vec::new);
        for v in &mut self.locals {
            v.clear();
        }
        for v in &mut self.slots {
            v.clear();
        }
    }
}

/// Splits a single server's hosted tables into per-shard sub-tables.
///
/// Every shard receives **every** table (possibly with zero rows — the
/// dimension is preserved), so shard servers are uniform: any push can
/// name any table and [`HostServer::apply_checked`]'s table validation
/// still holds per shard.
pub fn split_tables(
    tables: &[(usize, EmbeddingBag)],
    layout: &ShardLayout,
) -> Result<Vec<Vec<(usize, EmbeddingBag)>>, RouterError> {
    let mut shards = Vec::with_capacity(layout.num_shards() as usize);
    for s in 0..layout.num_shards() {
        let mut sub = Vec::with_capacity(tables.len());
        for (t, bag) in tables {
            let owned = layout.owned_rows(*t, s)?;
            sub.push((*t, EmbeddingBag { weight: bag.gather_rows(&owned) }));
        }
        shards.push(sub);
    }
    Ok(shards)
}

/// Reassembles per-shard sub-tables into the global hosted tables —
/// the inverse of [`split_tables`] (byte-exact: rows are copied, never
/// recomputed).
pub fn merge_tables(
    shards: &[Vec<(usize, EmbeddingBag)>],
    layout: &ShardLayout,
) -> Result<Vec<(usize, EmbeddingBag)>, RouterError> {
    if shards.len() != layout.num_shards() as usize {
        return Err(RouterError::ShardCountMismatch {
            expected: layout.num_shards(),
            got: shards.len() as u32,
        });
    }
    let mut merged = Vec::with_capacity(layout.tables().len());
    for t in layout.tables() {
        let dim = shards
            .iter()
            .find_map(|sub| sub.iter().find(|(id, _)| *id == t.table_id).map(|(_, bag)| bag.dim()))
            .ok_or(RouterError::UnknownTable(t.table_id))?;
        let mut bag = EmbeddingBag { weight: Matrix::zeros(t.rows as usize, dim) };
        for (s, sub) in shards.iter().enumerate() {
            let owned = layout.owned_rows(t.table_id, s as u32)?;
            let shard_bag = &sub
                .iter()
                .find(|(id, _)| *id == t.table_id)
                .ok_or(RouterError::UnknownTable(t.table_id))?
                .1;
            if shard_bag.num_rows() != owned.len() {
                return Err(RouterError::RowOutOfRange {
                    table: t.table_id,
                    row: shard_bag.num_rows() as u32,
                    rows: owned.len() as u32,
                });
            }
            bag.scatter_rows(&owned, &shard_bag.weight);
        }
        merged.push((t.table_id, bag));
    }
    Ok(merged)
}

/// The scatter/gather front of the sharded parameter tier.
pub struct ShardRouter {
    layout: ShardLayout,
    scratch: ShardScatter,
}

impl ShardRouter {
    /// A router over the given placement.
    pub fn new(layout: ShardLayout) -> Self {
        Self { layout, scratch: ShardScatter::new() }
    }

    /// The placement this router routes with.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Gathers batch `seq` by fanning out across the shards and
    /// reassembling the global [`PrefetchedBatch`]: per table, the
    /// globally unique sorted indices are scattered to their owning
    /// shards, each shard serves its local rows, and the slot lists put
    /// every row back in its global position. The staleness stamp is the
    /// **minimum** per-shard `applied` watermark (see the module docs
    /// for why this preserves byte-identity under shard skew).
    pub fn gather(
        &mut self,
        shards: &mut [HostServer],
        batch: MiniBatch,
        seq: u64,
    ) -> Result<PrefetchedBatch, RouterError> {
        if shards.len() != self.layout.num_shards() as usize {
            return Err(RouterError::ShardCountMismatch {
                expected: self.layout.num_shards(),
                got: shards.len() as u32,
            });
        }
        if shards.iter().any(|s| s.mode != crate::server::ServerMode::UniqueRows) {
            return Err(RouterError::PooledUnsupported);
        }
        let applied_through = shards.iter().map(|s| s.applied).min().unwrap_or(0);
        let mut tables = Vec::with_capacity(self.layout.tables().len());
        for t in 0..self.layout.tables().len() {
            let table_id = self.layout.tables()[t].table_id;
            let field = &batch.fields[table_id];
            let mut unique: Vec<u32> = field.indices.clone();
            unique.sort_unstable();
            unique.dedup();
            self.scratch.reset(shards.len());
            self.layout.scatter_into(table_id, &unique, &mut self.scratch)?;
            let dim = shards[0]
                .tables
                .iter()
                .find(|(id, _)| *id == table_id)
                .map(|(_, bag)| bag.dim())
                .ok_or(RouterError::UnknownTable(table_id))?;
            let mut rows = Matrix::zeros(unique.len(), dim);
            for (s, shard) in shards.iter_mut().enumerate() {
                let locals = &self.scratch.locals[s];
                if locals.is_empty() {
                    continue;
                }
                let bag = &shard
                    .tables
                    .iter()
                    .find(|(id, _)| *id == table_id)
                    .ok_or(RouterError::UnknownTable(table_id))?
                    .1;
                let served = bag.gather_rows(locals);
                for (j, &slot) in self.scratch.slots[s].iter().enumerate() {
                    rows.row_mut(slot as usize).copy_from_slice(served.row(j));
                }
                // the H2D bytes this shard's share of the transfer costs
                shard.meter.h2d(locals.len() * (4 + dim * 4));
            }
            tables.push((table_id, unique, rows));
        }
        Ok(PrefetchedBatch { batch_seq: seq, applied_through, batch, tables, pooled: Vec::new() })
    }

    /// Splits one worker push into one push per shard. Every shard's
    /// push carries **every** table (with an empty gradient when the
    /// shard owns none of the touched rows), so every shard's stamp
    /// domain advances exactly once per batch and per-shard
    /// [`HostServer::apply_checked`] sees a gap-free sequence.
    pub fn scatter_push(&mut self, push: &GradientPush) -> Result<Vec<GradientPush>, RouterError> {
        if !push.pooled.is_empty() {
            return Err(RouterError::PooledUnsupported);
        }
        let num_shards = self.layout.num_shards() as usize;
        let mut out: Vec<GradientPush> = (0..num_shards)
            .map(|_| GradientPush {
                batch_seq: push.batch_seq,
                tables: Vec::with_capacity(push.tables.len()),
                pooled: Vec::new(),
            })
            .collect();
        for (table_id, grad) in &push.tables {
            self.scratch.reset(num_shards);
            self.layout.scatter_into(*table_id, &grad.indices, &mut self.scratch)?;
            for (s, shard_push) in out.iter_mut().enumerate() {
                let locals = &self.scratch.locals[s];
                let mut values = Vec::with_capacity(locals.len() * grad.dim);
                for &slot in &self.scratch.slots[s] {
                    let slot = slot as usize;
                    values.extend_from_slice(&grad.values[slot * grad.dim..(slot + 1) * grad.dim]);
                }
                shard_push.tables.push((
                    *table_id,
                    SparseGrad { indices: locals.clone(), values, dim: grad.dim },
                ));
            }
        }
        Ok(out)
    }

    /// Scatters `push` and applies it to every shard in lockstep. All
    /// shards share one sequence domain per batch, so the outcome is
    /// uniform: the first shard's verdict (Applied/Duplicate) is
    /// returned, and any shard error aborts with [`RouterError::Shard`].
    pub fn apply_scattered(
        &mut self,
        shards: &mut [HostServer],
        push: &GradientPush,
    ) -> Result<ApplyOutcome, RouterError> {
        if shards.len() != self.layout.num_shards() as usize {
            return Err(RouterError::ShardCountMismatch {
                expected: self.layout.num_shards(),
                got: shards.len() as u32,
            });
        }
        let scattered = self.scatter_push(push)?;
        let mut outcome = ApplyOutcome::Applied;
        for (shard, shard_push) in shards.iter_mut().zip(&scattered) {
            outcome = shard.apply_checked(shard_push)?;
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_data::{DatasetSpec, SyntheticDataset};
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn bags(rows: &[usize], dim: usize, seed: u64) -> Vec<(usize, EmbeddingBag)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        rows.iter()
            .enumerate()
            .map(|(t, &r)| (t, EmbeddingBag::new(r, dim, 0.2, &mut rng)))
            .collect()
    }

    #[test]
    fn route_places_every_row_exactly_once() {
        let cfg = ShardConfig { num_shards: 3, rows_per_range: 7, placement_seed: 42 };
        let layout = ShardLayout::place(&cfg, &[(0, 50), (1, 23)]);
        for (t, rows) in [(0usize, 50u32), (1, 23)] {
            let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); 3];
            for row in 0..rows {
                let r = layout.route(t, row).unwrap();
                per_shard[r.shard as usize].push(r.local);
            }
            // locals are a bijection onto 0..count per shard
            for (s, locals) in per_shard.iter().enumerate() {
                let mut sorted = locals.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..locals.len() as u32).collect::<Vec<_>>(), "shard {s}");
                assert_eq!(locals.len(), layout.owned_rows(t, s as u32).unwrap().len());
            }
            assert_eq!(per_shard.iter().map(Vec::len).sum::<usize>(), rows as usize);
        }
    }

    #[test]
    fn route_rejects_unknown_and_out_of_range() {
        let cfg = ShardConfig { num_shards: 2, rows_per_range: 8, placement_seed: 1 };
        let layout = ShardLayout::place(&cfg, &[(0, 10)]);
        assert_eq!(layout.route(3, 0), Err(RouterError::UnknownTable(3)));
        assert_eq!(
            layout.route(0, 10),
            Err(RouterError::RowOutOfRange { table: 0, row: 10, rows: 10 })
        );
    }

    #[test]
    fn split_then_merge_is_byte_identical() {
        let tables = bags(&[50, 23, 64], 8, 5);
        let cfg = ShardConfig { num_shards: 4, rows_per_range: 9, placement_seed: 7 };
        let layout = ShardLayout::place_for(&cfg, &tables);
        let shards = split_tables(&tables, &layout).unwrap();
        assert_eq!(shards.len(), 4);
        let merged = merge_tables(&shards, &layout).unwrap();
        assert_eq!(merged.len(), tables.len());
        for ((ta, a), (tb, b)) in tables.iter().zip(&merged) {
            assert_eq!(ta, tb);
            assert_eq!(a.weight.as_slice(), b.weight.as_slice());
        }
    }

    #[test]
    fn sharded_gather_matches_single_server() {
        let tables = bags(&[50, 50], 8, 1);
        let ds = SyntheticDataset::new(DatasetSpec::toy(2, 50, 10_000), 3);
        let cfg = ShardConfig { num_shards: 3, rows_per_range: 6, placement_seed: 9 };
        let layout = ShardLayout::place_for(&cfg, &tables);
        let mut single = HostServer::new(tables.clone(), 0.1);
        let mut shards: Vec<HostServer> = split_tables(&tables, &layout)
            .unwrap()
            .into_iter()
            .map(|sub| HostServer::new(sub, 0.1))
            .collect();
        let mut router = ShardRouter::new(layout);
        let batch = ds.batch(0, 16);
        let want = single.gather(batch.clone(), 0);
        let got = router.gather(&mut shards, batch, 0).unwrap();
        assert_eq!(got.batch_seq, want.batch_seq);
        assert_eq!(got.applied_through, want.applied_through);
        assert_eq!(got.tables.len(), want.tables.len());
        for ((ta, ua, ra), (tb, ub, rb)) in got.tables.iter().zip(&want.tables) {
            assert_eq!(ta, tb);
            assert_eq!(ua, ub);
            assert_eq!(ra.as_slice(), rb.as_slice());
        }
    }

    #[test]
    fn scattered_apply_matches_single_server_apply() {
        let tables = bags(&[40, 40], 4, 2);
        let ds = SyntheticDataset::new(DatasetSpec::toy(2, 40, 10_000), 3);
        let cfg = ShardConfig { num_shards: 3, rows_per_range: 5, placement_seed: 3 };
        let layout = ShardLayout::place_for(&cfg, &tables);
        let mut single = HostServer::new(tables.clone(), 0.1);
        let mut shards: Vec<HostServer> = split_tables(&tables, &layout)
            .unwrap()
            .into_iter()
            .map(|sub| HostServer::new(sub, 0.1))
            .collect();
        let mut router = ShardRouter::new(layout.clone());
        for k in 0..4u64 {
            let batch = ds.batch(k, 8);
            let pf = single.gather(batch.clone(), k);
            let _ = router.gather(&mut shards, batch, k).unwrap();
            // unit gradient on every unique row
            let push = GradientPush {
                batch_seq: k,
                tables: pf
                    .tables
                    .iter()
                    .map(|(t, unique, rows)| {
                        (
                            *t,
                            SparseGrad {
                                indices: unique.clone(),
                                values: vec![1.0; rows.len()],
                                dim: rows.cols(),
                            },
                        )
                    })
                    .collect(),
                pooled: vec![],
            };
            single.apply(&push);
            assert_eq!(router.apply_scattered(&mut shards, &push), Ok(ApplyOutcome::Applied));
        }
        let merged = merge_tables(
            &shards.iter().map(|s| s.tables.clone()).collect::<Vec<_>>(),
            router.layout(),
        )
        .unwrap();
        for ((_, a), (_, b)) in single.tables.iter().zip(&merged) {
            assert_eq!(a.weight.as_slice(), b.weight.as_slice());
        }
        // every shard advanced once per batch
        for s in &shards {
            assert_eq!(s.applied, 4);
        }
    }

    #[test]
    fn scatter_push_keeps_duplicate_and_gap_semantics_per_shard() {
        let tables = bags(&[30], 4, 8);
        let cfg = ShardConfig { num_shards: 2, rows_per_range: 4, placement_seed: 11 };
        let layout = ShardLayout::place_for(&cfg, &tables);
        let mut shards: Vec<HostServer> = split_tables(&tables, &layout)
            .unwrap()
            .into_iter()
            .map(|sub| HostServer::new(sub, 0.1))
            .collect();
        let mut router = ShardRouter::new(layout);
        let push = GradientPush {
            batch_seq: 0,
            tables: vec![(0, SparseGrad { indices: vec![3, 17], values: vec![1.0; 8], dim: 4 })],
            pooled: vec![],
        };
        assert_eq!(router.apply_scattered(&mut shards, &push), Ok(ApplyOutcome::Applied));
        assert_eq!(router.apply_scattered(&mut shards, &push), Ok(ApplyOutcome::Duplicate));
        let future = GradientPush { batch_seq: 5, tables: vec![], pooled: vec![] };
        assert_eq!(
            router.apply_scattered(&mut shards, &future),
            Err(RouterError::Shard(ServerError::GradientGap { got: 5, expected: 1 }))
        );
    }

    #[test]
    fn pooled_pushes_are_rejected() {
        let tables = bags(&[10], 4, 1);
        let layout = ShardLayout::place_for(&ShardConfig::default(), &tables);
        let mut router = ShardRouter::new(layout);
        let push =
            GradientPush { batch_seq: 0, tables: vec![], pooled: vec![(0, Matrix::zeros(2, 4))] };
        assert!(matches!(router.scatter_push(&push), Err(RouterError::PooledUnsupported)));
    }

    #[test]
    fn from_env_defaults_without_vars() {
        // the test environment does not set the knobs; defaults apply
        let cfg = ShardConfig::from_env();
        assert!(cfg.num_shards >= 1);
        assert!(cfg.rows_per_range >= 1);
    }

    proptest! {
        /// Satellite: every row maps to exactly one shard (no orphans, no
        /// double ownership), and per-shard locals are a bijection onto
        /// the shard's sub-table rows — across arbitrary placements and
        /// across a resharding event (two independent layouts).
        #[test]
        fn ownership_partitions_rows(
            num_shards in 1u32..6,
            rows_per_range in 1u32..40,
            seed in 0u64..u64::MAX,
            rows0 in 1usize..120,
            rows1 in 1usize..120,
        ) {
            for placement_seed in [seed, splitmix64(seed)] {
                let cfg = ShardConfig { num_shards, rows_per_range, placement_seed };
                let layout = ShardLayout::place(&cfg, &[(0, rows0), (7, rows1)]);
                for (t, rows) in [(0usize, rows0), (7, rows1)] {
                    let mut seen = vec![0u32; rows];
                    let mut per_shard: Vec<Vec<u32>> =
                        vec![Vec::new(); num_shards as usize];
                    for row in 0..rows as u32 {
                        let r = layout.route(t, row).unwrap();
                        prop_assert!(r.shard < num_shards);
                        seen[row as usize] += 1;
                        per_shard[r.shard as usize].push(r.local);
                    }
                    prop_assert!(seen.iter().all(|&c| c == 1));
                    for (s, locals) in per_shard.iter().enumerate() {
                        let owned = layout.owned_rows(t, s as u32).unwrap();
                        prop_assert_eq!(locals.len(), owned.len());
                        let mut sorted = locals.clone();
                        sorted.sort_unstable();
                        sorted.dedup();
                        prop_assert_eq!(
                            sorted.len(), locals.len(),
                            "shard {} locals must be unique", s
                        );
                        prop_assert_eq!(
                            sorted.last().copied().map(|m| m as usize + 1).unwrap_or(0),
                            locals.len(),
                            "locals must be dense 0..count"
                        );
                    }
                }
            }
        }

        /// Satellite: scatter→gather round-trips every mini-batch
        /// byte-identically to the single-server gather, for arbitrary
        /// shard counts and placements.
        #[test]
        fn sharded_gather_round_trips_byte_identically(
            num_shards in 1u32..6,
            rows_per_range in 1u32..40,
            placement_seed in 0u64..u64::MAX,
            batch_seed in 0u64..64,
        ) {
            let tables = bags(&[60, 37], 8, 13);
            let cfg = ShardConfig { num_shards, rows_per_range, placement_seed };
            let layout = ShardLayout::place_for(&cfg, &tables);
            let mut single = HostServer::new(tables.clone(), 0.1);
            let mut shards: Vec<HostServer> = split_tables(&tables, &layout)
                .unwrap()
                .into_iter()
                .map(|sub| HostServer::new(sub, 0.1))
                .collect();
            let mut router = ShardRouter::new(layout);
            let ds = SyntheticDataset::new(DatasetSpec::toy(2, 37, 10_000), 3);
            let batch = ds.batch(batch_seed, 16);
            let want = single.gather(batch.clone(), batch_seed);
            let got = router.gather(&mut shards, batch, batch_seed).unwrap();
            prop_assert_eq!(got.applied_through, want.applied_through);
            prop_assert_eq!(got.tables.len(), want.tables.len());
            for ((ta, ua, ra), (tb, ub, rb)) in got.tables.iter().zip(&want.tables) {
                prop_assert_eq!(ta, tb);
                prop_assert_eq!(ua, ub);
                prop_assert_eq!(ra.as_slice(), rb.as_slice());
            }
        }

        /// Split→merge is the identity across resharding events: splitting
        /// under one layout, merging, re-splitting under a different
        /// layout and merging again reproduces the original bytes.
        #[test]
        fn resharding_round_trips_tables(
            from_shards in 1u32..5,
            to_shards in 1u32..5,
            rows_per_range in 1u32..30,
            seed in 0u64..u64::MAX,
        ) {
            let tables = bags(&[45, 31], 4, 17);
            let from_cfg = ShardConfig {
                num_shards: from_shards, rows_per_range, placement_seed: seed,
            };
            let to_cfg = ShardConfig {
                num_shards: to_shards,
                rows_per_range: rows_per_range.wrapping_add(3).max(1),
                placement_seed: splitmix64(seed),
            };
            let from_layout = ShardLayout::place_for(&from_cfg, &tables);
            let to_layout = ShardLayout::place_for(&to_cfg, &tables);
            let merged_a =
                merge_tables(&split_tables(&tables, &from_layout).unwrap(), &from_layout)
                    .unwrap();
            let merged_b =
                merge_tables(&split_tables(&merged_a, &to_layout).unwrap(), &to_layout).unwrap();
            for ((ta, a), (tb, b)) in tables.iter().zip(&merged_b) {
                prop_assert_eq!(ta, tb);
                prop_assert_eq!(a.weight.as_slice(), b.weight.as_slice());
            }
        }
    }
}
