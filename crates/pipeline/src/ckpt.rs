//! Crash-consistent checkpoint store for pipeline training (DESIGN.md §11).
//!
//! [`el_dlrm::checkpoint::DlrmCheckpoint`] snapshots the *worker* model.
//! This module captures the rest of the training state — the
//! [`HostServer`]'s hosted tables and applied-gradient stamp, and the
//! per-worker batch cursors — and makes the whole thing durable:
//!
//! * **Framed format** — sections (`meta`, `model`, `server`, `workers`)
//!   each carry an FNV-1a checksum, and the file ends in a whole-file
//!   checksum trailer, so *any* single-byte flip or truncation is detected
//!   and surfaces as a typed [`CkptError::Corrupt`] — never a panic, never
//!   a silently wrong model.
//! * **Atomic write protocol** — temp file → fsync file → rename → fsync
//!   directory, expressed over a pluggable [`Storage`] trait at
//!   protocol-step granularity so the simulator can crash between every
//!   step and tear the temp write itself.
//! * **Store semantics** — [`CkptStore`] names checkpoints by a
//!   monotonically increasing sequence number, retains the newest K,
//!   maintains an advisory manifest, and recovers by *scanning* for the
//!   newest checkpoint that passes verification ([`CkptStore::latest_valid`])
//!   rather than trusting any single file.
//!
//! What is *not* in a checkpoint: kernel workspaces, plan prefetchers,
//! caches, queues — all rebuilt on resume — and the [`crate::server::ServerMode`],
//! which is run configuration the caller re-supplies.

use crate::server::HostServer;
use el_dlrm::checkpoint::DlrmCheckpoint;
use el_dlrm::embedding_bag::EmbeddingBag;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

pub use el_dlrm::checkpoint::{atomic_write, CkptError};

// ---------------------------------------------------------------------------
// FNV-1a checksums
// ---------------------------------------------------------------------------

/// Streaming FNV-1a (64-bit). Every byte fed through `update` permutes the
/// state bijectively (xor, then multiply by an odd prime), so two inputs
/// differing in any single byte can never collide — exactly the property
/// the corruption matrix needs from a non-cryptographic checksum.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Final digest.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Framed container format
// ---------------------------------------------------------------------------

/// Magic bytes opening every framed checkpoint file.
pub const FRAME_MAGIC: [u8; 4] = *b"ELCK";
/// Container layout version (independent of the payload formats inside).
pub const FRAME_VERSION: u32 = 1;

/// A named payload inside the framed container.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name (`meta`, `model`, ...).
    pub name: String,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Encodes sections into the framed byte layout:
///
/// ```text
/// "ELCK" | version u32 | nsections u32
/// per section: name_len u32 | name | payload_len u64 | payload
///            | fnv1a(name ++ payload) u64
/// trailer: fnv1a(everything above) u64          (all integers little-endian)
/// ```
pub fn encode_frames(sections: &[Section]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for s in sections {
        out.extend_from_slice(&(s.name.len() as u32).to_le_bytes());
        out.extend_from_slice(s.name.as_bytes());
        out.extend_from_slice(&(s.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&s.payload);
        let mut h = Fnv1a::new();
        h.update(s.name.as_bytes());
        h.update(&s.payload);
        out.extend_from_slice(&h.finish().to_le_bytes());
    }
    out.extend_from_slice(&fnv1a(&out).to_le_bytes());
    out
}

/// Bounds-checked little-endian reader; every overrun is a typed
/// corruption error, never a slice panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CkptError::Corrupt(format!("{what} runs past end of file")))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self, what: &str) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
}

/// Decodes a framed container, verifying the whole-file trailer *first*
/// (so arbitrary corruption is caught before any structural parsing) and
/// then each section checksum.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<Section>, CkptError> {
    if bytes.len() < FRAME_MAGIC.len() + 4 + 4 + 8 {
        return Err(CkptError::Corrupt(format!("file too short ({} bytes)", bytes.len())));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let want = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let got = fnv1a(body);
    if got != want {
        return Err(CkptError::Corrupt(format!(
            "whole-file checksum mismatch (stored {want:#018x}, computed {got:#018x})"
        )));
    }
    let mut cur = Cursor { bytes: body, pos: 0 };
    if cur.take(4, "magic")? != FRAME_MAGIC {
        return Err(CkptError::Corrupt("bad magic (not a checkpoint file)".into()));
    }
    let version = cur.u32("frame version")?;
    if version == 0 || version > FRAME_VERSION {
        return Err(CkptError::Version { got: version, supported: FRAME_VERSION });
    }
    let nsections = cur.u32("section count")?;
    if nsections > 1 << 16 {
        return Err(CkptError::Corrupt(format!("implausible section count {nsections}")));
    }
    let mut sections = Vec::with_capacity(nsections as usize);
    for i in 0..nsections {
        let name_len = cur.u32("section name length")?;
        if name_len > 1 << 12 {
            return Err(CkptError::Corrupt(format!("implausible name length {name_len}")));
        }
        let name = std::str::from_utf8(cur.take(name_len as usize, "section name")?)
            .map_err(|_| CkptError::Corrupt(format!("section {i} name is not UTF-8")))?
            .to_owned();
        let payload_len = cur.u64("payload length")?;
        let payload = cur.take(payload_len as usize, "section payload")?.to_vec();
        let want = cur.u64("section checksum")?;
        let mut h = Fnv1a::new();
        h.update(name.as_bytes());
        h.update(&payload);
        if h.finish() != want {
            return Err(CkptError::Corrupt(format!("section `{name}` checksum mismatch")));
        }
        sections.push(Section { name, payload });
    }
    if cur.pos != body.len() {
        return Err(CkptError::Corrupt(format!(
            "{} trailing bytes after last section",
            body.len() - cur.pos
        )));
    }
    Ok(sections)
}

// ---------------------------------------------------------------------------
// Training-state payloads
// ---------------------------------------------------------------------------

/// Payload format version of [`TrainingCheckpoint`] (the `meta` section).
pub const TRAINING_CKPT_FORMAT: u32 = 1;

/// The `meta` section.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct CkptMeta {
    format: u32,
    next_batch: u64,
}

/// One hosted table with its id in the worker model. (A named struct
/// rather than a `(usize, EmbeddingBag)` tuple because the vendored serde
/// derives only cover structs and enums.)
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostedTableCheckpoint {
    /// Table index in the worker model.
    pub id: usize,
    /// The hosted table.
    pub table: EmbeddingBag,
}

/// Snapshot of a [`HostServer`]: hosted tables, learning rate, and the
/// applied-gradient stamp (the push-sequence watermark workers staleness-
/// synchronize against).
///
/// The parameter tier may be sharded (`crate::router`): `shard` and
/// `num_shards` record which slice of which layout this snapshot holds,
/// so a restore against a *different* layout is a typed error instead of
/// silently merging rows into the wrong ranges. The single-server tier
/// is the `shard 0 of 1` degenerate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServerCheckpoint {
    /// Hosted tables with their model table ids.
    pub tables: Vec<HostedTableCheckpoint>,
    /// Learning rate applied to pushed gradients.
    pub lr: f32,
    /// Gradient batches applied so far.
    pub applied: u64,
    /// Which shard of the layout this snapshot captures (0 for the
    /// single-server tier).
    pub shard: u32,
    /// Shards in the layout this snapshot was taken under (1 for the
    /// single-server tier).
    pub num_shards: u32,
}

impl ServerCheckpoint {
    /// Captures a (single-tier) server's durable state.
    pub fn capture(server: &HostServer) -> Self {
        Self::capture_shard(server, 0, 1)
    }

    /// Captures one shard of an `num_shards`-way sharded tier.
    pub fn capture_shard(server: &HostServer, shard: u32, num_shards: u32) -> Self {
        Self {
            tables: server
                .tables
                .iter()
                .map(|(id, table)| HostedTableCheckpoint { id: *id, table: table.clone() })
                .collect(),
            lr: server.lr,
            applied: server.applied,
            shard,
            num_shards,
        }
    }

    /// Rebuilds a server (fresh meters/timers; `applied` restored so
    /// staleness stamps continue from where the run stopped — callers that
    /// renumber batch sequences from zero, like the pipeline trainer's
    /// per-segment schedule, reset it themselves).
    pub fn restore(self) -> HostServer {
        let tables = self.tables.into_iter().map(|h| (h.id, h.table)).collect();
        let mut server = HostServer::new(tables, self.lr);
        server.applied = self.applied;
        server
    }

    /// Rebuilds one shard of a sharded tier, rejecting a snapshot taken
    /// under a different layout slot with a typed
    /// [`CkptError::StateMismatch`] — restoring shard 2-of-4 into slot
    /// 1-of-3 would scatter rows into the wrong ranges, so the layout
    /// identity is validated before any table is touched.
    pub fn restore_shard(
        self,
        expected_shard: u32,
        expected_num_shards: u32,
    ) -> Result<HostServer, CkptError> {
        if self.shard != expected_shard || self.num_shards != expected_num_shards {
            return Err(CkptError::StateMismatch(format!(
                "checkpoint holds shard {} of {} but slot {} of {} was requested",
                self.shard, self.num_shards, expected_shard, expected_num_shards
            )));
        }
        Ok(self.restore())
    }
}

/// Per-worker loader cursor: the next dataset batch this worker would
/// train. Staleness bookkeeping (cache watermarks) is rebuilt from the
/// server's `applied` stamp on resume, so the cursor is the only state a
/// worker contributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerCursor {
    /// Worker index.
    pub worker: usize,
    /// Next dataset batch index this worker trains.
    pub next_batch: u64,
}

/// Everything needed to continue a training run byte-identically:
/// worker model (with optimizer accumulators), server state, and the
/// loader cursor(s).
pub struct TrainingCheckpoint {
    /// Worker model snapshot (format v2: includes Adagrad accumulators).
    pub model: DlrmCheckpoint,
    /// Host parameter-server state; `None` when no tables are hosted.
    pub server: Option<ServerCheckpoint>,
    /// Next dataset batch index the (single-trainer) run would train.
    pub next_batch: u64,
    /// Per-worker cursors for multi-worker runs (empty for the single
    /// pipeline trainer, which uses `next_batch`).
    pub workers: Vec<WorkerCursor>,
}

impl TrainingCheckpoint {
    /// Serializes into the framed container.
    pub fn to_framed_bytes(&self) -> Vec<u8> {
        fn json<T: serde::Serialize>(v: &T) -> Vec<u8> {
            serde_json::to_vec(v).expect("serializing to a Vec cannot fail")
        }
        let meta = CkptMeta { format: TRAINING_CKPT_FORMAT, next_batch: self.next_batch };
        let sections = vec![
            Section { name: "meta".into(), payload: json(&meta) },
            Section { name: "model".into(), payload: self.model.to_bytes() },
            Section { name: "server".into(), payload: json(&self.server) },
            Section { name: "workers".into(), payload: json(&self.workers) },
        ];
        encode_frames(&sections)
    }

    /// Decodes and fully verifies a framed container.
    pub fn from_framed_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let sections = decode_frames(bytes)?;
        let find = |name: &str| -> Result<&[u8], CkptError> {
            sections
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.payload.as_slice())
                .ok_or_else(|| CkptError::Corrupt(format!("missing `{name}` section")))
        };
        let meta: CkptMeta = parse_json(find("meta")?, "meta")?;
        if meta.format == 0 || meta.format > TRAINING_CKPT_FORMAT {
            return Err(CkptError::Version { got: meta.format, supported: TRAINING_CKPT_FORMAT });
        }
        Ok(Self {
            model: DlrmCheckpoint::from_bytes(find("model")?)?,
            server: parse_json(find("server")?, "server")?,
            next_batch: meta.next_batch,
            workers: parse_json(find("workers")?, "workers")?,
        })
    }
}

/// JSON-parses a section payload with a typed corruption error.
fn parse_json<T: serde::Deserialize>(bytes: &[u8], what: &str) -> Result<T, CkptError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| CkptError::Corrupt(format!("`{what}` section not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| CkptError::Corrupt(format!("`{what}` section: {e}")))
}

// ---------------------------------------------------------------------------
// Storage: the atomic-protocol surface
// ---------------------------------------------------------------------------

/// Flat-namespace storage at atomic-protocol-step granularity. Durability
/// is explicit: `write_file` alone promises nothing across a crash;
/// `sync_file` makes a file's contents durable; `rename`/`remove_file`
/// are namespace edits that become durable at the next `sync_dir`.
///
/// The production implementation is [`FsStorage`]; [`MemStorage`] models
/// the same semantics deterministically in memory so the simulator can
/// crash between any two steps and inspect what actually survived.
pub trait Storage: Send + Sync {
    /// Creates or replaces `name` with `bytes` (volatile until synced).
    fn write_file(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError>;
    /// Makes `name`'s current contents (and its existence) durable.
    fn sync_file(&self, name: &str) -> Result<(), CkptError>;
    /// Atomically renames `from` to `to` (durable at next `sync_dir`).
    fn rename(&self, from: &str, to: &str) -> Result<(), CkptError>;
    /// Makes all pending namespace edits durable.
    fn sync_dir(&self) -> Result<(), CkptError>;
    /// Reads a file's current contents.
    fn read_file(&self, name: &str) -> Result<Vec<u8>, CkptError>;
    /// Lists current file names (any order).
    fn list(&self) -> Result<Vec<String>, CkptError>;
    /// Removes `name` (durable at next `sync_dir`).
    fn remove_file(&self, name: &str) -> Result<(), CkptError>;
}

impl<S: Storage + ?Sized> Storage for Arc<S> {
    fn write_file(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        (**self).write_file(name, bytes)
    }
    fn sync_file(&self, name: &str) -> Result<(), CkptError> {
        (**self).sync_file(name)
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), CkptError> {
        (**self).rename(from, to)
    }
    fn sync_dir(&self) -> Result<(), CkptError> {
        (**self).sync_dir()
    }
    fn read_file(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        (**self).read_file(name)
    }
    fn list(&self) -> Result<Vec<String>, CkptError> {
        (**self).list()
    }
    fn remove_file(&self, name: &str) -> Result<(), CkptError> {
        (**self).remove_file(name)
    }
}

/// Real-filesystem storage rooted at a directory.
pub struct FsStorage {
    root: PathBuf,
}

impl FsStorage {
    /// Opens (creating if needed) the root directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The root directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> Result<PathBuf, CkptError> {
        if name.is_empty() || name.contains(['/', '\\']) || name == "." || name == ".." {
            return Err(CkptError::Io(format!("invalid storage name `{name}`")));
        }
        Ok(self.root.join(name))
    }
}

impl Storage for FsStorage {
    fn write_file(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        Ok(std::fs::write(self.path(name)?, bytes)?)
    }

    fn sync_file(&self, name: &str) -> Result<(), CkptError> {
        Ok(std::fs::File::open(self.path(name)?)?.sync_all()?)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), CkptError> {
        Ok(std::fs::rename(self.path(from)?, self.path(to)?)?)
    }

    fn sync_dir(&self) -> Result<(), CkptError> {
        // Some filesystems refuse to open a directory for writing; opening
        // read-only for fsync is the portable idiom. Failure to *open* is
        // best-effort tolerated, a failing sync is not.
        match std::fs::File::open(&self.root) {
            Ok(d) => Ok(d.sync_all()?),
            Err(_) => Ok(()),
        }
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        Ok(std::fs::read(self.path(name)?)?)
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(CkptError::from)? {
            let entry = entry.map_err(CkptError::from)?;
            if entry.file_type().map_err(CkptError::from)?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(names)
    }

    fn remove_file(&self, name: &str) -> Result<(), CkptError> {
        Ok(std::fs::remove_file(self.path(name)?)?)
    }
}

/// A pending namespace edit not yet made durable by `sync_dir`.
#[derive(Clone, Debug)]
enum NsOp {
    Rename { from: String, to: String },
    Remove(String),
}

#[derive(Default)]
struct MemState {
    /// What a running process sees.
    current: BTreeMap<String, Vec<u8>>,
    /// What survives a crash.
    durable: BTreeMap<String, Vec<u8>>,
    /// Namespace edits applied to `current` but not yet to `durable`.
    pending_ns: Vec<NsOp>,
}

/// Deterministic in-memory storage with an explicit durability model:
/// `current` is the live view, `durable` is what a crash reverts to.
/// Contents become durable at `sync_file`; renames/removals at `sync_dir`.
/// Share one `Arc<MemStorage>` between a store and a fault injector, call
/// [`MemStorage::crash`] to simulate power loss, then reopen a store on
/// the surviving state.
#[derive(Default)]
pub struct MemStorage {
    state: Mutex<MemState>,
}

impl MemStorage {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates power loss: the live view reverts to exactly what had
    /// been made durable; pending namespace edits are lost.
    pub fn crash(&self) {
        let mut st = self.state.lock();
        st.current = st.durable.clone();
        st.pending_ns.clear();
    }

    /// Snapshot of the durable view (what a post-crash scan would see).
    pub fn durable_snapshot(&self) -> BTreeMap<String, Vec<u8>> {
        self.state.lock().durable.clone()
    }

    /// Overwrites a file in **both** views — the hook torn-write/bit-flip
    /// injection uses to model corruption that reached the platter.
    pub fn corrupt_file(&self, name: &str, bytes: Vec<u8>) {
        let mut st = self.state.lock();
        st.current.insert(name.to_owned(), bytes.clone());
        st.durable.insert(name.to_owned(), bytes);
    }
}

impl Storage for MemStorage {
    fn write_file(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        self.state.lock().current.insert(name.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn sync_file(&self, name: &str) -> Result<(), CkptError> {
        let mut st = self.state.lock();
        let bytes = st
            .current
            .get(name)
            .cloned()
            .ok_or_else(|| CkptError::Io(format!("sync_file: no such file `{name}`")))?;
        st.durable.insert(name.to_owned(), bytes);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), CkptError> {
        let mut st = self.state.lock();
        let bytes = st
            .current
            .remove(from)
            .ok_or_else(|| CkptError::Io(format!("rename: no such file `{from}`")))?;
        st.current.insert(to.to_owned(), bytes);
        st.pending_ns.push(NsOp::Rename { from: from.to_owned(), to: to.to_owned() });
        Ok(())
    }

    fn sync_dir(&self) -> Result<(), CkptError> {
        let mut st = self.state.lock();
        let ops = std::mem::take(&mut st.pending_ns);
        for op in ops {
            match op {
                // A renamed file keeps whatever durability its contents
                // had: synced contents follow the name, unsynced contents
                // stay lost-on-crash.
                NsOp::Rename { from, to } => {
                    if let Some(bytes) = st.durable.remove(&from) {
                        st.durable.insert(to, bytes);
                    }
                }
                NsOp::Remove(name) => {
                    st.durable.remove(&name);
                }
            }
        }
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, CkptError> {
        self.state
            .lock()
            .current
            .get(name)
            .cloned()
            .ok_or_else(|| CkptError::Io(format!("read: no such file `{name}`")))
    }

    fn list(&self) -> Result<Vec<String>, CkptError> {
        Ok(self.state.lock().current.keys().cloned().collect())
    }

    fn remove_file(&self, name: &str) -> Result<(), CkptError> {
        let mut st = self.state.lock();
        st.current
            .remove(name)
            .ok_or_else(|| CkptError::Io(format!("remove: no such file `{name}`")))?;
        st.pending_ns.push(NsOp::Remove(name.to_owned()));
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The checkpoint store
// ---------------------------------------------------------------------------

/// Advisory index of the store's contents, itself written atomically.
/// Recovery never *trusts* it — [`CkptStore::latest_valid`] scans and
/// verifies actual checkpoint files — but tooling uses it to cross-check
/// (`ckpt verify` reports drift) and humans use it to see the store state
/// without decoding every file.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Manifest {
    /// Entries, oldest first.
    pub entries: Vec<ManifestEntry>,
}

/// One checkpoint the manifest knows about.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// File name in the store.
    pub name: String,
    /// Monotonic sequence number parsed from the name.
    pub seq: u64,
    /// File size in bytes.
    pub bytes: usize,
    /// Whole-file FNV-1a digest.
    pub checksum: u64,
}

/// Result of verifying one checkpoint file.
#[derive(Clone, Debug)]
pub struct CkptInfo {
    /// File size in bytes.
    pub bytes: usize,
    /// Whole-file FNV-1a digest.
    pub checksum: u64,
    /// `(section name, payload bytes)` in file order.
    pub sections: Vec<(String, usize)>,
    /// The loader cursor the checkpoint would resume at.
    pub next_batch: u64,
    /// Number of hosted server tables captured.
    pub server_tables: usize,
}

/// File name of the advisory manifest.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

fn ckpt_name(seq: u64) -> String {
    format!("ckpt-{seq:08}.elck")
}

fn parse_ckpt_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".elck")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A retention-managed checkpoint store over any [`Storage`].
pub struct CkptStore<S: Storage> {
    storage: S,
    retain: usize,
    next_seq: u64,
}

impl<S: Storage> CkptStore<S> {
    /// Opens a store, deriving the next sequence number from the files
    /// actually present (a stale or missing manifest cannot confuse it).
    /// `retain` is clamped to at least 1.
    pub fn open(storage: S, retain: usize) -> Result<Self, CkptError> {
        let next_seq =
            storage.list()?.iter().filter_map(|n| parse_ckpt_name(n)).max().map_or(0, |m| m + 1);
        Ok(Self { storage, retain: retain.max(1), next_seq })
    }

    /// The underlying storage.
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Saves a checkpoint with the full atomic protocol, applies
    /// retention, and rewrites the manifest. Returns the durable file
    /// name. Any error leaves previously saved checkpoints untouched.
    pub fn save(&mut self, ckpt: &TrainingCheckpoint) -> Result<String, CkptError> {
        self.save_bytes(&ckpt.to_framed_bytes())
    }

    /// [`CkptStore::save`] for any pre-framed payload (the simulator
    /// stores its own checkpoint schema through the same store): temp
    /// write → fsync → rename → fsync dir, then retention + manifest.
    pub fn save_bytes(&mut self, bytes: &[u8]) -> Result<String, CkptError> {
        let name = ckpt_name(self.next_seq);
        let tmp = format!("{name}.tmp");
        self.storage.write_file(&tmp, bytes)?;
        self.storage.sync_file(&tmp)?;
        self.storage.rename(&tmp, &name)?;
        self.storage.sync_dir()?;
        // The checkpoint is durable from here on; retention and the
        // manifest are follow-up work whose failure must not lose it.
        self.next_seq += 1;
        self.apply_retention()?;
        self.write_manifest()?;
        Ok(name)
    }

    fn apply_retention(&mut self) -> Result<(), CkptError> {
        let mut seqs: Vec<u64> =
            self.storage.list()?.iter().filter_map(|n| parse_ckpt_name(n)).collect();
        seqs.sort_unstable();
        let excess = seqs.len().saturating_sub(self.retain);
        for &seq in &seqs[..excess] {
            self.storage.remove_file(&ckpt_name(seq))?;
        }
        if excess > 0 {
            self.storage.sync_dir()?;
        }
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), CkptError> {
        let manifest = self.scan_manifest()?;
        let bytes = serde_json::to_vec(&manifest).expect("manifest serializes");
        let tmp = format!("{MANIFEST_NAME}.tmp");
        self.storage.write_file(&tmp, &bytes)?;
        self.storage.sync_file(&tmp)?;
        self.storage.rename(&tmp, MANIFEST_NAME)?;
        self.storage.sync_dir()
    }

    /// Builds a manifest by scanning the storage (entries for every
    /// present checkpoint file, valid or not).
    pub fn scan_manifest(&self) -> Result<Manifest, CkptError> {
        let mut entries = Vec::new();
        let mut names: Vec<(u64, String)> = self
            .storage
            .list()?
            .into_iter()
            .filter_map(|n| parse_ckpt_name(&n).map(|seq| (seq, n)))
            .collect();
        names.sort_unstable();
        for (seq, name) in names {
            let bytes = self.storage.read_file(&name)?;
            entries.push(ManifestEntry { name, seq, bytes: bytes.len(), checksum: fnv1a(&bytes) });
        }
        Ok(Manifest { entries })
    }

    /// Reads the stored manifest, if present and parseable (advisory:
    /// corruption here is reported as `None`, never an error).
    pub fn read_manifest(&self) -> Option<Manifest> {
        let bytes = self.storage.read_file(MANIFEST_NAME).ok()?;
        let text = std::str::from_utf8(&bytes).ok()?;
        serde_json::from_str(text).ok()
    }

    /// Checkpoint file names present, newest first.
    pub fn names_newest_first(&self) -> Result<Vec<String>, CkptError> {
        let mut seqs: Vec<u64> =
            self.storage.list()?.iter().filter_map(|n| parse_ckpt_name(n)).collect();
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        Ok(seqs.into_iter().map(ckpt_name).collect())
    }

    /// Scans newest-to-oldest for the first checkpoint that passes full
    /// verification (trailer, section checksums, payload decode) and
    /// returns it. Corrupt or torn files are skipped — that is the
    /// fallback path the corruption matrix exercises.
    pub fn latest_valid(&self) -> Result<(String, TrainingCheckpoint), CkptError> {
        self.latest_valid_with(TrainingCheckpoint::from_framed_bytes)
    }

    /// [`CkptStore::latest_valid`] for any payload schema stored through
    /// [`CkptStore::save_bytes`]: `decode` must fully validate the bytes
    /// (the simulator passes its own checkpoint decoder).
    pub fn latest_valid_with<T>(
        &self,
        decode: impl Fn(&[u8]) -> Result<T, CkptError>,
    ) -> Result<(String, T), CkptError> {
        for name in self.names_newest_first()? {
            let Ok(bytes) = self.storage.read_file(&name) else { continue };
            if let Ok(ckpt) = decode(&bytes) {
                return Ok((name, ckpt));
            }
        }
        Err(CkptError::NoValidCheckpoint)
    }

    /// Fully verifies one checkpoint file by name.
    pub fn verify(&self, name: &str) -> Result<CkptInfo, CkptError> {
        let bytes = self.storage.read_file(name)?;
        verify_bytes(&bytes)
    }
}

/// Fully verifies checkpoint bytes: frame trailer, per-section checksums,
/// and payload decode. Returns a summary on success. Files with a `model`
/// section are decoded as a full [`TrainingCheckpoint`]; files without one
/// (e.g. simulator checkpoints stored through [`CkptStore::save_bytes`])
/// are verified at the frame + `meta` level.
pub fn verify_bytes(bytes: &[u8]) -> Result<CkptInfo, CkptError> {
    let sections = decode_frames(bytes)?;
    let summary: Vec<(String, usize)> =
        sections.iter().map(|s| (s.name.clone(), s.payload.len())).collect();
    let (next_batch, server_tables) = if sections.iter().any(|s| s.name == "model") {
        let ckpt = TrainingCheckpoint::from_framed_bytes(bytes)?;
        (ckpt.next_batch, ckpt.server.map_or(0, |s| s.tables.len()))
    } else {
        let meta = sections
            .iter()
            .find(|s| s.name == "meta")
            .ok_or_else(|| CkptError::Corrupt("missing `meta` section".into()))?;
        let meta: CkptMeta = parse_json(&meta.payload, "meta")?;
        if meta.format == 0 || meta.format > TRAINING_CKPT_FORMAT {
            return Err(CkptError::Version { got: meta.format, supported: TRAINING_CKPT_FORMAT });
        }
        (meta.next_batch, 0)
    };
    Ok(CkptInfo {
        bytes: bytes.len(),
        checksum: fnv1a(bytes),
        sections: summary,
        next_batch,
        server_tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ckpt(next_batch: u64) -> TrainingCheckpoint {
        use el_dlrm::{DlrmConfig, DlrmModel};
        use rand::SeedableRng;
        let cfg = DlrmConfig {
            num_dense: 2,
            table_cardinalities: vec![50, 50],
            dim: 4,
            bottom_hidden: vec![8],
            top_hidden: vec![8],
            tt_threshold: usize::MAX,
            tt_rank: 4,
            lr: 0.05,
            optimizer: el_dlrm::OptimizerKind::Sgd,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let model = DlrmModel::new(&cfg, &mut rng);
        TrainingCheckpoint {
            model: DlrmCheckpoint::capture(&model),
            server: None,
            next_batch,
            workers: vec![WorkerCursor { worker: 0, next_batch }],
        }
    }

    /// Round-trips one shard's checkpoint through JSON for every shard
    /// of a layout, and rejects a restore against a different layout
    /// slot with the typed error (satellite of the sharded-tier issue).
    fn shard_ckpt_roundtrip(num_shards: u32) {
        use crate::router::{split_tables, ShardConfig, ShardLayout};
        use el_dlrm::embedding_bag::EmbeddingBag;
        use rand::SeedableRng;

        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let tables = vec![
            (1usize, EmbeddingBag::new(40, 4, 0.2, &mut rng)),
            (2usize, EmbeddingBag::new(25, 4, 0.2, &mut rng)),
        ];
        let cfg = ShardConfig { num_shards, rows_per_range: 7, placement_seed: 5 };
        let layout = ShardLayout::place_for(&cfg, &tables);
        let shards = split_tables(&tables, &layout).unwrap();
        for (s, sub) in shards.into_iter().enumerate() {
            let mut server = HostServer::new(sub, 0.05);
            server.applied = 11;
            let ckpt = ServerCheckpoint::capture_shard(&server, s as u32, num_shards);
            let text = serde_json::to_string(&ckpt).unwrap();
            let decoded: ServerCheckpoint = serde_json::from_str(&text).unwrap();
            // a layout change between save and load is a typed error
            match decoded.clone().restore_shard(s as u32, num_shards + 1) {
                Err(CkptError::StateMismatch(_)) => {}
                Err(other) => panic!("layout change must be StateMismatch, got {other:?}"),
                Ok(_) => panic!("layout change must be rejected"),
            }
            if num_shards > 1 {
                let wrong_slot = (s as u32 + 1) % num_shards;
                match decoded.clone().restore_shard(wrong_slot, num_shards) {
                    Err(CkptError::StateMismatch(_)) => {}
                    Err(other) => panic!("slot change must be StateMismatch, got {other:?}"),
                    Ok(_) => panic!("slot change must be rejected"),
                }
            }
            let restored = decoded.restore_shard(s as u32, num_shards).unwrap();
            assert_eq!(restored.applied, 11);
            assert_eq!(restored.tables.len(), server.tables.len());
            for ((ta, a), (tb, b)) in server.tables.iter().zip(&restored.tables) {
                assert_eq!(ta, tb);
                assert_eq!(a.weight.as_slice(), b.weight.as_slice());
            }
        }
    }

    #[test]
    fn shard_checkpoints_round_trip_per_layout() {
        for shards in [1, 2, 4] {
            shard_ckpt_roundtrip(shards);
        }
    }

    #[test]
    fn single_server_capture_is_the_degenerate_shard() {
        let ckpt = ServerCheckpoint::capture(&HostServer::new(Vec::new(), 0.1));
        assert_eq!((ckpt.shard, ckpt.num_shards), (0, 1));
        // the unsharded restore path ignores layout identity
        assert!(ckpt.clone().restore_shard(0, 1).is_ok());
        assert!(matches!(ckpt.restore_shard(1, 2), Err(CkptError::StateMismatch(_))));
    }

    #[test]
    fn frames_round_trip() {
        let sections = vec![
            Section { name: "a".into(), payload: vec![1, 2, 3] },
            Section { name: "empty".into(), payload: vec![] },
        ];
        let bytes = encode_frames(&sections);
        assert_eq!(decode_frames(&bytes).unwrap(), sections);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode_frames(&[Section { name: "s".into(), payload: vec![7; 64] }]);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(decode_frames(&bad), Err(CkptError::Corrupt(_))),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_frames(&[Section { name: "s".into(), payload: vec![9; 32] }]);
        for len in 0..bytes.len() {
            assert!(
                matches!(decode_frames(&bytes[..len]), Err(CkptError::Corrupt(_))),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn mem_storage_crash_semantics() {
        let s = MemStorage::new();
        s.write_file("a.tmp", b"hello").unwrap();
        s.crash();
        assert!(s.read_file("a.tmp").is_err(), "unsynced write must not survive a crash");

        s.write_file("a.tmp", b"hello").unwrap();
        s.sync_file("a.tmp").unwrap();
        s.rename("a.tmp", "a").unwrap();
        s.crash(); // rename not yet sync_dir'ed
        assert_eq!(s.read_file("a.tmp").unwrap(), b"hello", "synced temp survives");
        assert!(s.read_file("a").is_err(), "unsynced rename must not survive");

        s.rename("a.tmp", "a").unwrap();
        s.sync_dir().unwrap();
        s.crash();
        assert_eq!(s.read_file("a").unwrap(), b"hello", "synced rename survives");
        assert!(s.read_file("a.tmp").is_err());
    }

    #[test]
    fn store_saves_and_recovers_latest_valid() {
        let storage = Arc::new(MemStorage::new());
        let mut store = CkptStore::open(Arc::clone(&storage), 3).unwrap();
        for b in [4u64, 8, 12] {
            store.save(&tiny_ckpt(b)).unwrap();
        }
        let (name, ckpt) = store.latest_valid().unwrap();
        assert_eq!(name, "ckpt-00000002.elck");
        assert_eq!(ckpt.next_batch, 12);
    }

    #[test]
    fn retention_keeps_newest_k() {
        let storage = Arc::new(MemStorage::new());
        let mut store = CkptStore::open(Arc::clone(&storage), 2).unwrap();
        for b in 0..5u64 {
            store.save(&tiny_ckpt(b)).unwrap();
        }
        let names = store.names_newest_first().unwrap();
        assert_eq!(names, vec!["ckpt-00000004.elck", "ckpt-00000003.elck"]);
        let manifest = store.read_manifest().expect("manifest present");
        assert_eq!(manifest.entries.len(), 2);
        assert_eq!(manifest.entries.last().unwrap().seq, 4);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let storage = Arc::new(MemStorage::new());
        let mut store = CkptStore::open(Arc::clone(&storage), 4).unwrap();
        store.save(&tiny_ckpt(5)).unwrap();
        let newest = store.save(&tiny_ckpt(9)).unwrap();
        let mut bytes = storage.read_file(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        storage.corrupt_file(&newest, bytes);
        let (name, ckpt) = store.latest_valid().unwrap();
        assert_eq!(name, "ckpt-00000000.elck");
        assert_eq!(ckpt.next_batch, 5);
    }

    #[test]
    fn reopen_after_crash_continues_sequence() {
        let storage = Arc::new(MemStorage::new());
        let mut store = CkptStore::open(Arc::clone(&storage), 3).unwrap();
        store.save(&tiny_ckpt(1)).unwrap();
        store.save(&tiny_ckpt(2)).unwrap();
        drop(store);
        storage.crash();
        let mut store = CkptStore::open(Arc::clone(&storage), 3).unwrap();
        let name = store.save(&tiny_ckpt(3)).unwrap();
        assert_eq!(name, "ckpt-00000002.elck");
        assert_eq!(store.latest_valid().unwrap().1.next_batch, 3);
    }

    #[test]
    fn fs_storage_full_protocol_round_trip() {
        let dir = std::env::temp_dir().join(format!("el_ckpt_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let storage = FsStorage::open(&dir).unwrap();
        let mut store = CkptStore::open(storage, 2).unwrap();
        let name = store.save(&tiny_ckpt(7)).unwrap();
        let info = store.verify(&name).unwrap();
        assert_eq!(info.next_batch, 7);
        assert!(info.sections.iter().any(|(n, _)| n == "model"));
        assert_eq!(store.latest_valid().unwrap().1.next_batch, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_bytes_rejects_garbage() {
        assert!(matches!(verify_bytes(b"not a checkpoint"), Err(CkptError::Corrupt(_))));
        assert!(matches!(verify_bytes(b""), Err(CkptError::Corrupt(_))));
    }
}
