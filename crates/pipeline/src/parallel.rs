//! Data-parallel multi-worker training with gradient all-reduce.
//!
//! EL-Rec's multi-GPU mode (paper §V-A, Figures 12/13): because the Eff-TT
//! table is small, it is *replicated* to every worker and trained data
//! parallel; the only inter-device communication is the all-reduce of MLP
//! and TT-core gradients after backward — no embedding exchange in the
//! forward phase, which is exactly the advantage over model-parallel
//! sharding (HugeCTR / TorchRec) that Figure 13 demonstrates.
//!
//! Workers are OS threads standing in for GPUs; the all-reduce volume is
//! metered so the benches can charge it to the simulated interconnect.

use crate::device::CommMeter;
use el_data::SyntheticDataset;
use el_dlrm::DlrmModel;
use parking_lot::Mutex;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Averages equally-sized gradient buffers in place (the mathematical
/// content of an all-reduce).
pub fn allreduce_mean(buffers: &mut [Vec<f32>]) {
    let n = buffers.len();
    assert!(n > 0);
    let len = buffers[0].len();
    assert!(buffers.iter().all(|b| b.len() == len), "buffers must have equal length");
    let scale = 1.0 / n as f32;
    for i in 0..len {
        let sum: f32 = buffers.iter().map(|b| b[i]).sum();
        let avg = sum * scale;
        for b in buffers.iter_mut() {
            b[i] = avg;
        }
    }
}

/// Bytes one worker moves for a ring all-reduce of `elements` f32 values
/// across `workers` participants (2·(W-1)/W·payload).
pub fn ring_allreduce_bytes(elements: usize, workers: usize) -> u64 {
    if workers <= 1 {
        return 0;
    }
    let payload = (elements * std::mem::size_of::<f32>()) as f64;
    (2.0 * (workers as f64 - 1.0) / workers as f64 * payload) as u64
}

/// Report of a data-parallel run.
pub struct ParallelReport {
    /// Mean per-step loss across workers.
    pub losses: Vec<f32>,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Aggregate throughput in samples/second across all workers.
    pub samples_per_sec: f64,
    /// Per-worker communication accounting (all-reduce volume).
    pub meter: CommMeter,
    /// Final model state of worker 0 (all replicas agree up to float
    /// reduction order).
    pub model: DlrmModel,
}

/// Trains replicas of one model across `num_workers` threads.
pub struct DataParallelTrainer {
    /// Number of simulated devices.
    pub num_workers: usize,
    /// Overlap TT pointer preparation with compute: each worker generates
    /// batch `s+1` and queues its lookup plans before training batch `s`.
    /// Prefetched plans are bit-identical to inline builds, so the
    /// all-reduce trajectory is unchanged.
    pub overlap_analysis: bool,
}

impl DataParallelTrainer {
    /// A trainer over `num_workers` workers (analysis overlap on).
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers >= 1);
        Self { num_workers, overlap_analysis: true }
    }

    /// Runs `num_steps` synchronized steps; at step `s`, worker `w` trains
    /// batch `first + s * W + w`. `build_replica` must return identical
    /// models for every call (same seed).
    pub fn train(
        &self,
        build_replica: impl Fn() -> DlrmModel + Sync,
        dataset: &SyntheticDataset,
        batch_size: usize,
        first: u64,
        num_steps: u64,
    ) -> ParallelReport {
        let w = self.num_workers;
        let barrier = Barrier::new(w);
        let grad_acc: Mutex<Vec<f32>> = Mutex::new(Vec::new());
        let losses: Mutex<Vec<f32>> = Mutex::new(vec![0.0; num_steps as usize]);
        let result: Mutex<Option<DlrmModel>> = Mutex::new(None);

        // TIMING: end-to-end wall clock of the run, reported to the caller.
        let start = Instant::now();
        std::thread::scope(|scope| {
            for wid in 0..w {
                let barrier = &barrier;
                let grad_acc = &grad_acc;
                let losses = &losses;
                let result = &result;
                let build_replica = &build_replica;
                let overlap = self.overlap_analysis;
                scope.spawn(move || {
                    let mut model = build_replica();
                    if overlap {
                        model.enable_plan_overlap();
                    }
                    let grad_len = model.grad_len();
                    let mut batch = dataset.batch(first + wid as u64, batch_size);
                    if overlap {
                        model.prefetch_plans(&batch);
                    }
                    for s in 0..num_steps {
                        // Generate the next step's batch early and queue its
                        // TT plan analysis so it builds while this step's
                        // forward/backward runs.
                        let next = (s + 1 < num_steps).then(|| {
                            dataset.batch(first + (s + 1) * w as u64 + wid as u64, batch_size)
                        });
                        if overlap {
                            if let Some(n) = &next {
                                model.prefetch_plans(n);
                            }
                        }
                        let (loss, flat) = model.train_step_defer(&batch);
                        if let Some(n) = next {
                            batch = n;
                        }
                        {
                            let mut acc = grad_acc.lock();
                            if acc.is_empty() {
                                acc.resize(grad_len, 0.0);
                            }
                            for (a, g) in acc.iter_mut().zip(&flat) {
                                *a += g;
                            }
                            losses.lock()[s as usize] += loss / w as f32;
                        }
                        barrier.wait();
                        if wid == 0 {
                            let mut acc = grad_acc.lock();
                            let scale = 1.0 / w as f32;
                            for a in acc.iter_mut() {
                                *a *= scale;
                            }
                        }
                        barrier.wait();
                        {
                            let acc = grad_acc.lock();
                            model.apply_grad_vector(&acc);
                        }
                        barrier.wait();
                        if wid == 0 {
                            grad_acc.lock().clear();
                        }
                        barrier.wait();
                    }
                    if wid == 0 {
                        *result.lock() = Some(model);
                    }
                });
            }
        });
        let wall = start.elapsed();

        let model = result.into_inner().expect("worker 0 must finish");
        let mut meter = CommMeter::new();
        meter.p2p((ring_allreduce_bytes(model.grad_len(), w) * num_steps) as usize);
        let samples = num_steps as f64 * w as f64 * batch_size as f64;
        ParallelReport {
            losses: losses.into_inner(),
            wall,
            samples_per_sec: samples / wall.as_secs_f64(),
            meter,
            model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_data::DatasetSpec;
    use el_dlrm::DlrmConfig;
    use rand::SeedableRng;

    fn dataset() -> SyntheticDataset {
        let mut spec = DatasetSpec::toy(2, 300, 1_000_000);
        spec.num_dense = 4;
        SyntheticDataset::new(spec, 21)
    }

    fn config() -> DlrmConfig {
        DlrmConfig {
            num_dense: 4,
            table_cardinalities: vec![300, 300],
            dim: 8,
            bottom_hidden: vec![16],
            top_hidden: vec![16],
            tt_threshold: 250, // both tables TT
            tt_rank: 8,
            lr: 0.05,
            optimizer: el_dlrm::OptimizerKind::Sgd,
        }
    }

    fn build() -> DlrmModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        DlrmModel::new(&config(), &mut rng)
    }

    #[test]
    fn allreduce_mean_averages() {
        let mut bufs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        allreduce_mean(&mut bufs);
        assert_eq!(bufs[0], vec![2.0, 3.0]);
        assert_eq!(bufs[1], vec![2.0, 3.0]);
    }

    #[test]
    fn ring_volume_formula() {
        assert_eq!(ring_allreduce_bytes(1000, 1), 0);
        let b4 = ring_allreduce_bytes(1000, 4);
        assert_eq!(b4, (2.0f64 * 3.0 / 4.0 * 4000.0) as u64);
    }

    #[test]
    fn single_worker_matches_deferred_sequential() {
        let ds = dataset();
        let report = DataParallelTrainer::new(1).train(build, &ds, 32, 0, 5);

        let mut reference = build();
        let mut ref_losses = Vec::new();
        for s in 0..5 {
            let batch = ds.batch(s, 32);
            let (loss, flat) = reference.train_step_defer(&batch);
            reference.apply_grad_vector(&flat);
            ref_losses.push(loss);
        }
        for (a, b) in report.losses.iter().zip(&ref_losses) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn four_workers_train_and_agree() {
        let ds = dataset();
        let report = DataParallelTrainer::new(4).train(build, &ds, 16, 0, 4);
        assert_eq!(report.losses.len(), 4);
        assert!(report.losses.iter().all(|l| l.is_finite() && *l > 0.0));
        assert!(report.meter.p2p_bytes > 0);
        assert!(report.samples_per_sec > 0.0);
    }

    #[test]
    fn overlap_analysis_does_not_change_the_trajectory() {
        // TT tables with plan prefetch enabled must follow the exact loss
        // trajectory of inline analysis (prefetched plans are bit-identical).
        let ds = dataset();
        let mut inline = DataParallelTrainer::new(2);
        inline.overlap_analysis = false;
        let base = inline.train(build, &ds, 32, 0, 6);
        let overlapped = DataParallelTrainer::new(2).train(build, &ds, 32, 0, 6);
        assert_eq!(base.losses, overlapped.losses, "overlap changed the trajectory");
    }

    #[test]
    fn parallel_loss_decreases_over_steps() {
        let ds = dataset();
        let report = DataParallelTrainer::new(2).train(build, &ds, 64, 0, 30);
        let head: f32 = report.losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = report.losses[25..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "loss did not decrease: {head} -> {tail}");
    }
}
