//! The three-stage pipelined trainer (paper Figure 9 / Figure 10).
//!
//! One worker (device) trains the MLPs and TT tables; the host server
//! gathers and updates host-resident embedding tables. The three stages —
//! host gather, device compute, host update — overlap through the
//! pre-fetch and gradient queues; the embedding cache keeps pre-fetched
//! rows consistent (RAW conflict, §V-B).
//!
//! The pipelined and sequential modes are *numerically identical*: every
//! value a pipelined worker trains on is bit-for-bit the value the
//! sequential schedule would produce (the `pipeline_equivalence`
//! integration test asserts this), so pipelining is pure performance.

use crate::cache::EmbeddingCache;
use crate::device::{thread_cpu_time, CommMeter};
use crate::server::{
    aggregate_to_unique, make_queues, pool_prefetched, send_with_retry, GradientPush, HostServer,
};
use el_data::SyntheticDataset;
use el_dlrm::embedding_bag::EmbeddingBag;
use el_dlrm::DlrmModel;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Pipeline run configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Samples per batch.
    pub batch_size: usize,
    /// First batch index in the dataset.
    pub first_batch: u64,
    /// Number of batches to train.
    pub num_batches: u64,
    /// Pre-fetch queue depth (the paper's queue length).
    pub prefetch_depth: usize,
    /// Overlap host and device stages; `false` reproduces the strict
    /// sequential baseline regardless of queue depth.
    pub pipelined: bool,
    /// Overlap TT pointer preparation with the host gather stage: each
    /// batch's lookup plans are queued on the tables' plan prefetchers as
    /// soon as the batch arrives. Prefetched plans are bit-identical to
    /// inline builds, so this never changes training results.
    pub overlap_analysis: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            batch_size: 256,
            first_batch: 0,
            num_batches: 32,
            prefetch_depth: 4,
            pipelined: true,
            overlap_analysis: true,
        }
    }
}

/// Outcome of a pipeline training run.
pub struct PipelineReport {
    /// Batches the worker actually trained. Equal to the configured
    /// `num_batches` on a clean run; smaller when the server disappeared
    /// or the gradient queue stayed saturated beyond the retry budget and
    /// the worker degraded to an early stop.
    pub completed_batches: u64,
    /// Per-batch training losses.
    pub losses: Vec<f32>,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Training throughput in samples per second.
    pub samples_per_sec: f64,
    /// Stale pre-fetched rows the cache corrected.
    pub stale_hits: u64,
    /// Peak cache footprint across the run.
    pub cache_peak_bytes: usize,
    /// Server-side communication accounting.
    pub server_meter: CommMeter,
    /// Measured server CPU time (gather + update) — host-speed cost.
    pub server_cpu: Duration,
    /// Measured batch-generation CPU time (data-loader role).
    pub loader_cpu: Duration,
    /// Measured worker compute time (device-speed cost in the simulated
    /// model).
    pub worker_compute: Duration,
    /// Final worker model state.
    pub model: DlrmModel,
    /// Final host-table state.
    pub host_tables: Vec<(usize, EmbeddingBag)>,
}

/// Drives one worker plus the host parameter server.
pub struct PipelineTrainer;

impl PipelineTrainer {
    /// Trains `model` (whose [`el_dlrm::EmbeddingLayer::Hosted`] tables are
    /// owned by `server`) on `dataset` per `config`.
    pub fn train(
        mut model: DlrmModel,
        server: HostServer,
        dataset: &SyntheticDataset,
        config: &PipelineConfig,
    ) -> PipelineReport {
        let hosted = model.hosted_tables();
        for (t, _) in &server.tables {
            assert!(hosted.contains(t), "server hosts table {t} the model does not mark Hosted");
        }
        assert_eq!(hosted.len(), server.tables.len(), "every Hosted table needs a server side");

        let lr = model.lr;
        let depth = if config.pipelined { config.prefetch_depth } else { 1 };
        let (ptx, prx, gtx, grx) = make_queues(depth);
        if config.overlap_analysis {
            model.enable_plan_overlap();
        }

        // TIMING: end-to-end wall clock of the run, reported to the caller.
        let start = Instant::now();
        let server_handle = std::thread::spawn({
            let ds = dataset.clone();
            let (first, count, bs, pipelined) =
                (config.first_batch, config.num_batches, config.batch_size, config.pipelined);
            move || server.run(&ds, first, count, bs, ptx, grx, pipelined)
        });

        let mut caches: HashMap<usize, EmbeddingCache> =
            hosted.iter().map(|&t| (t, EmbeddingCache::new())).collect();
        let mut losses = Vec::with_capacity(config.num_batches as usize);
        let mut cache_peak = 0usize;
        let mut worker_compute = Duration::ZERO;

        for k in 0..config.num_batches {
            // A vanished server (its thread died or dropped the queue) is a
            // degraded early stop for the worker, not a panic: the partial
            // report still carries every batch that trained.
            let Ok(mut pf) = prx.recv() else {
                break;
            };
            assert_eq!(pf.batch_seq, k);
            let batch = std::mem::replace(
                &mut pf.batch,
                el_data::MiniBatch {
                    dense: Vec::new(),
                    num_dense: 0,
                    fields: Vec::new(),
                    labels: Vec::new(),
                },
            );

            // Queue TT pointer preparation now so it overlaps the host
            // gather work below (cache sync + pooling).
            if config.overlap_analysis {
                model.prefetch_plans(&batch);
            }

            // Stage 1 (Figure 9): synchronize pre-fetched rows with the
            // cache, then pool them into per-sample embeddings. In pooled
            // (reference-DLRM) mode the CPU already pooled — use as is.
            let pooled_mode = !pf.pooled.is_empty();
            let mut hosted_embs = Vec::with_capacity(pf.tables.len() + pf.pooled.len());
            for (t, unique, rows) in &mut pf.tables {
                caches.get_mut(t).unwrap().sync(unique, rows, pf.applied_through);
                let field = &batch.fields[*t];
                hosted_embs
                    .push((*t, pool_prefetched(&field.indices, &field.offsets, unique, rows)));
            }
            for (t, pooled) in &pf.pooled {
                hosted_embs.push((*t, pooled.clone()));
            }

            // Device compute: MLPs + TT tables + interaction.
            let t0 = thread_cpu_time();
            let out = model.train_step_hybrid(&batch, &hosted_embs);
            worker_compute += thread_cpu_time() - t0;
            losses.push(out.loss);

            // Stage 3: aggregate hosted gradients, refresh the cache with
            // the post-update rows (bit-identical to what the server will
            // hold) and push. Pooled mode ships the raw pooled gradient
            // back instead (the CPU does the backward there).
            let mut pushes = Vec::new();
            let mut pooled_pushes = Vec::new();
            for (t, d_emb) in &out.hosted_grads {
                if pooled_mode {
                    pooled_pushes.push((*t, d_emb.clone()));
                    continue;
                }
                let field = &batch.fields[*t];
                let (_, unique, rows) = pf
                    .tables
                    .iter()
                    .find(|(id, _, _)| id == t)
                    .expect("hosted gradient for a table that was not prefetched");
                let grad = aggregate_to_unique(&field.indices, &field.offsets, unique, d_emb);
                let mut updated = rows.clone();
                for (slot, _) in unique.iter().enumerate() {
                    let g = &grad.values[slot * grad.dim..(slot + 1) * grad.dim];
                    for (w, gv) in updated.row_mut(slot).iter_mut().zip(g) {
                        *w -= lr * gv;
                    }
                }
                caches.get_mut(t).unwrap().insert(unique, &updated, k);
                pushes.push((*t, grad));
            }
            // Bounded retry with backoff: a transiently saturated gradient
            // queue is ridden out, a wedged or vanished server ends the
            // run gracefully after the retry budget instead of blocking
            // this worker forever.
            let push = GradientPush { batch_seq: k, tables: pushes, pooled: pooled_pushes };
            if send_with_retry(&gtx, push, 16).is_err() {
                break;
            }

            cache_peak = cache_peak.max(caches.values().map(EmbeddingCache::footprint_bytes).sum());
        }
        drop(gtx);

        let report = server_handle.join().expect("server thread panicked");
        let wall = start.elapsed();
        let completed_batches = losses.len() as u64;
        let samples = completed_batches as f64 * config.batch_size as f64;
        PipelineReport {
            completed_batches,
            losses,
            wall,
            samples_per_sec: samples / wall.as_secs_f64(),
            stale_hits: caches.values().map(|c| c.stale_hits).sum(),
            cache_peak_bytes: cache_peak,
            server_meter: report.server.meter,
            server_cpu: report.server.cpu_time,
            loader_cpu: report.server.gen_time,
            worker_compute,
            model,
            host_tables: report.server.tables,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_data::DatasetSpec;
    use el_dlrm::{DlrmConfig, EmbeddingLayer};
    use rand::SeedableRng;

    fn setup(seed: u64) -> (DlrmModel, HostServer, SyntheticDataset) {
        let mut spec = DatasetSpec::toy(3, 200, 1_000_000);
        spec.num_dense = 4;
        let dataset = SyntheticDataset::new(spec, 11);

        let cfg = DlrmConfig {
            num_dense: 4,
            table_cardinalities: vec![200, 200, 200],
            dim: 8,
            bottom_hidden: vec![16],
            top_hidden: vec![16],
            tt_threshold: usize::MAX, // keep everything dense for this test
            tt_rank: 8,
            lr: 0.05,
            optimizer: el_dlrm::OptimizerKind::Sgd,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut model = DlrmModel::new(&cfg, &mut rng);

        // host tables 1 and 2; table 0 stays on the worker
        let mut host = Vec::new();
        for t in [1usize, 2] {
            let dense =
                match std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim: 8 }) {
                    EmbeddingLayer::Dense(bag) => bag,
                    _ => unreachable!(),
                };
            host.push((t, dense));
        }
        (model, HostServer::new(host, 0.05), dataset)
    }

    fn run(pipelined: bool, depth: usize, seed: u64) -> PipelineReport {
        let (model, server, dataset) = setup(seed);
        let config = PipelineConfig {
            batch_size: 64,
            first_batch: 0,
            num_batches: 12,
            prefetch_depth: depth,
            pipelined,
            overlap_analysis: pipelined,
        };
        PipelineTrainer::train(model, server, &dataset, &config)
    }

    #[test]
    fn losses_are_finite_and_counted() {
        let r = run(true, 4, 1);
        assert_eq!(r.losses.len(), 12);
        assert_eq!(r.completed_batches, 12);
        assert!(r.losses.iter().all(|l| l.is_finite()));
        assert!(r.samples_per_sec > 0.0);
    }

    #[test]
    fn pipelined_equals_sequential_bitwise() {
        // The embedding cache must make pipelined training produce the
        // exact parameter trajectory of sequential training.
        let seq = run(false, 1, 2);
        let pipe = run(true, 4, 2);
        assert_eq!(seq.losses, pipe.losses, "loss trajectories diverged");
        for ((ta, a), (tb, b)) in seq.host_tables.iter().zip(&pipe.host_tables) {
            assert_eq!(ta, tb);
            assert_eq!(a.weight.as_slice(), b.weight.as_slice(), "host table {ta} diverged");
        }
    }

    #[test]
    fn pipelined_run_hits_the_cache() {
        // With skewed access and queue depth > 1, some prefetched rows must
        // be stale and get corrected.
        let r = run(true, 4, 3);
        assert!(r.stale_hits > 0, "expected stale prefetches under pipelining");
        assert!(r.cache_peak_bytes > 0);
    }

    #[test]
    fn sequential_run_never_needs_the_cache() {
        let r = run(false, 1, 4);
        assert_eq!(r.stale_hits, 0, "sequential mode can never see stale rows");
    }

    #[test]
    fn server_meter_accounts_transfers() {
        let r = run(true, 2, 5);
        assert!(r.server_meter.h2d_bytes > 0);
        assert!(r.server_meter.d2h_bytes > 0);
    }
}
