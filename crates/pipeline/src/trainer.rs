//! The three-stage pipelined trainer (paper Figure 9 / Figure 10).
//!
//! One worker (device) trains the MLPs and TT tables; the host server
//! gathers and updates host-resident embedding tables. The three stages —
//! host gather, device compute, host update — overlap through the
//! pre-fetch and gradient queues; the embedding cache keeps pre-fetched
//! rows consistent (RAW conflict, §V-B).
//!
//! The pipelined and sequential modes are *numerically identical*: every
//! value a pipelined worker trains on is bit-for-bit the value the
//! sequential schedule would produce (the `pipeline_equivalence`
//! integration test asserts this), so pipelining is pure performance.

use crate::cache::EmbeddingCache;
use crate::ckpt::{
    CkptError, CkptStore, HostedTableCheckpoint, ServerCheckpoint, Storage, TrainingCheckpoint,
};
use crate::device::{thread_cpu_time, CommMeter};
use crate::replica::{splitmix64, ReplicaGroup, ReplicationConfig};
use crate::router::{merge_tables, split_tables, ShardConfig, ShardLayout, ShardRouter};
use crate::server::{
    aggregate_to_unique, make_queues, pool_prefetched, send_with_retry, GradientPush, HostServer,
    PrefetchedBatch, ServerError, ServerMode, ServingLoop, ServingSchedule,
};
use crossbeam::channel::{bounded, Receiver, Sender};
use el_data::SyntheticDataset;
use el_dlrm::checkpoint::DlrmCheckpoint;
use el_dlrm::embedding_bag::EmbeddingBag;
use el_dlrm::DlrmModel;
use el_tensor::Matrix;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Pipeline run configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Samples per batch.
    pub batch_size: usize,
    /// First batch index in the dataset.
    pub first_batch: u64,
    /// Number of batches to train.
    pub num_batches: u64,
    /// Pre-fetch queue depth (the paper's queue length).
    pub prefetch_depth: usize,
    /// Overlap host and device stages; `false` reproduces the strict
    /// sequential baseline regardless of queue depth.
    pub pipelined: bool,
    /// Overlap TT pointer preparation with the host gather stage: each
    /// batch's lookup plans are queued on the tables' plan prefetchers as
    /// soon as the batch arrives. Prefetched plans are bit-identical to
    /// inline builds, so this never changes training results.
    pub overlap_analysis: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            batch_size: 256,
            first_batch: 0,
            num_batches: 32,
            prefetch_depth: 4,
            pipelined: true,
            overlap_analysis: true,
        }
    }
}

/// Outcome of a pipeline training run.
pub struct PipelineReport {
    /// Batches the worker actually trained. Equal to the configured
    /// `num_batches` on a clean run; smaller when the server disappeared
    /// or the gradient queue stayed saturated beyond the retry budget and
    /// the worker degraded to an early stop.
    pub completed_batches: u64,
    /// Per-batch training losses.
    pub losses: Vec<f32>,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Training throughput in samples per second.
    pub samples_per_sec: f64,
    /// Stale pre-fetched rows the cache corrected.
    pub stale_hits: u64,
    /// Peak cache footprint across the run.
    pub cache_peak_bytes: usize,
    /// Server-side communication accounting.
    pub server_meter: CommMeter,
    /// Measured server CPU time (gather + update) — host-speed cost.
    pub server_cpu: Duration,
    /// Measured batch-generation CPU time (data-loader role).
    pub loader_cpu: Duration,
    /// Measured worker compute time (device-speed cost in the simulated
    /// model).
    pub worker_compute: Duration,
    /// Final worker model state.
    pub model: DlrmModel,
    /// Final host-table state.
    pub host_tables: Vec<(usize, EmbeddingBag)>,
    /// Why the worker stopped early, when it did: `None` on a clean run,
    /// the typed cause (e.g. [`ServerError::RetriesExhausted`]) when
    /// `completed_batches < num_batches`.
    pub failure: Option<ServerError>,
    /// Primary promotions performed across all replica groups (0 for the
    /// unreplicated paths).
    pub failovers: u64,
}

/// Drives one worker plus the host parameter server.
pub struct PipelineTrainer;

impl PipelineTrainer {
    /// Trains `model` (whose [`el_dlrm::EmbeddingLayer::Hosted`] tables are
    /// owned by `server`) on `dataset` per `config`.
    ///
    /// Strict wrapper around [`PipelineTrainer::try_train`]: a
    /// mode/schedule combination the staleness protocol cannot serve
    /// panics here instead of returning the typed error.
    pub fn train(
        model: DlrmModel,
        server: HostServer,
        dataset: &SyntheticDataset,
        config: &PipelineConfig,
    ) -> PipelineReport {
        Self::try_train(model, server, dataset, config)
            // PANIC-OK: `train` is the documented panic-on-bad-schedule strict wrapper.
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Trains `model` per `config`, rejecting a mode/schedule combination
    /// the server's staleness protocol cannot serve as a typed
    /// [`ServerError`] at construction time — before any thread spawns or
    /// any batch trains.
    // CONTRACT: panic-free
    pub fn try_train(
        mut model: DlrmModel,
        server: HostServer,
        dataset: &SyntheticDataset,
        config: &PipelineConfig,
    ) -> Result<PipelineReport, ServerError> {
        let hosted = model.hosted_tables();
        for (t, _) in &server.tables {
            assert!(hosted.contains(t), "server hosts table {t} the model does not mark Hosted");
        }
        assert_eq!(hosted.len(), server.tables.len(), "every Hosted table needs a server side");

        let schedule = ServingSchedule {
            first: config.first_batch,
            count: config.num_batches,
            batch_size: config.batch_size,
            pipelined: config.pipelined,
        };
        let serving = ServingLoop::new(server, schedule)?;

        let lr = model.lr;
        let depth = if config.pipelined { config.prefetch_depth } else { 1 };
        let (ptx, prx, gtx, grx) = make_queues(depth);
        if config.overlap_analysis {
            model.enable_plan_overlap();
        }

        // TIMING: end-to-end wall clock of the run, reported to the caller.
        let start = Instant::now();
        let server_handle = std::thread::spawn({
            let ds = dataset.clone();
            move || serving.run(&ds, ptx, grx)
        });

        let caches: HashMap<usize, EmbeddingCache> =
            hosted.iter().map(|&t| (t, EmbeddingCache::new())).collect();
        let worker =
            run_worker(model, caches, lr, config.num_batches, config.overlap_analysis, prx, gtx);

        // PANIC-OK: deliberately propagates a server-thread panic to the caller.
        let report = server_handle.join().expect("server thread panicked");
        let wall = start.elapsed();
        let completed_batches = worker.losses.len() as u64;
        let samples = completed_batches as f64 * config.batch_size as f64;
        Ok(PipelineReport {
            completed_batches,
            losses: worker.losses,
            wall,
            samples_per_sec: samples / wall.as_secs_f64(),
            stale_hits: worker.stale_hits,
            cache_peak_bytes: worker.cache_peak_bytes,
            server_meter: report.server.meter,
            server_cpu: report.server.cpu_time,
            loader_cpu: report.server.gen_time,
            worker_compute: worker.worker_compute,
            model: worker.model,
            host_tables: report.server.tables,
            failure: worker.failure,
            failovers: 0,
        })
    }

    /// Trains `model` against an `N`-way **sharded** parameter tier: the
    /// server's hosted tables are split under a consistent-hash
    /// [`ShardLayout`], each shard runs as an independent server thread
    /// with its own bounded intake queue and push-stamp domain, and a
    /// router thread plays the serving-loop role — fanning each batch's
    /// unique rows out, reassembling the [`PrefetchedBatch`] stamped with
    /// the minimum per-shard watermark, and scattering each worker push
    /// into one sub-push per shard.
    ///
    /// Training values are byte-identical to [`PipelineTrainer::try_train`]
    /// on the unsharded server (see `crate::router` for the min-stamp
    /// argument); sharding, like pipelining, is pure performance.
    ///
    /// `num_shards <= 1` delegates to the single-server path. The sharded
    /// tier serves `UniqueRows` mode only: pooled-embedding serving has no
    /// per-row partition, so it is rejected with
    /// [`ServerError::PooledNeedsSequential`] like any other schedule the
    /// staleness protocol cannot provide for.
    pub fn try_train_sharded(
        mut model: DlrmModel,
        server: HostServer,
        dataset: &SyntheticDataset,
        config: &PipelineConfig,
        shard_cfg: &ShardConfig,
    ) -> Result<PipelineReport, ServerError> {
        if shard_cfg.num_shards <= 1 {
            return Self::try_train(model, server, dataset, config);
        }
        if server.mode == ServerMode::PooledEmbeddings {
            return Err(ServerError::PooledNeedsSequential);
        }
        let hosted = model.hosted_tables();
        for (t, _) in &server.tables {
            assert!(hosted.contains(t), "server hosts table {t} the model does not mark Hosted");
        }
        assert_eq!(hosted.len(), server.tables.len(), "every Hosted table needs a server side");

        let lr = server.lr;
        let layout = ShardLayout::place_for(shard_cfg, &server.tables);
        let shard_tables = split_tables(&server.tables, &layout)
            // PANIC-OK: the layout was placed for exactly these tables.
            .expect("layout was placed for exactly these tables");

        let schedule = ServingSchedule {
            first: config.first_batch,
            count: config.num_batches,
            batch_size: config.batch_size,
            pipelined: config.pipelined,
        };
        let depth = if config.pipelined { config.prefetch_depth } else { 1 };
        let (ptx, prx, gtx, grx) = make_queues(depth);
        if config.overlap_analysis {
            model.enable_plan_overlap();
        }

        // TIMING: end-to-end wall clock of the run, reported to the caller.
        let start = Instant::now();
        let mut stx = Vec::with_capacity(shard_tables.len());
        let mut rrx = Vec::with_capacity(shard_tables.len());
        let mut shard_handles = Vec::with_capacity(shard_tables.len());
        for sub in shard_tables {
            // Intake sized so the router's one outstanding gather plus the
            // in-flight scattered pushes never wedge it; the reply queue
            // holds at most that one gather's answer.
            let (tx, rx) = bounded::<ShardMsg>(depth.max(1) * 2 + 2);
            let (rtx, reply_rx) = bounded::<ShardReply>(2);
            let shard_server = HostServer::new(sub, lr);
            shard_handles.push(std::thread::spawn(move || shard_serve(shard_server, rx, rtx)));
            stx.push(tx);
            rrx.push(reply_rx);
        }
        let router_handle = std::thread::spawn({
            let ds = dataset.clone();
            let layout = layout.clone();
            move || route_serve(layout, ds, schedule, stx, rrx, ptx, grx)
        });

        let caches: HashMap<usize, EmbeddingCache> =
            hosted.iter().map(|&t| (t, EmbeddingCache::new())).collect();
        let worker =
            run_worker(model, caches, lr, config.num_batches, config.overlap_analysis, prx, gtx);

        // PANIC-OK: deliberately propagates a router-thread panic to the caller.
        let gen_time = router_handle.join().expect("router thread panicked");
        let shards: Vec<HostServer> = shard_handles
            .into_iter()
            // PANIC-OK: deliberately propagates a shard-thread panic to the caller.
            .map(|h| h.join().expect("shard thread panicked"))
            .collect();
        let wall = start.elapsed();

        let mut meter = CommMeter::default();
        let mut server_cpu = Duration::ZERO;
        for s in &shards {
            meter.h2d_bytes += s.meter.h2d_bytes;
            meter.d2h_bytes += s.meter.d2h_bytes;
            meter.p2p_bytes += s.meter.p2p_bytes;
            meter.kernel_launches += s.meter.kernel_launches;
            server_cpu += s.cpu_time;
        }
        let host_tables =
            merge_tables(&shards.into_iter().map(|s| s.tables).collect::<Vec<_>>(), &layout)
                // PANIC-OK: the shards were split under this exact layout.
                .expect("shards were split under this layout");

        let completed_batches = worker.losses.len() as u64;
        let samples = completed_batches as f64 * config.batch_size as f64;
        Ok(PipelineReport {
            completed_batches,
            losses: worker.losses,
            wall,
            samples_per_sec: samples / wall.as_secs_f64(),
            stale_hits: worker.stale_hits,
            cache_peak_bytes: worker.cache_peak_bytes,
            server_meter: meter,
            server_cpu,
            loader_cpu: gen_time,
            worker_compute: worker.worker_compute,
            model: worker.model,
            host_tables,
            failure: worker.failure,
            failovers: 0,
        })
    }

    /// Trains `model` against a **replicated** sharded parameter tier:
    /// like [`PipelineTrainer::try_train_sharded`], but each shard thread
    /// serves a K-member [`ReplicaGroup`] — the primary's exactly-once
    /// intake is appended in lockstep to K-1 backups over the same stamp
    /// domain, so a primary kill at any watermark promotes a byte-identical
    /// backup and training continues without a cold restart.
    ///
    /// `repl.kill_primary_at` is the deterministic failover drill
    /// schedule: each `(shard, watermark)` kills that shard's primary
    /// right after its applied count reaches the watermark (drills that
    /// would kill the last member are skipped — the drill proves failover,
    /// not data loss). Replication, like sharding, never changes trained
    /// bytes; `PipelineReport::failovers` counts the promotions performed.
    ///
    /// `repl.replicas <= 1` with no drills delegates to the sharded path.
    pub fn try_train_replicated(
        mut model: DlrmModel,
        server: HostServer,
        dataset: &SyntheticDataset,
        config: &PipelineConfig,
        shard_cfg: &ShardConfig,
        repl: &ReplicationConfig,
    ) -> Result<PipelineReport, ServerError> {
        if repl.replicas <= 1 && repl.kill_primary_at.is_empty() {
            return Self::try_train_sharded(model, server, dataset, config, shard_cfg);
        }
        if server.mode == ServerMode::PooledEmbeddings {
            return Err(ServerError::PooledNeedsSequential);
        }
        let hosted = model.hosted_tables();
        for (t, _) in &server.tables {
            assert!(hosted.contains(t), "server hosts table {t} the model does not mark Hosted");
        }
        assert_eq!(hosted.len(), server.tables.len(), "every Hosted table needs a server side");

        let lr = server.lr;
        let layout = ShardLayout::place_for(shard_cfg, &server.tables);
        let shard_tables = split_tables(&server.tables, &layout)
            // PANIC-OK: the layout was placed for exactly these tables.
            .expect("layout was placed for exactly these tables");
        let num_shards = shard_tables.len() as u32;

        let schedule = ServingSchedule {
            first: config.first_batch,
            count: config.num_batches,
            batch_size: config.batch_size,
            pipelined: config.pipelined,
        };
        let depth = if config.pipelined { config.prefetch_depth } else { 1 };
        let (ptx, prx, gtx, grx) = make_queues(depth);
        if config.overlap_analysis {
            model.enable_plan_overlap();
        }

        // TIMING: end-to-end wall clock of the run, reported to the caller.
        let start = Instant::now();
        let mut stx = Vec::with_capacity(shard_tables.len());
        let mut rrx = Vec::with_capacity(shard_tables.len());
        let mut shard_handles = Vec::with_capacity(shard_tables.len());
        for (s, sub) in shard_tables.into_iter().enumerate() {
            let (tx, rx) = bounded::<ShardMsg>(depth.max(1) * 2 + 2);
            let (rtx, reply_rx) = bounded::<ShardReply>(2);
            let group = ReplicaGroup::new(
                HostServer::new(sub, lr),
                repl.replicas,
                s as u32,
                num_shards,
                repl.log_capacity,
            );
            let mut kills: Vec<u64> = repl
                .kill_primary_at
                .iter()
                .filter(|(shard, _)| *shard == s as u32)
                .map(|&(_, w)| w)
                .collect();
            kills.sort_unstable();
            shard_handles.push(std::thread::spawn(move || replica_serve(group, kills, rx, rtx)));
            stx.push(tx);
            rrx.push(reply_rx);
        }
        let router_handle = std::thread::spawn({
            let ds = dataset.clone();
            let layout = layout.clone();
            move || route_serve(layout, ds, schedule, stx, rrx, ptx, grx)
        });

        let caches: HashMap<usize, EmbeddingCache> =
            hosted.iter().map(|&t| (t, EmbeddingCache::new())).collect();
        let worker =
            run_worker(model, caches, lr, config.num_batches, config.overlap_analysis, prx, gtx);

        // PANIC-OK: deliberately propagates a router-thread panic to the caller.
        let gen_time = router_handle.join().expect("router thread panicked");
        let mut failovers = 0u64;
        let shards: Vec<HostServer> = shard_handles
            .into_iter()
            .map(|h| {
                // PANIC-OK: deliberately propagates a shard-thread panic to the caller.
                let (server, promoted) = h.join().expect("shard thread panicked");
                failovers += promoted;
                server
            })
            .collect();
        let wall = start.elapsed();

        let mut meter = CommMeter::default();
        let mut server_cpu = Duration::ZERO;
        for s in &shards {
            meter.h2d_bytes += s.meter.h2d_bytes;
            meter.d2h_bytes += s.meter.d2h_bytes;
            meter.p2p_bytes += s.meter.p2p_bytes;
            meter.kernel_launches += s.meter.kernel_launches;
            server_cpu += s.cpu_time;
        }
        let host_tables =
            merge_tables(&shards.into_iter().map(|s| s.tables).collect::<Vec<_>>(), &layout)
                // PANIC-OK: the shards were split under this exact layout.
                .expect("shards were split under this layout");

        let completed_batches = worker.losses.len() as u64;
        let samples = completed_batches as f64 * config.batch_size as f64;
        Ok(PipelineReport {
            completed_batches,
            losses: worker.losses,
            wall,
            samples_per_sec: samples / wall.as_secs_f64(),
            stale_hits: worker.stale_hits,
            cache_peak_bytes: worker.cache_peak_bytes,
            server_meter: meter,
            server_cpu,
            loader_cpu: gen_time,
            worker_compute: worker.worker_compute,
            model: worker.model,
            host_tables,
            failure: worker.failure,
            failovers,
        })
    }
}

/// One request to a shard server thread.
enum ShardMsg {
    /// Serve these shard-local rows (`(table id, local rows)` in layout
    /// order) for batch `seq`.
    Gather {
        /// Batch sequence number (echoed in the reply).
        seq: u64,
        /// Per table: shard-local row indices to serve.
        locals: Vec<(usize, Vec<u32>)>,
    },
    /// Apply this scattered gradient push.
    Push(GradientPush),
}

/// One shard's answer to a [`ShardMsg::Gather`].
struct ShardReply {
    /// Batch sequence number of the gather being answered.
    seq: u64,
    /// The shard's applied-push watermark at serving time — one input to
    /// the stitched (min-over-shards) global staleness stamp.
    applied: u64,
    /// Served rows, one matrix per requested table, in request order.
    rows: Vec<Matrix>,
}

/// One shard's intake loop: serve gathers against the shard's sub-tables
/// and apply scattered pushes through the per-shard
/// [`HostServer::apply_checked`] stamp domain. Any protocol violation —
/// an unknown table, a gap, a vanished router — degrades to returning
/// the shard's final state, never a panic: a production shard must
/// survive its peers.
// CONTRACT: panic-free
fn shard_serve(
    mut server: HostServer,
    rx: Receiver<ShardMsg>,
    reply: Sender<ShardReply>,
) -> HostServer {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Gather { seq, locals } => {
                let t0 = thread_cpu_time();
                let mut rows = Vec::with_capacity(locals.len());
                let mut bytes = 0usize;
                for (table_id, locs) in &locals {
                    let Some((_, bag)) = server.tables.iter().find(|(id, _)| id == table_id) else {
                        return server; // gather for a table this shard lacks
                    };
                    bytes += locs.len() * (4 + bag.dim() * 4);
                    rows.push(bag.gather_rows(locs));
                }
                server.meter.h2d(bytes);
                server.cpu_time += thread_cpu_time() - t0;
                if reply.send(ShardReply { seq, applied: server.applied, rows }).is_err() {
                    break; // router gone
                }
            }
            ShardMsg::Push(push) => {
                if server.apply_checked(&push).is_err() {
                    break; // gap or unknown table from a FIFO: degrade
                }
            }
        }
    }
    server
}

/// One replicated shard thread: [`shard_serve`] semantics, but intake
/// flows through a [`ReplicaGroup`] — every applied push lands on the
/// primary and all alive backups in lockstep, and the sorted `kills`
/// schedule executes deterministic primary-kill drills the moment the
/// applied watermark reaches each entry. A drill that would kill the
/// last alive member is skipped: the drill proves failover, not data
/// loss. Returns the surviving primary plus the promotions performed.
// CONTRACT: panic-free
fn replica_serve(
    mut group: ReplicaGroup,
    kills: Vec<u64>,
    rx: Receiver<ShardMsg>,
    reply: Sender<ShardReply>,
) -> (HostServer, u64) {
    let mut next_kill = 0usize;
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Gather { seq, locals } => {
                let Ok(primary) = group.primary_mut() else {
                    break; // whole group dead: degrade
                };
                let t0 = thread_cpu_time();
                let mut rows = Vec::with_capacity(locals.len());
                let mut bytes = 0usize;
                let mut unknown = false;
                for (table_id, locs) in &locals {
                    let Some((_, bag)) = primary.tables.iter().find(|(id, _)| id == table_id)
                    else {
                        unknown = true; // gather for a table this shard lacks
                        break;
                    };
                    bytes += locs.len() * (4 + bag.dim() * 4);
                    rows.push(bag.gather_rows(locs));
                }
                if unknown {
                    break;
                }
                primary.meter.h2d(bytes);
                primary.cpu_time += thread_cpu_time() - t0;
                if reply.send(ShardReply { seq, applied: group.applied(), rows }).is_err() {
                    break; // router gone
                }
            }
            ShardMsg::Push(push) => {
                if group.apply_checked(&push).is_err() {
                    break; // gap or unknown table from a FIFO: degrade
                }
                // Failover drill: kill the primary once its watermark
                // reaches the next scheduled point. Adjacent watermarks
                // exercise kill-during-promotion; lockstep replication
                // makes the promoted backup byte-identical, so training
                // continues as if nothing happened.
                while next_kill < kills.len() && group.applied() >= kills[next_kill] {
                    next_kill += 1;
                    if group.alive() <= 1 {
                        continue; // never drill away the last copy
                    }
                    if group.kill_primary().is_err() {
                        break;
                    }
                }
            }
        }
    }
    let failovers = group.failovers();
    match group.into_primary() {
        Ok(server) => (server, failovers),
        // PANIC-OK: the drill loop never kills the last alive member, so
        // a dead group here means the group was constructed dead (zero
        // replicas), which `ReplicaGroup::new` forbids.
        Err(_) => unreachable!("replica drills never kill the last member"),
    }
}

/// The router thread: plays the [`ServingLoop`] role against N shard
/// threads. Per batch it computes the global unique rows per table,
/// scatters them to their owning shards, reassembles the replies into
/// one [`PrefetchedBatch`] stamped with the minimum per-shard watermark,
/// and forwards each worker push as per-shard sub-pushes. Returns the
/// batch-generation CPU time (the data-loader role it also plays).
fn route_serve(
    layout: ShardLayout,
    dataset: SyntheticDataset,
    schedule: ServingSchedule,
    stx: Vec<Sender<ShardMsg>>,
    rrx: Vec<Receiver<ShardReply>>,
    ptx: Sender<PrefetchedBatch>,
    grx: Receiver<GradientPush>,
) -> Duration {
    let ServingSchedule { first, count, batch_size, pipelined } = schedule;
    let num_shards = stx.len();
    let mut router = ShardRouter::new(layout);
    let mut scratch = crate::router::ShardScatter::new();
    let mut gen_time = Duration::ZERO;
    let mut forwarded = 0u64;
    'serve: for k in 0..count {
        if pipelined {
            // opportunistically absorb and scatter any pending gradients
            while let Ok(push) = grx.try_recv() {
                if forward_push(&mut router, &stx, &push).is_err() {
                    break 'serve;
                }
                forwarded += 1;
            }
        }
        let t0 = thread_cpu_time();
        let batch = dataset.batch(first + k, batch_size);
        gen_time += thread_cpu_time() - t0;

        // Fan-out plan: per table the global unique rows, their per-shard
        // split, and the slot lists that put served rows back in place.
        let mut plan: Vec<(usize, Vec<u32>, Vec<Vec<u32>>)> = Vec::new();
        let mut locals: Vec<Vec<(usize, Vec<u32>)>> = vec![Vec::new(); num_shards];
        for t in router.layout().tables() {
            let field = &batch.fields[t.table_id];
            let mut unique: Vec<u32> = field.indices.clone();
            unique.sort_unstable();
            unique.dedup();
            scratch.reset(num_shards);
            if router.layout().scatter_into(t.table_id, &unique, &mut scratch).is_err() {
                break 'serve; // an index outside the placed rows: degrade
            }
            for (s, shard_locals) in locals.iter_mut().enumerate() {
                shard_locals.push((t.table_id, scratch.locals[s].clone()));
            }
            plan.push((t.table_id, unique, scratch.slots.clone()));
        }
        for (tx, l) in stx.iter().zip(locals) {
            if tx.send(ShardMsg::Gather { seq: k, locals: l }).is_err() {
                break 'serve; // shard gone
            }
        }
        let mut applied_through = u64::MAX;
        let mut shard_rows: Vec<Vec<Matrix>> = Vec::with_capacity(num_shards);
        for rx in &rrx {
            match rx.recv() {
                Ok(reply) if reply.seq == k => {
                    applied_through = applied_through.min(reply.applied);
                    shard_rows.push(reply.rows);
                }
                _ => break 'serve, // shard died or desynchronized
            }
        }
        let mut tables = Vec::with_capacity(plan.len());
        for (i, (table_id, unique, slots)) in plan.into_iter().enumerate() {
            let dim = shard_rows[0][i].cols();
            let mut rows = Matrix::zeros(unique.len(), dim);
            for (srows, shard_slots) in shard_rows.iter().zip(&slots) {
                for (j, &slot) in shard_slots.iter().enumerate() {
                    rows.row_mut(slot as usize).copy_from_slice(srows[i].row(j));
                }
            }
            tables.push((table_id, unique, rows));
        }
        let pf =
            PrefetchedBatch { batch_seq: k, applied_through, batch, tables, pooled: Vec::new() };
        if ptx.send(pf).is_err() {
            break; // worker gone
        }
        if !pipelined {
            match grx.recv() {
                Ok(push) => {
                    if forward_push(&mut router, &stx, &push).is_err() {
                        break;
                    }
                    forwarded += 1;
                }
                Err(_) => break,
            }
        }
    }
    drop(ptx);
    // Shutdown handshake: scatter every push the worker delivered before
    // hanging up, so all shards drain to the same watermark.
    while forwarded < count {
        match grx.recv() {
            Ok(push) => {
                if forward_push(&mut router, &stx, &push).is_err() {
                    break;
                }
                forwarded += 1;
            }
            Err(_) => break,
        }
    }
    gen_time
}

/// Scatters one worker push and forwards the per-shard sub-pushes with
/// bounded retry. Errors mean a shard vanished or the push referenced
/// rows outside the layout — either way the serving run degrades.
fn forward_push(
    router: &mut ShardRouter,
    stx: &[Sender<ShardMsg>],
    push: &GradientPush,
) -> Result<(), ()> {
    let Ok(scattered) = router.scatter_push(push) else {
        return Err(());
    };
    for (s, (tx, p)) in stx.iter().zip(scattered).enumerate() {
        let seed = splitmix64(push.batch_seq ^ ((s as u64) << 32));
        if send_with_retry(tx, ShardMsg::Push(p), 16, seed).is_err() {
            return Err(());
        }
    }
    Ok(())
}

/// What the worker side of a pipeline run produced.
struct WorkerRun {
    /// Final worker model state.
    model: DlrmModel,
    /// Per-batch training losses (one per batch that actually trained).
    losses: Vec<f32>,
    /// Stale pre-fetched rows the caches corrected.
    stale_hits: u64,
    /// Peak cache footprint across the run.
    cache_peak_bytes: usize,
    /// Measured device-compute time.
    worker_compute: Duration,
    /// Why the worker stopped early, if it did.
    failure: Option<ServerError>,
}

/// The worker (device) side of the pipeline: consume pre-fetched
/// batches, train, refresh the caches with post-update rows, push
/// gradients. Shared verbatim by the single-server and sharded trainers
/// — the worker is oblivious to how many shards assembled its
/// [`PrefetchedBatch`].
// CONTRACT: panic-free
fn run_worker(
    mut model: DlrmModel,
    mut caches: HashMap<usize, EmbeddingCache>,
    lr: f32,
    num_batches: u64,
    overlap_analysis: bool,
    prx: crossbeam::channel::Receiver<crate::server::PrefetchedBatch>,
    gtx: crossbeam::channel::Sender<GradientPush>,
) -> WorkerRun {
    let mut losses = Vec::with_capacity(num_batches as usize);
    let mut cache_peak = 0usize;
    let mut worker_compute = Duration::ZERO;
    let mut failure = None;

    for k in 0..num_batches {
        // A vanished server (its thread died or dropped the queue) is a
        // degraded early stop for the worker, not a panic: the partial
        // report still carries every batch that trained.
        let Ok(mut pf) = prx.recv() else {
            break;
        };
        assert_eq!(pf.batch_seq, k);
        let batch = std::mem::replace(
            &mut pf.batch,
            el_data::MiniBatch {
                dense: Vec::new(),
                num_dense: 0,
                fields: Vec::new(),
                labels: Vec::new(),
            },
        );

        // Queue TT pointer preparation now so it overlaps the host
        // gather work below (cache sync + pooling).
        if overlap_analysis {
            model.prefetch_plans(&batch);
        }

        // Stage 1 (Figure 9): synchronize pre-fetched rows with the
        // cache, then pool them into per-sample embeddings. In pooled
        // (reference-DLRM) mode the CPU already pooled — use as is.
        let pooled_mode = !pf.pooled.is_empty();
        let mut hosted_embs = Vec::with_capacity(pf.tables.len() + pf.pooled.len());
        for (t, unique, rows) in &mut pf.tables {
            // PANIC-OK: a cache was created for every hosted table at startup.
            caches.get_mut(t).unwrap().sync(unique, rows, pf.applied_through);
            let field = &batch.fields[*t];
            hosted_embs.push((*t, pool_prefetched(&field.indices, &field.offsets, unique, rows)));
        }
        for (t, pooled) in &pf.pooled {
            hosted_embs.push((*t, pooled.clone()));
        }

        // Device compute: MLPs + TT tables + interaction.
        let t0 = thread_cpu_time();
        let out = model.train_step_hybrid(&batch, &hosted_embs);
        worker_compute += thread_cpu_time() - t0;
        losses.push(out.loss);

        // Stage 3: aggregate hosted gradients, refresh the cache with
        // the post-update rows (bit-identical to what the server will
        // hold) and push. Pooled mode ships the raw pooled gradient
        // back instead (the CPU does the backward there).
        let mut pushes = Vec::new();
        let mut pooled_pushes = Vec::new();
        for (t, d_emb) in &out.hosted_grads {
            if pooled_mode {
                pooled_pushes.push((*t, d_emb.clone()));
                continue;
            }
            let field = &batch.fields[*t];
            let (_, unique, rows) = pf
                .tables
                .iter()
                .find(|(id, _, _)| id == t)
                // PANIC-OK: hosted tables and prefetched tables are the same set.
                .expect("hosted gradient for a table that was not prefetched");
            let grad = aggregate_to_unique(&field.indices, &field.offsets, unique, d_emb);
            let mut updated = rows.clone();
            for (slot, _) in unique.iter().enumerate() {
                let g = &grad.values[slot * grad.dim..(slot + 1) * grad.dim];
                for (w, gv) in updated.row_mut(slot).iter_mut().zip(g) {
                    *w -= lr * gv;
                }
            }
            // PANIC-OK: a cache was created for every hosted table at startup.
            caches.get_mut(t).unwrap().insert(unique, &updated, k);
            pushes.push((*t, grad));
        }
        // Bounded retry with backoff: a transiently saturated gradient
        // queue is ridden out, a wedged or vanished server ends the
        // run gracefully after the retry budget instead of blocking
        // this worker forever.
        let push = GradientPush { batch_seq: k, tables: pushes, pooled: pooled_pushes };
        if let Err((_, cause)) = send_with_retry(&gtx, push, 16, splitmix64(k)) {
            failure = Some(cause);
            break;
        }

        cache_peak = cache_peak.max(caches.values().map(EmbeddingCache::footprint_bytes).sum());
    }
    drop(gtx);
    WorkerRun {
        model,
        stale_hits: caches.values().map(|c| c.stale_hits).sum(),
        losses,
        cache_peak_bytes: cache_peak,
        worker_compute,
        failure,
    }
}

impl PipelineTrainer {
    /// Captures the full training state as of `next_batch` (the next
    /// dataset batch an uninterrupted run would train): worker model with
    /// optimizer accumulators, hosted tables, and the loader cursor.
    pub fn capture(
        model: &DlrmModel,
        host_tables: &[(usize, EmbeddingBag)],
        lr: f32,
        next_batch: u64,
    ) -> TrainingCheckpoint {
        TrainingCheckpoint {
            model: DlrmCheckpoint::capture(model),
            server: Some(ServerCheckpoint {
                tables: host_tables
                    .iter()
                    .map(|(id, table)| HostedTableCheckpoint { id: *id, table: table.clone() })
                    .collect(),
                lr,
                applied: next_batch,
                shard: 0,
                num_shards: 1,
            }),
            next_batch,
            workers: Vec::new(),
        }
    }

    /// Resumes an interrupted run from a checkpoint and trains the
    /// remaining batches of the schedule described by `config` (the
    /// *original* run's config: the checkpoint's cursor must fall inside
    /// `[first_batch, first_batch + num_batches]`).
    ///
    /// The restored trajectory is byte-identical to the uninterrupted
    /// one: the model carries its optimizer accumulators, hosted tables
    /// resume at their exact values, and the loader fast-forwards to the
    /// cursor. Queues, caches and the plan prefetcher are rebuilt —
    /// they hold no state that affects training values (the embedding
    /// cache only ever *corrects toward* server truth, and a fresh
    /// segment starts from server truth).
    pub fn resume_from(
        ckpt: TrainingCheckpoint,
        dataset: &SyntheticDataset,
        config: &PipelineConfig,
    ) -> Result<PipelineReport, CkptError> {
        let end = config.first_batch + config.num_batches;
        if ckpt.next_batch < config.first_batch || ckpt.next_batch > end {
            return Err(CkptError::StateMismatch(format!(
                "checkpoint cursor {} outside the run schedule [{}, {end}]",
                ckpt.next_batch, config.first_batch
            )));
        }
        let model = ckpt.model.restore()?;
        let mut server = match ckpt.server {
            Some(s) => s.restore(),
            None => HostServer::new(Vec::new(), model.lr),
        };
        // The pipeline numbers pushes relative to each serving schedule,
        // so a resumed segment starts its gradient sequence at zero; the
        // checkpoint's absolute `applied` stamp is for consumers that use
        // absolute sequence numbers (the simulator).
        server.applied = 0;
        let remaining = PipelineConfig {
            first_batch: ckpt.next_batch,
            num_batches: end - ckpt.next_batch,
            ..*config
        };
        Ok(Self::train(model, server, dataset, &remaining))
    }

    /// Trains the full schedule in segments of `every` batches, saving a
    /// durable checkpoint into `store` after each segment. Returns the
    /// aggregate report plus the saved checkpoint names (oldest first).
    ///
    /// Because pipelined training is bit-identical to sequential training
    /// and each segment restarts from exactly the state the previous one
    /// ended with, the final model is byte-identical to a single
    /// uninterrupted `train` call — checkpointing is pure durability.
    pub fn train_with_checkpoints<S: Storage>(
        model: DlrmModel,
        server: HostServer,
        dataset: &SyntheticDataset,
        config: &PipelineConfig,
        store: &mut CkptStore<S>,
        every: u64,
    ) -> Result<(PipelineReport, Vec<String>), CkptError> {
        assert!(every > 0, "checkpoint interval must be at least one batch");
        let lr = server.lr;
        let mode = server.mode;
        let end = config.first_batch + config.num_batches;

        let mut saved = Vec::new();
        let mut cursor = config.first_batch;
        let mut next_model = model;
        let mut next_server = server;

        let mut losses = Vec::new();
        let mut wall = Duration::ZERO;
        let mut stale_hits = 0u64;
        let mut cache_peak = 0usize;
        let mut meter = CommMeter::default();
        let mut server_cpu = Duration::ZERO;
        let mut loader_cpu = Duration::ZERO;
        let mut worker_compute = Duration::ZERO;

        loop {
            let seg = every.min(end - cursor);
            let seg_cfg = PipelineConfig { first_batch: cursor, num_batches: seg, ..*config };
            let report = Self::train(next_model, next_server, dataset, &seg_cfg);
            cursor += report.completed_batches;

            losses.extend_from_slice(&report.losses);
            wall += report.wall;
            stale_hits += report.stale_hits;
            cache_peak = cache_peak.max(report.cache_peak_bytes);
            meter.h2d_bytes += report.server_meter.h2d_bytes;
            meter.d2h_bytes += report.server_meter.d2h_bytes;
            meter.p2p_bytes += report.server_meter.p2p_bytes;
            meter.kernel_launches += report.server_meter.kernel_launches;
            server_cpu += report.server_cpu;
            loader_cpu += report.loader_cpu;
            worker_compute += report.worker_compute;

            let degraded = report.completed_batches < seg;
            saved.push(store.save(&Self::capture(
                &report.model,
                &report.host_tables,
                lr,
                cursor,
            ))?);
            if cursor >= end || degraded || report.completed_batches == 0 {
                let completed_batches = losses.len() as u64;
                let samples = completed_batches as f64 * config.batch_size as f64;
                let final_report = PipelineReport {
                    completed_batches,
                    losses,
                    wall,
                    samples_per_sec: samples / wall.as_secs_f64(),
                    stale_hits,
                    cache_peak_bytes: cache_peak,
                    server_meter: meter,
                    server_cpu,
                    loader_cpu,
                    worker_compute,
                    failure: report.failure,
                    failovers: report.failovers,
                    model: report.model,
                    host_tables: report.host_tables,
                };
                return Ok((final_report, saved));
            }
            next_model = report.model;
            let mut server = HostServer::new(report.host_tables, lr);
            server.mode = mode;
            next_server = server;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_data::DatasetSpec;
    use el_dlrm::{DlrmConfig, EmbeddingLayer};
    use rand::SeedableRng;

    fn setup(seed: u64) -> (DlrmModel, HostServer, SyntheticDataset) {
        setup_with(seed, el_dlrm::OptimizerKind::Sgd, usize::MAX)
    }

    fn setup_with(
        seed: u64,
        optimizer: el_dlrm::OptimizerKind,
        tt_threshold: usize,
    ) -> (DlrmModel, HostServer, SyntheticDataset) {
        // Table 0 has the largest cardinality so a finite `tt_threshold`
        // can make it TT while tables 1/2 stay dense (and get hosted).
        let mut spec = DatasetSpec::toy(3, 200, 1_000_000);
        spec.num_dense = 4;
        spec.table_cardinalities = vec![400, 200, 200];
        let dataset = SyntheticDataset::new(spec, 11);

        let cfg = DlrmConfig {
            num_dense: 4,
            table_cardinalities: vec![400, 200, 200],
            dim: 8,
            bottom_hidden: vec![16],
            top_hidden: vec![16],
            tt_threshold,
            tt_rank: 8,
            lr: 0.05,
            optimizer,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut model = DlrmModel::new(&cfg, &mut rng);

        // host tables 1 and 2; table 0 stays on the worker
        let mut host = Vec::new();
        for t in [1usize, 2] {
            let dense =
                match std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim: 8 }) {
                    EmbeddingLayer::Dense(bag) => bag,
                    _ => unreachable!(),
                };
            host.push((t, dense));
        }
        (model, HostServer::new(host, 0.05), dataset)
    }

    fn run(pipelined: bool, depth: usize, seed: u64) -> PipelineReport {
        let (model, server, dataset) = setup(seed);
        let config = PipelineConfig {
            batch_size: 64,
            first_batch: 0,
            num_batches: 12,
            prefetch_depth: depth,
            pipelined,
            overlap_analysis: pipelined,
        };
        PipelineTrainer::train(model, server, &dataset, &config)
    }

    #[test]
    fn try_train_rejects_unservable_schedules_before_spawning() {
        let (model, server, dataset) = setup(9);
        let server = server.with_mode(crate::server::ServerMode::PooledEmbeddings);
        let config = PipelineConfig { pipelined: true, ..PipelineConfig::default() };
        match PipelineTrainer::try_train(model, server, &dataset, &config) {
            Err(ServerError::PooledNeedsSequential) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("pipelined pooled mode must be rejected"),
        }
    }

    #[test]
    fn losses_are_finite_and_counted() {
        let r = run(true, 4, 1);
        assert_eq!(r.losses.len(), 12);
        assert_eq!(r.completed_batches, 12);
        assert!(r.losses.iter().all(|l| l.is_finite()));
        assert!(r.samples_per_sec > 0.0);
    }

    #[test]
    fn pipelined_equals_sequential_bitwise() {
        // The embedding cache must make pipelined training produce the
        // exact parameter trajectory of sequential training.
        let seq = run(false, 1, 2);
        let pipe = run(true, 4, 2);
        assert_eq!(seq.losses, pipe.losses, "loss trajectories diverged");
        for ((ta, a), (tb, b)) in seq.host_tables.iter().zip(&pipe.host_tables) {
            assert_eq!(ta, tb);
            assert_eq!(a.weight.as_slice(), b.weight.as_slice(), "host table {ta} diverged");
        }
    }

    #[test]
    fn pipelined_run_hits_the_cache() {
        // With skewed access and queue depth > 1, some prefetched rows must
        // be stale and get corrected.
        let r = run(true, 4, 3);
        assert!(r.stale_hits > 0, "expected stale prefetches under pipelining");
        assert!(r.cache_peak_bytes > 0);
    }

    #[test]
    fn sequential_run_never_needs_the_cache() {
        let r = run(false, 1, 4);
        assert_eq!(r.stale_hits, 0, "sequential mode can never see stale rows");
    }

    fn run_sharded(pipelined: bool, depth: usize, seed: u64, shards: u32) -> PipelineReport {
        let (model, server, dataset) = setup(seed);
        let config = PipelineConfig {
            batch_size: 64,
            first_batch: 0,
            num_batches: 12,
            prefetch_depth: depth,
            pipelined,
            overlap_analysis: pipelined,
        };
        let shard_cfg =
            ShardConfig { num_shards: shards, rows_per_range: 16, placement_seed: 0xE1 };
        PipelineTrainer::try_train_sharded(model, server, &dataset, &config, &shard_cfg).unwrap()
    }

    fn assert_same_training(a: &PipelineReport, b: &PipelineReport) {
        assert_eq!(a.losses, b.losses, "loss trajectories diverged");
        assert_eq!(a.host_tables.len(), b.host_tables.len());
        for ((ta, wa), (tb, wb)) in a.host_tables.iter().zip(&b.host_tables) {
            assert_eq!(ta, tb);
            assert_eq!(wa.weight.as_slice(), wb.weight.as_slice(), "host table {ta} diverged");
        }
    }

    #[test]
    fn sharded_training_matches_single_server_bitwise() {
        // The tentpole equivalence: an N-way sharded tier trains the
        // exact bytes of the single server, pipelined or not.
        let single = run(true, 4, 6);
        let sharded = run_sharded(true, 4, 6, 3);
        assert_eq!(sharded.completed_batches, 12);
        assert_same_training(&single, &sharded);
        let seq_single = run(false, 1, 6);
        let seq_sharded = run_sharded(false, 1, 6, 3);
        assert_same_training(&seq_single, &seq_sharded);
        // and the sharded bus traffic sums to real bytes
        assert!(sharded.server_meter.h2d_bytes > 0);
        assert!(sharded.server_meter.d2h_bytes > 0);
    }

    #[test]
    fn one_shard_delegates_to_the_single_server_path() {
        let single = run(true, 4, 7);
        let one = run_sharded(true, 4, 7, 1);
        assert_same_training(&single, &one);
    }

    fn run_replicated(
        seed: u64,
        shards: u32,
        replicas: u32,
        kills: Vec<(u32, u64)>,
    ) -> PipelineReport {
        let (model, server, dataset) = setup(seed);
        let config = PipelineConfig {
            batch_size: 64,
            first_batch: 0,
            num_batches: 12,
            prefetch_depth: 4,
            pipelined: true,
            overlap_analysis: true,
        };
        let shard_cfg =
            ShardConfig { num_shards: shards, rows_per_range: 16, placement_seed: 0xE1 };
        let repl = ReplicationConfig {
            replicas,
            log_capacity: 4,
            kill_primary_at: kills,
            ..ReplicationConfig::default()
        };
        PipelineTrainer::try_train_replicated(model, server, &dataset, &config, &shard_cfg, &repl)
            .unwrap()
    }

    #[test]
    fn replicated_training_matches_single_server_bitwise() {
        // Replication is pure redundancy: K lockstep copies per shard
        // train the exact bytes of the unreplicated single server.
        let single = run(true, 4, 8);
        let replicated = run_replicated(8, 3, 2, vec![]);
        assert_eq!(replicated.completed_batches, 12);
        assert_eq!(replicated.failovers, 0);
        assert!(replicated.failure.is_none());
        assert_same_training(&single, &replicated);
    }

    #[test]
    fn primary_kills_mid_run_leave_trained_bytes_unchanged() {
        // The tentpole claim: killing primaries mid-training (including
        // two adjacent watermarks on shard 0 — a kill during the window
        // the first promotion just opened) promotes byte-identical
        // backups and the merged result still matches the never-failed
        // single server, with no cold restart.
        let single = run(true, 4, 9);
        let kills = vec![(0, 3), (0, 4), (1, 6), (2, 9)];
        let replicated = run_replicated(9, 3, 3, kills);
        assert_eq!(replicated.completed_batches, 12);
        assert_eq!(replicated.failovers, 4);
        assert!(replicated.failure.is_none());
        assert_same_training(&single, &replicated);
    }

    #[test]
    fn drills_never_kill_the_last_copy() {
        // More kills than spare replicas: the drill schedule is clamped
        // so the final copy survives and the run still completes.
        let single = run(true, 4, 10);
        let kills = vec![(0, 2), (0, 5), (0, 8)];
        let replicated = run_replicated(10, 2, 2, kills);
        assert_eq!(replicated.completed_batches, 12);
        assert_eq!(replicated.failovers, 1, "only one spare existed to promote");
        assert_same_training(&single, &replicated);
    }

    #[test]
    fn unreplicated_config_delegates_to_the_sharded_path() {
        let sharded = run_sharded(true, 4, 11, 3);
        let replicated = run_replicated(11, 3, 1, vec![]);
        assert_eq!(replicated.failovers, 0);
        assert_same_training(&sharded, &replicated);
    }

    #[test]
    fn sharded_rejects_pooled_mode_with_a_typed_error() {
        let (model, server, dataset) = setup(8);
        let server = server.with_mode(crate::server::ServerMode::PooledEmbeddings);
        let config = PipelineConfig { pipelined: false, ..PipelineConfig::default() };
        let shard_cfg = ShardConfig { num_shards: 2, ..ShardConfig::default() };
        match PipelineTrainer::try_train_sharded(model, server, &dataset, &config, &shard_cfg) {
            Err(ServerError::PooledNeedsSequential) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("sharded pooled mode must be rejected"),
        }
    }

    #[test]
    fn server_meter_accounts_transfers() {
        let r = run(true, 2, 5);
        assert!(r.server_meter.h2d_bytes > 0);
        assert!(r.server_meter.d2h_bytes > 0);
    }

    /// Trains `total` batches uninterrupted, and the same schedule
    /// interrupted at `cut` (checkpoint through the framed byte format,
    /// then `resume_from`), asserting the two end in byte-identical
    /// state: loss trajectory, worker model (including optimizer
    /// accumulators, via the v2 checkpoint bytes) and hosted tables.
    fn assert_resume_identical(optimizer: el_dlrm::OptimizerKind, tt_threshold: usize, cut: u64) {
        let total = 12u64;
        let config = PipelineConfig {
            batch_size: 64,
            first_batch: 0,
            num_batches: total,
            prefetch_depth: 4,
            pipelined: true,
            overlap_analysis: true,
        };

        let (model, server, dataset) = setup_with(21, optimizer, tt_threshold);
        let oracle = PipelineTrainer::train(model, server, &dataset, &config);

        let (model, server, dataset) = setup_with(21, optimizer, tt_threshold);
        let head_cfg = PipelineConfig { num_batches: cut, ..config };
        let head = PipelineTrainer::train(model, server, &dataset, &head_cfg);
        assert_eq!(head.completed_batches, cut);
        let ckpt = PipelineTrainer::capture(&head.model, &head.host_tables, 0.05, cut);
        // Round-trip through the durable byte format: what resumes is
        // exactly what a post-crash recovery would decode from storage.
        let ckpt =
            crate::ckpt::TrainingCheckpoint::from_framed_bytes(&ckpt.to_framed_bytes()).unwrap();
        let tail = PipelineTrainer::resume_from(ckpt, &dataset, &config).unwrap();
        assert_eq!(tail.completed_batches, total - cut);

        let mut losses = head.losses.clone();
        losses.extend_from_slice(&tail.losses);
        assert_eq!(oracle.losses, losses, "loss trajectory diverged after resume");
        assert_eq!(
            DlrmCheckpoint::capture(&oracle.model).to_bytes(),
            DlrmCheckpoint::capture(&tail.model).to_bytes(),
            "worker model state diverged after resume"
        );
        for ((ta, a), (tb, b)) in oracle.host_tables.iter().zip(&tail.host_tables) {
            assert_eq!(ta, tb);
            assert_eq!(a.weight.as_slice(), b.weight.as_slice(), "host table {ta} diverged");
        }
    }

    #[test]
    fn resume_is_byte_identical_dense_sgd() {
        assert_resume_identical(el_dlrm::OptimizerKind::Sgd, usize::MAX, 5);
    }

    #[test]
    fn resume_is_byte_identical_tt_adagrad() {
        // TT table 0 + Adagrad exercises the v2 accumulator persistence:
        // without it the tail run would re-start accumulators and diverge.
        assert_resume_identical(el_dlrm::OptimizerKind::Adagrad { eps: 1e-8 }, 300, 7);
    }

    #[test]
    fn resume_rejects_cursor_outside_schedule() {
        let (model, _, _) = setup(3);
        let ckpt = PipelineTrainer::capture(&model, &[], 0.05, 99);
        let (_, _, dataset) = setup(3);
        let config = PipelineConfig { num_batches: 12, ..PipelineConfig::default() };
        match PipelineTrainer::resume_from(ckpt, &dataset, &config) {
            Err(CkptError::StateMismatch(_)) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("cursor beyond the schedule must be rejected"),
        }
    }

    #[test]
    fn segmented_checkpointing_matches_uninterrupted_run() {
        use crate::ckpt::{CkptStore, MemStorage};
        use std::sync::Arc;

        let config = PipelineConfig {
            batch_size: 64,
            first_batch: 0,
            num_batches: 12,
            prefetch_depth: 4,
            pipelined: true,
            overlap_analysis: true,
        };
        let (model, server, dataset) = setup(31);
        let oracle = PipelineTrainer::train(model, server, &dataset, &config);

        let (model, server, dataset) = setup(31);
        let storage = Arc::new(MemStorage::new());
        let mut store = CkptStore::open(Arc::clone(&storage), 2).unwrap();
        let (report, saved) = PipelineTrainer::train_with_checkpoints(
            model, server, &dataset, &config, &mut store, 5,
        )
        .unwrap();

        assert_eq!(saved.len(), 3, "segments of 5+5+2 batches");
        assert_eq!(report.completed_batches, 12);
        assert_eq!(oracle.losses, report.losses, "checkpointing must not change training");
        assert_eq!(
            DlrmCheckpoint::capture(&oracle.model).to_bytes(),
            DlrmCheckpoint::capture(&report.model).to_bytes(),
        );
        // The store scans back the newest valid checkpoint: the final one.
        let (_, latest) = store.latest_valid().unwrap();
        assert_eq!(latest.next_batch, 12);
        // Retention kept only the newest 2 of the 3 saved.
        assert_eq!(store.names_newest_first().unwrap().len(), 2);
    }
}
