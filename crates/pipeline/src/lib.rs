//! # el-pipeline — the TT-based pipeline training system (paper §V)
//!
//! EL-Rec's system layer: a parameter-server architecture where MLPs and
//! TT tables are replicated on workers while overflow embedding tables stay
//! in host memory, served through a **pre-fetch queue** and a **gradient
//! queue** so CPU-side gathering/updating overlaps GPU-side training.
//!
//! * [`device`] — the simulated-device cost model (HBM capacity, PCIe /
//!   NVLink bandwidth, kernel-launch overhead) standing in for the paper's
//!   V100/T4 testbeds; see DESIGN.md's substitution table,
//! * [`cache`] — the embedding cache that resolves the read-after-write
//!   conflict of pipelined training (paper §V-B, Figure 10), implemented
//!   with version watermarks (provably equivalent to the paper's
//!   life-cycle counters),
//! * [`server`] — the host-memory parameter server with both queues,
//! * [`trainer`] — the three-stage pipelined trainer (Figure 9) and its
//!   sequential degenerate (queue depth 1, the Fig. 16 baseline),
//! * [`parallel`] — data-parallel multi-worker training with gradient
//!   all-reduce (the Fig. 12/13 EL-Rec configuration),
//! * [`placement`] — the heterogeneous per-table planner (dense / TT-rank
//!   ladder / hosted) that replaces TT-Rec's homogeneous compression.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod ckpt;
pub mod device;
pub mod parallel;
pub mod placement;
pub mod replica;
pub mod router;
pub mod server;
pub mod trainer;

pub use cache::EmbeddingCache;
pub use ckpt::{CkptError, CkptStore, FsStorage, MemStorage, Storage, TrainingCheckpoint};
pub use device::{CommMeter, DeviceSpec};
pub use parallel::DataParallelTrainer;
pub use placement::{plan_placement, PlacementPlan, PlannerConfig, TablePlacement};
pub use replica::{
    FailureDetector, GradientLog, HeartbeatConfig, ReplicaError, ReplicaGroup, ReplicationConfig,
};
pub use router::{
    merge_tables, split_tables, RouterError, RowRoute, ShardConfig, ShardLayout, ShardRouter,
    ShardScatter, TableOwnership,
};
pub use trainer::{PipelineConfig, PipelineReport, PipelineTrainer};
