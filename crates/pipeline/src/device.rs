//! Simulated training devices.
//!
//! The paper evaluates on AWS p3.8xlarge (4x V100, PCIe 3.0) and
//! g4dn.12xlarge (4x T4). This machine has no GPU, so — per the
//! substitution rule in DESIGN.md — framework comparisons run their math on
//! the CPU and account *communication* with an analytical model: every
//! byte that would cross PCIe/NVLink is metered, and simulated transfer
//! time is added to measured compute time. Work-reduction ratios
//! (compression, reuse, aggregation) are hardware-independent, so the
//! *shape* of the end-to-end comparisons survives the substitution.

use std::time::Duration;

/// Per-thread CPU time via `CLOCK_THREAD_CPUTIME_ID`.
///
/// Stage accounting must survive single-core interleaving: wall-clock
/// deltas on a preempted thread include the *other* thread's work, while
/// thread CPU time counts only cycles this thread actually burned.
pub fn thread_cpu_time() -> Duration {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: ts is a valid out-pointer; the clock id is a constant.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
}

/// Measures the per-thread CPU time consumed by `f`.
pub fn cpu_timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = thread_cpu_time();
    let out = f();
    (out, thread_cpu_time() - start)
}

/// Static description of one accelerator.
#[derive(Clone, Copy, Debug)]
pub struct DeviceSpec {
    /// Marketing name for report output.
    pub name: &'static str,
    /// High-bandwidth-memory capacity in bytes (what embedding placement
    /// decisions are made against).
    pub hbm_bytes: usize,
    /// Host-device bandwidth in bytes/second (PCIe).
    pub pcie_bps: f64,
    /// Device-device bandwidth in bytes/second (NVLink or PCIe P2P).
    pub p2p_bps: f64,
    /// Fixed overhead per kernel launch, seconds.
    pub kernel_launch_s: f64,
    /// Aggregate speedup of this device over the measuring CPU core for a
    /// whole mixed training step (used where per-kernel-class splits are
    /// unavailable). Measured *device-side* compute is divided by this
    /// factor; *host-side* work (parameter-server gather/update) stays at
    /// CPU speed. Calibration: a V100 sustains ~10 TFLOP/s on DLRM-sized
    /// GEMMs versus ~10 GFLOP/s for one Xeon core (~1000x), and ~100x on
    /// memory-bound gathers; the aggregate sits between the two. Absolute
    /// values are knobs — comparisons derive their shape from the
    /// CPU/device/bus split, which the model preserves.
    pub compute_scale: f64,
    /// Speedup for GEMM-class device kernels (TT chains, MLPs,
    /// interaction): GPUs run dense math near peak, so this exceeds
    /// `compute_scale`.
    pub gemm_scale: f64,
    /// Speedup for memory-bound gather/scatter kernels (dense embedding
    /// lookup/update): bounded by HBM vs host-cache bandwidth, well below
    /// `gemm_scale`.
    pub gather_scale: f64,
    /// Parallel speedup of the *host* CPU over the measuring single core
    /// (the paper's parameter server runs on a full multi-core Xeon).
    pub host_scale: f64,
    /// Speedup for TT-chain kernels (many small batched GEMMs): lower GPU
    /// efficiency than large MLP GEMMs. Calibrated so the simulated
    /// TT-vs-dense lookup ratio reproduces the published GPU measurements
    /// (TT-Rec's lookup is ~2.3x a dense `EmbeddingBag` lookup).
    pub tt_scale: f64,
}

impl DeviceSpec {
    /// Tesla V100 16 GB (AWS p3.8xlarge): PCIe 3.0 x16, NVLink pairs.
    pub fn v100() -> Self {
        Self {
            name: "V100-16GB",
            hbm_bytes: 16 * (1 << 30),
            pcie_bps: 12.0e9,
            p2p_bps: 150.0e9,
            kernel_launch_s: 5.0e-6,
            compute_scale: 200.0,
            gemm_scale: 1000.0,
            gather_scale: 100.0,
            host_scale: 16.0,
            tt_scale: 450.0,
        }
    }

    /// Tesla T4 16 GB (AWS g4dn.12xlarge): PCIe 3.0 x8, no NVLink.
    pub fn t4() -> Self {
        Self {
            name: "T4-16GB",
            hbm_bytes: 16 * (1 << 30),
            pcie_bps: 6.0e9,
            p2p_bps: 6.0e9,
            kernel_launch_s: 5.0e-6,
            compute_scale: 80.0,
            gemm_scale: 400.0,
            gather_scale: 60.0,
            host_scale: 16.0,
            tt_scale: 180.0,
        }
    }

    /// A deliberately small device for tests (forces host placement).
    pub fn tiny(hbm_bytes: usize) -> Self {
        Self {
            name: "tiny",
            hbm_bytes,
            pcie_bps: 1.0e9,
            p2p_bps: 2.0e9,
            kernel_launch_s: 1.0e-5,
            compute_scale: 1.0,
            gemm_scale: 1.0,
            gather_scale: 1.0,
            host_scale: 1.0,
            tt_scale: 1.0,
        }
    }

    /// Whether a parameter set of `bytes` fits in HBM alongside a working
    /// margin (activations, optimizer state); the margin matches the ~20%
    /// reserve real frameworks keep.
    pub fn fits(&self, bytes: usize) -> bool {
        (bytes as f64) <= self.hbm_bytes as f64 * 0.8
    }
}

/// Accumulates the communication a training run *would* perform.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommMeter {
    /// Host-to-device bytes (parameter pulls, input upload).
    pub h2d_bytes: u64,
    /// Device-to-host bytes (gradient pushes).
    pub d2h_bytes: u64,
    /// Device-to-device bytes (model-parallel exchange, all-reduce).
    pub p2p_bytes: u64,
    /// Kernel launches (the overhead fused updates eliminate).
    pub kernel_launches: u64,
}

impl CommMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a host-to-device transfer.
    pub fn h2d(&mut self, bytes: usize) {
        self.h2d_bytes += bytes as u64;
    }

    /// Records a device-to-host transfer.
    pub fn d2h(&mut self, bytes: usize) {
        self.d2h_bytes += bytes as u64;
    }

    /// Records a device-to-device transfer.
    pub fn p2p(&mut self, bytes: usize) {
        self.p2p_bytes += bytes as u64;
    }

    /// Records kernel launches.
    pub fn launches(&mut self, n: usize) {
        self.kernel_launches += n as u64;
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &CommMeter) {
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.p2p_bytes += other.p2p_bytes;
        self.kernel_launches += other.kernel_launches;
    }

    /// Simulated wall time of the metered communication on `device`.
    pub fn simulated_time(&self, device: &DeviceSpec) -> Duration {
        let s = (self.h2d_bytes + self.d2h_bytes) as f64 / device.pcie_bps
            + self.p2p_bytes as f64 / device.p2p_bps
            + self.kernel_launches as f64 * device.kernel_launch_s;
        Duration::from_secs_f64(s)
    }

    /// Total bytes moved across any link.
    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes + self.p2p_bytes
    }
}

/// Combines the three cost components — device compute (scaled by the
/// device's speedup), host compute (CPU speed, unscaled) and metered bus
/// traffic — into the simulated end-to-end time the framework benches
/// report.
pub fn simulated_total(
    device_compute: Duration,
    host_compute: Duration,
    meter: &CommMeter,
    device: &DeviceSpec,
) -> Duration {
    Duration::from_secs_f64(device_compute.as_secs_f64() / device.compute_scale)
        + Duration::from_secs_f64(host_compute.as_secs_f64() / device.host_scale)
        + meter.simulated_time(device)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_outranks_t4_on_bandwidth() {
        let v = DeviceSpec::v100();
        let t = DeviceSpec::t4();
        assert!(v.pcie_bps > t.pcie_bps);
        assert!(v.p2p_bps > t.p2p_bps);
    }

    #[test]
    fn fits_keeps_a_margin() {
        let d = DeviceSpec::tiny(1000);
        assert!(d.fits(800));
        assert!(!d.fits(801));
    }

    #[test]
    fn meter_accumulates_and_merges() {
        let mut a = CommMeter::new();
        a.h2d(100);
        a.d2h(50);
        a.launches(3);
        let mut b = CommMeter::new();
        b.p2p(200);
        b.merge(&a);
        assert_eq!(b.total_bytes(), 350);
        assert_eq!(b.kernel_launches, 3);
    }

    #[test]
    fn simulated_time_follows_bandwidth() {
        let mut m = CommMeter::new();
        m.h2d(12_000_000_000); // 12 GB over 12 GB/s = 1 s on V100
        let t = m.simulated_time(&DeviceSpec::v100());
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        // the same transfer takes twice as long over the T4's x8 link
        let t4 = m.simulated_time(&DeviceSpec::t4());
        assert!((t4.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_launch_overhead_counts() {
        let mut m = CommMeter::new();
        m.launches(1_000_000);
        let t = m.simulated_time(&DeviceSpec::v100());
        assert!((t.as_secs_f64() - 5.0).abs() < 1e-9);
    }
}
