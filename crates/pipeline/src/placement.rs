//! Heterogeneous table placement.
//!
//! The paper's §I criticizes TT-Rec for compressing every table with one
//! homogeneous scheme, "without taking into account the distinct index
//! distribution pattern of the DLRM training input". EL-Rec's system view
//! (Figure 9) instead decides *per table* where parameters live. This
//! module implements that planner:
//!
//! * tiny tables stay **dense on the device** — compressing them saves
//!   nothing and costs kernel time (the paper keeps tables under 1M rows
//!   uncompressed);
//! * large tables become **Eff-TT tables**, with the rank chosen from a
//!   ladder under the device-memory budget; hotter tables (by profiled
//!   access share) keep higher ranks, protecting accuracy where gradients
//!   concentrate;
//! * whatever still does not fit is **hosted** behind the parameter
//!   server, coldest tables first, minimizing PS traffic.

use crate::device::DeviceSpec;
use crate::server::HostServer;
use el_core::TtConfig;
use el_dlrm::{DlrmModel, EmbeddingLayer};

/// Where one table's parameters live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TablePlacement {
    /// Uncompressed, device-resident.
    DenseDevice,
    /// TT-compressed on the device at the given rank.
    TtDevice {
        /// Chosen TT rank.
        rank: usize,
    },
    /// Parameters in host memory behind the parameter server.
    Hosted,
}

/// A complete placement decision.
#[derive(Clone, Debug)]
pub struct PlacementPlan {
    /// One placement per table.
    pub tables: Vec<TablePlacement>,
    /// Device bytes the plan consumes.
    pub device_bytes: usize,
    /// Host bytes the plan consumes.
    pub host_bytes: usize,
}

/// Planner inputs for one table.
#[derive(Clone, Copy, Debug)]
pub struct TableProfile {
    /// Row count.
    pub cardinality: usize,
    /// Fraction of all embedding accesses hitting this table (profiled;
    /// uniform across tables if no profile is available).
    pub access_share: f64,
}

/// Planner configuration.
#[derive(Clone, Debug)]
pub struct PlannerConfig {
    /// Tables whose dense footprint is at most this stay dense.
    pub dense_cutoff_bytes: usize,
    /// Rank ladder, tried from highest (most accurate) to lowest.
    pub rank_ladder: Vec<usize>,
    /// Fraction of HBM the embedding layer may use (the rest is MLPs,
    /// activations, optimizer state).
    pub hbm_fraction: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            dense_cutoff_bytes: 4 << 20, // 4 MB
            rank_ladder: vec![128, 64, 32, 16, 8],
            hbm_fraction: 0.5,
        }
    }
}

impl PlacementPlan {
    /// Number of tables in each placement class: `(dense, tt, hosted)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for t in &self.tables {
            match t {
                TablePlacement::DenseDevice => counts.0 += 1,
                TablePlacement::TtDevice { .. } => counts.1 += 1,
                TablePlacement::Hosted => counts.2 += 1,
            }
        }
        counts
    }
}

/// Plans placements for `profiles` at embedding dimension `dim` on
/// `device`.
pub fn plan_placement(
    profiles: &[TableProfile],
    dim: usize,
    device: &DeviceSpec,
    config: &PlannerConfig,
) -> PlacementPlan {
    assert!(!config.rank_ladder.is_empty(), "need at least one rank");
    let budget = (device.hbm_bytes as f64 * config.hbm_fraction) as usize;

    let dense_bytes = |card: usize| card * dim * 4;
    let tt_bytes = |card: usize, rank: usize| TtConfig::new(card, dim, rank).param_count() * 4;

    let mut placements = vec![TablePlacement::Hosted; profiles.len()];
    let mut device_bytes = 0usize;

    // Small tables first: dense on device, always.
    for (t, p) in profiles.iter().enumerate() {
        if dense_bytes(p.cardinality) <= config.dense_cutoff_bytes {
            placements[t] = TablePlacement::DenseDevice;
            device_bytes += dense_bytes(p.cardinality);
        }
    }

    // Large tables, hottest first: give each the highest rank that still
    // fits the remaining budget; spill to lower rungs, then to the host.
    let mut large: Vec<usize> = profiles
        .iter()
        .enumerate()
        .filter(|(_, p)| dense_bytes(p.cardinality) > config.dense_cutoff_bytes)
        .map(|(t, _)| t)
        .collect();
    large.sort_by(|&a, &b| {
        profiles[b]
            .access_share
            .partial_cmp(&profiles[a].access_share)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Reserve the minimum-rank footprint for every remaining large table
    // so early (hot) tables cannot starve later ones onto the host.
    let min_rank = *config.rank_ladder.last().unwrap();
    let mut reserved: usize =
        large.iter().map(|&t| tt_bytes(profiles[t].cardinality, min_rank)).sum();

    for &t in &large {
        let card = profiles[t].cardinality;
        reserved -= tt_bytes(card, min_rank);
        let mut chosen = None;
        for &rank in &config.rank_ladder {
            let cost = tt_bytes(card, rank);
            if device_bytes + cost + reserved <= budget {
                chosen = Some(rank);
                break;
            }
        }
        match chosen {
            // TT only pays when it actually compresses; mid-sized tables
            // where the cores would match the dense footprint stay dense.
            Some(rank) if tt_bytes(card, rank) * 2 <= dense_bytes(card) => {
                placements[t] = TablePlacement::TtDevice { rank };
                device_bytes += tt_bytes(card, rank);
            }
            Some(_) if device_bytes + dense_bytes(card) + reserved <= budget => {
                placements[t] = TablePlacement::DenseDevice;
                device_bytes += dense_bytes(card);
            }
            Some(rank) => {
                placements[t] = TablePlacement::TtDevice { rank };
                device_bytes += tt_bytes(card, rank);
            }
            None => {
                placements[t] = TablePlacement::Hosted;
            }
        }
    }

    let host_bytes = profiles
        .iter()
        .zip(&placements)
        .filter(|(_, pl)| **pl == TablePlacement::Hosted)
        .map(|(p, _)| dense_bytes(p.cardinality))
        .sum();
    PlacementPlan { tables: placements, device_bytes, host_bytes }
}

/// Uniform profiles when no access statistics are available.
pub fn uniform_profiles(cardinalities: &[usize]) -> Vec<TableProfile> {
    let share = 1.0 / cardinalities.len().max(1) as f64;
    cardinalities
        .iter()
        .map(|&cardinality| TableProfile { cardinality, access_share: share })
        .collect()
}

/// Rewrites a freshly-built model (all tables `Dense`) according to the
/// plan, returning the host server that owns the `Hosted` tables.
///
/// # Panics
/// Panics if the model was not built with `tt_threshold = usize::MAX`
/// (every table dense) or the plan length mismatches.
pub fn apply_plan(
    model: &mut DlrmModel,
    plan: &PlacementPlan,
    dim: usize,
    lr: f32,
    rng: &mut impl rand::Rng,
) -> HostServer {
    assert_eq!(model.num_tables(), plan.tables.len(), "plan/table count mismatch");
    let mut host = Vec::new();
    for (t, placement) in plan.tables.iter().enumerate() {
        match placement {
            TablePlacement::DenseDevice => {}
            TablePlacement::TtDevice { rank } => {
                let card = match &model.tables[t] {
                    EmbeddingLayer::Dense(b) => b.num_rows(),
                    _ => panic!("apply_plan expects a fully dense model"),
                };
                let cfg = TtConfig::new(card, dim, *rank);
                model.tables[t] = EmbeddingLayer::Tt(
                    Box::new(el_core::TtEmbeddingBag::new(&cfg, rng)),
                    el_core::TtWorkspace::new(),
                );
            }
            TablePlacement::Hosted => {
                match std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim }) {
                    EmbeddingLayer::Dense(bag) => host.push((t, bag)),
                    _ => panic!("apply_plan expects a fully dense model"),
                }
            }
        }
    }
    HostServer::new(host, lr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles(cards: &[usize]) -> Vec<TableProfile> {
        uniform_profiles(cards)
    }

    #[test]
    fn small_tables_stay_dense() {
        let device = DeviceSpec::v100();
        let plan = plan_placement(
            &profiles(&[100, 2000, 50_000_000]),
            64,
            &device,
            &PlannerConfig::default(),
        );
        assert_eq!(plan.tables[0], TablePlacement::DenseDevice);
        assert_eq!(plan.tables[1], TablePlacement::DenseDevice);
        assert!(matches!(plan.tables[2], TablePlacement::TtDevice { .. }));
    }

    #[test]
    fn budget_is_respected() {
        let device = DeviceSpec::tiny(40 << 20); // 40 MB HBM
        let config = PlannerConfig {
            dense_cutoff_bytes: 1 << 20,
            rank_ladder: vec![64, 32, 16, 8],
            hbm_fraction: 0.5,
        };
        let cards = vec![10_000_000usize; 6];
        let plan = plan_placement(&profiles(&cards), 64, &device, &config);
        assert!(plan.device_bytes <= 20 << 20, "over budget: {}", plan.device_bytes);
    }

    #[test]
    fn hot_tables_get_higher_ranks() {
        let device = DeviceSpec::tiny(8 << 20);
        let config = PlannerConfig {
            dense_cutoff_bytes: 1 << 20,
            rank_ladder: vec![64, 16],
            hbm_fraction: 1.0,
        };
        let mut prof = profiles(&[10_000_000, 10_000_000]);
        prof[0].access_share = 0.9;
        prof[1].access_share = 0.1;
        let plan = plan_placement(&prof, 64, &device, &config);
        let rank_of = |t: usize| match plan.tables[t] {
            TablePlacement::TtDevice { rank } => rank,
            _ => 0,
        };
        assert!(
            rank_of(0) >= rank_of(1),
            "hot table should not get a lower rank: {} vs {}",
            rank_of(0),
            rank_of(1)
        );
    }

    #[test]
    fn impossible_budgets_spill_to_host() {
        let device = DeviceSpec::tiny(1 << 20); // 1 MB: nothing fits
        let config =
            PlannerConfig { dense_cutoff_bytes: 1 << 10, rank_ladder: vec![32], hbm_fraction: 0.5 };
        let plan = plan_placement(&profiles(&[50_000_000, 80_000_000]), 128, &device, &config);
        assert_eq!(plan.class_counts(), (0, 0, 2));
        assert!(plan.host_bytes > 0);
    }

    #[test]
    fn min_rank_reservation_prevents_starvation() {
        // Two equally hot huge tables, budget that fits one at high rank OR
        // both at low rank: the planner must not give table A the high rank
        // and push table B to the host.
        let dim = 64;
        let card = 10_000_000usize;
        let high = TtConfig::new(card, dim, 64).param_count() * 4;
        let low = TtConfig::new(card, dim, 8).param_count() * 4;
        assert!(high > 2 * low);
        let device = DeviceSpec::tiny(((high + low) as f64 / 0.5) as usize - 1024);
        let config = PlannerConfig {
            dense_cutoff_bytes: 1 << 20,
            rank_ladder: vec![64, 8],
            hbm_fraction: 0.5,
        };
        let plan = plan_placement(&profiles(&[card, card]), dim, &device, &config);
        let (_, tt, hosted) = plan.class_counts();
        assert_eq!(hosted, 0, "reservation should keep both tables on device: {plan:?}");
        assert_eq!(tt, 2);
    }

    #[test]
    fn tt_is_only_chosen_when_it_compresses() {
        // a mid-sized table where rank-128 cores rival the dense footprint
        // must stay dense when the budget allows
        let device = DeviceSpec::v100();
        let config = PlannerConfig {
            dense_cutoff_bytes: 1 << 20,
            rank_ladder: vec![128],
            hbm_fraction: 0.5,
        };
        let plan = plan_placement(&profiles(&[12_517]), 128, &device, &config);
        assert_eq!(
            plan.tables[0],
            TablePlacement::DenseDevice,
            "non-compressing TT must be rejected: {plan:?}"
        );
    }

    #[test]
    fn apply_plan_builds_a_trainable_hybrid() {
        use el_data::{DatasetSpec, SyntheticDataset};
        use el_dlrm::DlrmConfig;
        use rand::SeedableRng;

        let mut spec = DatasetSpec::toy(3, 4000, 1_000_000);
        spec.num_dense = 4;
        let ds = SyntheticDataset::new(spec, 9);
        let mut cfg = DlrmConfig::for_spec(ds.spec(), 8, usize::MAX, 8);
        cfg.bottom_hidden = vec![16];
        cfg.top_hidden = vec![16];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut model = el_dlrm::DlrmModel::new(&cfg, &mut rng);

        let plan = PlacementPlan {
            tables: vec![
                TablePlacement::DenseDevice,
                TablePlacement::TtDevice { rank: 8 },
                TablePlacement::Hosted,
            ],
            device_bytes: 0,
            host_bytes: 0,
        };
        let server = apply_plan(&mut model, &plan, 8, 0.05, &mut rng);
        assert_eq!(server.tables.len(), 1);
        assert_eq!(model.hosted_tables(), vec![2]);

        // the hybrid trains end to end through the pipeline
        let config = crate::trainer::PipelineConfig {
            batch_size: 32,
            first_batch: 0,
            num_batches: 3,
            prefetch_depth: 2,
            pipelined: true,
            overlap_analysis: true,
        };
        let report = crate::trainer::PipelineTrainer::train(model, server, &ds, &config);
        assert!(report.losses.iter().all(|l| l.is_finite()));
    }
}
