//! The host-memory parameter server and its two queues (paper Figure 9).
//!
//! The CPU side owns the embedding tables that do not fit in device memory.
//! It pre-fetches the rows the next batches will need into the bounded
//! **pre-fetch queue** and applies the gradients workers push into the
//! **gradient queue**. Queue depth 1 with strict alternation degrades the
//! pipeline to the sequential baseline of Figure 16.

use crate::device::{thread_cpu_time, CommMeter};
use crossbeam::channel::TrySendError;
use crossbeam::channel::{bounded, Receiver, Sender};
use el_data::{MiniBatch, SyntheticDataset};
use el_dlrm::embedding_bag::{EmbeddingBag, SparseGrad};
use el_tensor::Matrix as TMatrix;
use el_tensor::Matrix;
use std::fmt;
use std::time::Duration;

/// Typed failures of the serving loop and the gradient-application
/// protocol. These replace the panics that used to hide in `run` and
/// `apply`: a production parameter server must degrade, not abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// `PooledEmbeddings` mode was asked to run pipelined. The pooled
    /// (reference-DLRM) path has no staleness protocol — the CPU does the
    /// full forward/backward — so any staleness the pipeline introduces is
    /// staleness it cannot provide for.
    PooledNeedsSequential,
    /// A gradient push arrived for a batch beyond the next one the server
    /// can apply; the caller must buffer and retry once the gap fills.
    GradientGap {
        /// Sequence number the push carries.
        got: u64,
        /// Sequence number the server needs next.
        expected: u64,
    },
    /// A gradient push referenced a table this server does not host.
    UnknownTable(usize),
    /// A bounded-retry send gave up: the consumer either stayed saturated
    /// through every backoff round (`disconnected == false`, a wedged or
    /// hopelessly lagging peer) or hung up (`disconnected == true`).
    /// Surfaced through `PipelineReport::failure` so a halted worker is a
    /// typed outcome, not a silent early return.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// Whether the receiver had disconnected (vs. stayed full).
        disconnected: bool,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::PooledNeedsSequential => write!(
                f,
                "the pooled-embedding (reference DLRM) mode has no staleness protocol; \
                 run it sequentially"
            ),
            ServerError::GradientGap { got, expected } => {
                write!(f, "gradient push for batch {got} arrived before batch {expected}")
            }
            ServerError::UnknownTable(t) => {
                write!(f, "gradient for unknown hosted table {t}")
            }
            ServerError::RetriesExhausted { attempts, disconnected } => {
                let why =
                    if *disconnected { "the receiver hung up" } else { "the queue stayed full" };
                write!(f, "send retries exhausted after {attempts} attempts: {why}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// What [`HostServer::apply_checked`] did with a push.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The push was the next in sequence and has been applied.
    Applied,
    /// The push was for an already-applied batch (a retransmission); the
    /// tables were left untouched, making re-delivery idempotent.
    Duplicate,
}

/// How the server serves hosted tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// EL-Rec style: ship deduplicated unique rows; the worker pools them
    /// and pushes aggregated per-row gradients. Compatible with pipelining
    /// through the embedding cache.
    UniqueRows,
    /// Reference-DLRM style: the CPU performs the full `EmbeddingBag`
    /// forward (pooling) and backward; pooled `batch x dim` activations and
    /// gradients cross the bus. Strictly sequential — this is the paper's
    /// DLRM (CPU+GPU) baseline.
    PooledEmbeddings,
}

/// Rows pre-fetched for one batch, stamped with the server's progress.
///
/// Carries the mini-batch itself: the server doubles as the data loader
/// (the NVTabular role in the paper's setup), so batch generation is part
/// of the host stage the pipeline overlaps with device compute.
#[derive(Clone, Debug)]
pub struct PrefetchedBatch {
    /// Sequence number of the batch these rows serve.
    pub batch_seq: u64,
    /// Number of gradient batches the server had applied when gathering —
    /// the staleness stamp the embedding cache synchronizes against.
    pub applied_through: u64,
    /// The training batch itself.
    pub batch: MiniBatch,
    /// Per hosted table: `(table id, unique sorted indices, rows)`
    /// (`UniqueRows` mode).
    pub tables: Vec<(usize, Vec<u32>, Matrix)>,
    /// Per hosted table: `(table id, pooled batch x dim embeddings)`
    /// (`PooledEmbeddings` mode).
    pub pooled: Vec<(usize, TMatrix)>,
}

impl PrefetchedBatch {
    /// Bytes of embedding payload (the H2D traffic this transfer costs).
    pub fn payload_bytes(&self) -> usize {
        let unique: usize =
            self.tables.iter().map(|(_, idx, rows)| idx.len() * 4 + rows.footprint_bytes()).sum();
        let pooled: usize = self.pooled.iter().map(|(_, m)| m.footprint_bytes()).sum();
        unique + pooled
    }
}

/// Gradients pushed back for one batch.
#[derive(Clone, Debug)]
pub struct GradientPush {
    /// Sequence number of the batch that produced these gradients.
    pub batch_seq: u64,
    /// Per hosted table: `(table id, aggregated sparse gradient)`
    /// (`UniqueRows` mode).
    pub tables: Vec<(usize, SparseGrad)>,
    /// Per hosted table: `(table id, pooled-embedding gradient)`
    /// (`PooledEmbeddings` mode; the server re-derives per-row updates).
    pub pooled: Vec<(usize, TMatrix)>,
}

impl GradientPush {
    /// Bytes of gradient payload (D2H traffic).
    pub fn payload_bytes(&self) -> usize {
        let unique: usize =
            self.tables.iter().map(|(_, g)| g.indices.len() * 4 + g.values.len() * 4).sum();
        let pooled: usize = self.pooled.iter().map(|(_, m)| m.footprint_bytes()).sum();
        unique + pooled
    }
}

/// The host-side parameter server.
pub struct HostServer {
    /// Hosted tables: `(table id in the model, table)`.
    pub tables: Vec<(usize, EmbeddingBag)>,
    /// SGD learning rate applied to pushed gradients.
    pub lr: f32,
    /// Gradient batches applied so far.
    pub applied: u64,
    /// Communication accounting (what the PCIe link would carry).
    pub meter: CommMeter,
    /// Measured CPU time spent gathering and applying (the host-side cost
    /// that stays at CPU speed in the simulated-device model).
    pub cpu_time: Duration,
    /// Measured CPU time spent generating batches (the data-loader role —
    /// NVTabular in the paper's setup — reported separately because both
    /// the paper's baselines and EL-Rec use the same loader).
    pub gen_time: Duration,
    /// Serving strategy.
    pub mode: ServerMode,
}

/// Outcome of a completed server run.
pub struct ServerReport {
    /// The server with final table state.
    pub server: HostServer,
}

impl HostServer {
    /// A server hosting the given tables.
    pub fn new(tables: Vec<(usize, EmbeddingBag)>, lr: f32) -> Self {
        Self {
            tables,
            lr,
            applied: 0,
            meter: CommMeter::new(),
            cpu_time: Duration::ZERO,
            gen_time: Duration::ZERO,
            mode: ServerMode::UniqueRows,
        }
    }

    /// Switches the serving strategy (builder style).
    pub fn with_mode(mut self, mode: ServerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Serves batch `seq` from every hosted table: unique rows
    /// (`UniqueRows`) or CPU-pooled embeddings (`PooledEmbeddings`).
    pub fn gather(&mut self, batch: MiniBatch, seq: u64) -> PrefetchedBatch {
        let t0 = thread_cpu_time();
        let mut tables = Vec::new();
        let mut pooled = Vec::new();
        match self.mode {
            ServerMode::UniqueRows => {
                tables = self
                    .tables
                    .iter()
                    .map(|(t, bag)| {
                        let field = &batch.fields[*t];
                        let mut unique: Vec<u32> = field.indices.clone();
                        unique.sort_unstable();
                        unique.dedup();
                        let rows = bag.gather_rows(&unique);
                        (*t, unique, rows)
                    })
                    .collect();
            }
            ServerMode::PooledEmbeddings => {
                pooled = self
                    .tables
                    .iter()
                    .map(|(t, bag)| {
                        let field = &batch.fields[*t];
                        (*t, bag.forward(&field.indices, &field.offsets))
                    })
                    .collect();
            }
        }
        let pf = PrefetchedBatch {
            batch_seq: seq,
            applied_through: self.applied,
            batch,
            tables,
            pooled,
        };
        self.meter.h2d(pf.payload_bytes());
        self.cpu_time += thread_cpu_time() - t0;
        pf
    }

    /// Applies one pushed gradient batch with SGD.
    ///
    /// Panicking wrapper around [`HostServer::apply_checked`] for callers
    /// on a FIFO channel, where out-of-order or duplicate delivery is a
    /// programming error rather than a network condition.
    pub fn apply(&mut self, push: &GradientPush) {
        assert_eq!(push.batch_seq, self.applied, "gradient batches must arrive in order");
        match self.apply_checked(push) {
            Ok(ApplyOutcome::Applied) => {}
            Ok(ApplyOutcome::Duplicate) | Err(ServerError::GradientGap { .. }) => {
                unreachable!("seq equality was asserted above") // PANIC-OK: seq asserted above
            }
            // PANIC-OK: `apply` is the documented panic-on-error strict variant.
            Err(e) => panic!("{e}"),
        }
    }

    /// Applies one pushed gradient batch with SGD, tolerating the delivery
    /// faults an unreliable link can introduce:
    ///
    /// * a push for an **already-applied** batch (a retransmission) is
    ///   ignored and reported as [`ApplyOutcome::Duplicate`] — application
    ///   is idempotent per sequence number, which is what makes
    ///   at-least-once delivery safe;
    /// * a push **beyond** the next expected batch returns
    ///   [`ServerError::GradientGap`] so the caller can buffer it and
    ///   retry once the gap fills — the tables are never touched out of
    ///   order;
    /// * a push for an unknown table returns [`ServerError::UnknownTable`]
    ///   without applying anything.
    ///
    /// Delivered bytes are metered even for duplicates: they crossed the
    /// bus whether or not they changed state.
    pub fn apply_checked(&mut self, push: &GradientPush) -> Result<ApplyOutcome, ServerError> {
        let t0 = thread_cpu_time();
        self.meter.d2h(push.payload_bytes());
        if push.batch_seq < self.applied {
            self.cpu_time += thread_cpu_time() - t0;
            return Ok(ApplyOutcome::Duplicate);
        }
        if push.batch_seq > self.applied {
            self.cpu_time += thread_cpu_time() - t0;
            return Err(ServerError::GradientGap { got: push.batch_seq, expected: self.applied });
        }
        for (t, _) in &push.tables {
            if !self.tables.iter().any(|(id, _)| id == t) {
                self.cpu_time += thread_cpu_time() - t0;
                return Err(ServerError::UnknownTable(*t));
            }
        }
        for (t, grad) in &push.tables {
            let bag =
                // PANIC-OK: every table id was validated in the loop above.
                &mut self.tables.iter_mut().find(|(id, _)| id == t).expect("validated above").1;
            bag.apply_sparse_grad(grad, self.lr);
        }
        self.applied += 1;
        self.cpu_time += thread_cpu_time() - t0;
        Ok(ApplyOutcome::Applied)
    }

    /// Applies a pooled-gradient push (`PooledEmbeddings` mode): the full
    /// `EmbeddingBag` backward runs on the CPU, exactly like the reference
    /// DLRM baseline.
    pub fn apply_pooled(&mut self, push: &GradientPush, batch: &MiniBatch) {
        let t0 = thread_cpu_time();
        assert_eq!(push.batch_seq, self.applied, "gradient batches must arrive in order");
        self.meter.d2h(push.payload_bytes());
        let lr = self.lr;
        for (t, d_pooled) in &push.pooled {
            let bag = &mut self
                .tables
                .iter_mut()
                .find(|(id, _)| id == t)
                // PANIC-OK: a pooled gradient for a non-hosted table is a protocol bug.
                .unwrap_or_else(|| panic!("gradient for unknown hosted table {t}"))
                .1;
            let field = &batch.fields[*t];
            bag.backward_sgd(&field.indices, &field.offsets, d_pooled, lr);
        }
        self.applied += 1;
        self.cpu_time += thread_cpu_time() - t0;
    }
}

/// The batch schedule one [`ServingLoop`] serves.
#[derive(Clone, Copy, Debug)]
pub struct ServingSchedule {
    /// First batch index in the dataset.
    pub first: u64,
    /// Number of batches to serve.
    pub count: u64,
    /// Samples per batch.
    pub batch_size: usize,
    /// Overlap gathering with gradient application; `false` blocks on
    /// every batch's gradients before gathering the next.
    pub pipelined: bool,
}

/// The serving loop, constructed separately from being run so that
/// mode/schedule combinations the staleness protocol cannot serve are a
/// typed error at construction time — not a panic mid-training.
pub struct ServingLoop {
    server: HostServer,
    schedule: ServingSchedule,
}

impl ServingLoop {
    /// Validates that `server`'s mode can serve `schedule`.
    ///
    /// `PooledEmbeddings` mode runs the full embedding forward/backward on
    /// the CPU and therefore has no staleness protocol: asked for a
    /// pipelined schedule — any schedule with staleness it cannot provide
    /// for — it returns [`ServerError::PooledNeedsSequential`].
    pub fn new(server: HostServer, schedule: ServingSchedule) -> Result<Self, ServerError> {
        if schedule.pipelined && server.mode == ServerMode::PooledEmbeddings {
            return Err(ServerError::PooledNeedsSequential);
        }
        Ok(Self { server, schedule })
    }

    /// Runs the loop to completion: gather/pre-fetch every scheduled
    /// batch, apply pushed gradients, then perform the shutdown handshake
    /// — drain the gradient queue until every push the worker delivered
    /// has been applied or the worker hangs up. Worker disappearance at
    /// any point degrades to a clean early return, never a panic or a
    /// wedge.
    // CONTRACT: panic-free
    pub fn run(
        self,
        dataset: &SyntheticDataset,
        prefetch_tx: Sender<PrefetchedBatch>,
        grad_rx: Receiver<GradientPush>,
    ) -> ServerReport {
        let ServingLoop { mut server, schedule } = self;
        let ServingSchedule { first, count, batch_size, pipelined } = schedule;
        for k in 0..count {
            if pipelined {
                // opportunistically absorb any pending gradients
                while let Ok(push) = grad_rx.try_recv() {
                    server.apply(&push);
                }
            }
            let t0 = thread_cpu_time();
            let batch = dataset.batch(first + k, batch_size);
            server.gen_time += thread_cpu_time() - t0;
            let batch_copy = (server.mode == ServerMode::PooledEmbeddings).then(|| batch.clone());
            let pf = server.gather(batch, k);
            if prefetch_tx.send(pf).is_err() {
                break; // worker gone
            }
            if !pipelined {
                match grad_rx.recv() {
                    Ok(push) => match &batch_copy {
                        Some(b) => server.apply_pooled(&push, b),
                        None => server.apply(&push),
                    },
                    Err(_) => break,
                }
            }
        }
        drop(prefetch_tx);
        // Shutdown handshake: drain the tail so every update the worker
        // managed to push lands. `apply_checked` (not `apply`) keeps a
        // retransmitting worker from panicking the server on a duplicate.
        while server.applied < count {
            match grad_rx.recv() {
                Ok(push) => match server.apply_checked(&push) {
                    Ok(_) => {}
                    // PANIC-OK: an in-process FIFO delivering a gap is a protocol bug.
                    Err(e) => panic!("FIFO gradient queue delivered an unappliable push: {e}"),
                },
                Err(_) => break,
            }
        }
        ServerReport { server }
    }
}

/// Sends `value` with bounded retry and exponential backoff, for queues
/// that may be transiently saturated (a stalled consumer). Returns the
/// value and a typed [`ServerError::RetriesExhausted`] cause on failure so
/// the caller can surface the halt through `PipelineReport` instead of
/// silently stopping:
///
/// * the receiver hung up — retrying is pointless, fail immediately
///   (`disconnected == true`);
/// * the queue stayed full through every attempt — the consumer is wedged
///   or lagging beyond the backoff budget (~1 s at 16 attempts: 100 µs
///   doubling, capped at 200 ms per sleep), and the caller should stop
///   pushing rather than block forever (`disconnected == false`).
///
/// Each sleep adds deterministic seeded jitter (up to a quarter of the
/// backoff, derived from `jitter_seed` and the attempt number through
/// `splitmix64`) so concurrent retriers decorrelate without introducing
/// any run-to-run nondeterminism: the same seed always produces the same
/// backoff schedule, which is what keeps seeded sim replays bit-for-bit.
pub fn send_with_retry<T>(
    tx: &Sender<T>,
    value: T,
    max_attempts: u32,
    jitter_seed: u64,
) -> Result<(), (T, ServerError)> {
    let mut value = value;
    let mut backoff = Duration::from_micros(100);
    let attempts = max_attempts.max(1);
    for attempt in 0..attempts {
        match tx.try_send(value) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Disconnected(v)) => {
                return Err((
                    v,
                    ServerError::RetriesExhausted { attempts: attempt + 1, disconnected: true },
                ));
            }
            Err(TrySendError::Full(v)) => {
                value = v;
                if attempt + 1 < attempts {
                    let jitter_ns = crate::replica::splitmix64(jitter_seed ^ u64::from(attempt))
                        % (backoff.as_nanos() as u64 / 4 + 1);
                    std::thread::sleep(backoff + Duration::from_nanos(jitter_ns));
                    backoff = (backoff * 2).min(Duration::from_millis(200));
                }
            }
        }
    }
    Err((value, ServerError::RetriesExhausted { attempts, disconnected: false }))
}

/// Creates the bounded pre-fetch queue and the gradient queue of Figure 9.
///
/// The pre-fetch capacity is the paper's queue length: 1 degenerates the
/// pipeline to sequential execution.
pub fn make_queues(
    prefetch_depth: usize,
) -> (
    Sender<PrefetchedBatch>,
    Receiver<PrefetchedBatch>,
    Sender<GradientPush>,
    Receiver<GradientPush>,
) {
    let (ptx, prx) = bounded(prefetch_depth.max(1));
    let (gtx, grx) = bounded(prefetch_depth.max(1) * 2);
    (ptx, prx, gtx, grx)
}

/// Sum-pools pre-fetched unique rows into per-sample embeddings — the
/// worker-side substitute for a local `EmbeddingBag::forward` when the
/// table lives on the host.
pub fn pool_prefetched(indices: &[u32], offsets: &[u32], unique: &[u32], rows: &Matrix) -> Matrix {
    let dim = rows.cols();
    let batch = offsets.len() - 1;
    let mut out = Matrix::zeros(batch, dim);
    for s in 0..batch {
        let dst = out.row_mut(s);
        for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
            // PANIC-OK: `unique` covers every batch index by construction.
            let slot = unique.binary_search(&i).expect("index missing from prefetch");
            for (d, v) in dst.iter_mut().zip(rows.row(slot)) {
                *d += v;
            }
        }
    }
    out
}

/// Aggregates a pooled-embedding gradient into per-unique-row gradients —
/// the worker-side push payload builder.
pub fn aggregate_to_unique(
    indices: &[u32],
    offsets: &[u32],
    unique: &[u32],
    d_out: &Matrix,
) -> SparseGrad {
    let dim = d_out.cols();
    let mut values = vec![0.0f32; unique.len() * dim];
    for s in 0..d_out.rows() {
        let g = d_out.row(s);
        for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
            // PANIC-OK: `unique` covers every batch index by construction.
            let slot = unique.binary_search(&i).expect("index missing from prefetch");
            for (v, gv) in values[slot * dim..(slot + 1) * dim].iter_mut().zip(g) {
                *v += gv;
            }
        }
    }
    SparseGrad { indices: unique.to_vec(), values, dim }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_data::DatasetSpec;
    use rand::SeedableRng;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::new(DatasetSpec::toy(2, 50, 10_000), 3)
    }

    fn server() -> HostServer {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let tables = vec![
            (0usize, EmbeddingBag::new(50, 8, 0.2, &mut rng)),
            (1usize, EmbeddingBag::new(50, 8, 0.2, &mut rng)),
        ];
        HostServer::new(tables, 0.1)
    }

    #[test]
    fn gather_returns_unique_sorted_rows() {
        let mut s = server();
        let batch = dataset().batch(0, 16);
        let pf = s.gather(batch, 0);
        assert_eq!(pf.tables.len(), 2);
        for (t, unique, rows) in &pf.tables {
            assert!(unique.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
            assert_eq!(rows.rows(), unique.len());
            let bag = &s.tables.iter().find(|(id, _)| id == t).unwrap().1;
            for (r, &i) in unique.iter().enumerate() {
                assert_eq!(rows.row(r), bag.weight.row(i as usize));
            }
        }
        assert!(s.meter.h2d_bytes > 0);
    }

    #[test]
    fn apply_updates_rows_in_order() {
        let mut s = server();
        let before = s.tables[0].1.weight.row(7).to_vec();
        let push = GradientPush {
            batch_seq: 0,
            tables: vec![(0, SparseGrad { indices: vec![7], values: vec![1.0; 8], dim: 8 })],
            pooled: vec![],
        };
        s.apply(&push);
        let after = s.tables[0].1.weight.row(7);
        for (b, a) in before.iter().zip(after) {
            assert!((b - 0.1 - a).abs() < 1e-6);
        }
        assert_eq!(s.applied, 1);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_push_panics() {
        let mut s = server();
        let push = GradientPush { batch_seq: 5, tables: vec![], pooled: vec![] };
        s.apply(&push);
    }

    #[test]
    fn pool_prefetched_matches_dense_bag() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let bag = EmbeddingBag::new(20, 4, 0.3, &mut rng);
        let indices = [3u32, 7, 3, 11];
        let offsets = [0u32, 2, 4];
        let want = bag.forward(&indices, &offsets);

        let unique = vec![3u32, 7, 11];
        let rows = bag.gather_rows(&unique);
        let got = pool_prefetched(&indices, &offsets, &unique, &rows);
        assert!(got.max_abs_diff(&want) < 1e-6);
    }

    #[test]
    fn aggregate_matches_sparse_grad() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bag = EmbeddingBag::new(20, 4, 0.3, &mut rng);
        let indices = [3u32, 7, 3, 11];
        let offsets = [0u32, 2, 4];
        let d_out = Matrix::uniform(2, 4, 1.0, &mut rng);
        let want = bag.sparse_grad(&indices, &offsets, &d_out);

        let unique = vec![3u32, 7, 11];
        let got = aggregate_to_unique(&indices, &offsets, &unique, &d_out);
        assert_eq!(got.indices, want.indices);
        for (a, b) in got.values.iter().zip(&want.values) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn apply_checked_dedups_and_reports_gaps() {
        let mut s = server();
        let push = GradientPush {
            batch_seq: 0,
            tables: vec![(0, SparseGrad { indices: vec![7], values: vec![1.0; 8], dim: 8 })],
            pooled: vec![],
        };
        assert_eq!(s.apply_checked(&push), Ok(ApplyOutcome::Applied));
        let after_first = s.tables[0].1.weight.row(7).to_vec();
        // retransmission of the same push: idempotent, tables untouched
        assert_eq!(s.apply_checked(&push), Ok(ApplyOutcome::Duplicate));
        assert_eq!(s.tables[0].1.weight.row(7), after_first.as_slice());
        assert_eq!(s.applied, 1);
        // a push from the future is a gap, not an application
        let future = GradientPush { batch_seq: 3, tables: vec![], pooled: vec![] };
        assert_eq!(s.apply_checked(&future), Err(ServerError::GradientGap { got: 3, expected: 1 }));
        assert_eq!(s.applied, 1);
    }

    #[test]
    fn apply_checked_rejects_unknown_tables_without_applying() {
        let mut s = server();
        let before = s.tables[0].1.weight.row(7).to_vec();
        let push = GradientPush {
            batch_seq: 0,
            tables: vec![
                (0, SparseGrad { indices: vec![7], values: vec![1.0; 8], dim: 8 }),
                (9, SparseGrad { indices: vec![1], values: vec![1.0; 8], dim: 8 }),
            ],
            pooled: vec![],
        };
        assert_eq!(s.apply_checked(&push), Err(ServerError::UnknownTable(9)));
        // validation is up-front: table 0 must not have been half-applied
        assert_eq!(s.tables[0].1.weight.row(7), before.as_slice());
        assert_eq!(s.applied, 0);
    }

    #[test]
    fn pipelined_pooled_mode_is_a_typed_constructor_error() {
        let s = server().with_mode(ServerMode::PooledEmbeddings);
        let schedule = ServingSchedule { first: 0, count: 4, batch_size: 8, pipelined: true };
        match ServingLoop::new(s, schedule) {
            Err(ServerError::PooledNeedsSequential) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("pipelined pooled mode must be rejected"),
        }
        // the same mode with a sequential schedule is fine
        let s = server().with_mode(ServerMode::PooledEmbeddings);
        let schedule = ServingSchedule { first: 0, count: 4, batch_size: 8, pipelined: false };
        assert!(ServingLoop::new(s, schedule).is_ok());
    }

    #[test]
    fn send_with_retry_recovers_from_transient_saturation() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap(); // saturate
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            let first = rx.recv().unwrap();
            let second = rx.recv().unwrap();
            (first, second)
        });
        assert!(send_with_retry(&tx, 2, 16, 0xA1).is_ok(), "retry must outlast a 5 ms stall");
        assert_eq!(consumer.join().unwrap(), (1, 2));
    }

    #[test]
    fn send_with_retry_gives_up_on_wedged_and_gone_consumers() {
        // wedged: receiver alive but never consuming — bounded attempts,
        // typed exhaustion cause with the value handed back
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        assert_eq!(
            send_with_retry(&tx, 3, 2, 0xA1),
            Err((3, ServerError::RetriesExhausted { attempts: 2, disconnected: false }))
        );
        drop(rx);
        // gone: fail immediately, disconnection recorded
        assert_eq!(
            send_with_retry(&tx, 4, 1_000_000, 0xA1),
            Err((4, ServerError::RetriesExhausted { attempts: 1, disconnected: true }))
        );
    }

    #[test]
    fn run_loop_round_trips_with_a_fake_worker() {
        let ds = dataset();
        let (ptx, prx, gtx, grx) = make_queues(2);
        let srv = server();
        let before = srv.tables[0].1.weight.clone();

        let schedule = ServingSchedule { first: 0, count: 4, batch_size: 8, pipelined: true };
        let serving = ServingLoop::new(srv, schedule).unwrap();
        let handle = std::thread::spawn({
            let ds = ds.clone();
            move || serving.run(&ds, ptx, grx)
        });

        // fake worker: push a unit gradient for everything prefetched
        for _ in 0..4 {
            let pf = prx.recv().unwrap();
            let tables = pf
                .tables
                .iter()
                .map(|(t, unique, rows)| {
                    (
                        *t,
                        SparseGrad {
                            indices: unique.clone(),
                            values: vec![1.0; rows.len()],
                            dim: rows.cols(),
                        },
                    )
                })
                .collect();
            gtx.send(GradientPush { batch_seq: pf.batch_seq, tables, pooled: vec![] }).unwrap();
        }
        drop(gtx);
        let report = handle.join().unwrap();
        assert_eq!(report.server.applied, 4);
        // weights moved
        assert!(report.server.tables[0].1.weight.max_abs_diff(&before) > 0.0);
    }
}
