//! The host-memory parameter server and its two queues (paper Figure 9).
//!
//! The CPU side owns the embedding tables that do not fit in device memory.
//! It pre-fetches the rows the next batches will need into the bounded
//! **pre-fetch queue** and applies the gradients workers push into the
//! **gradient queue**. Queue depth 1 with strict alternation degrades the
//! pipeline to the sequential baseline of Figure 16.

use crate::device::{thread_cpu_time, CommMeter};
use crossbeam::channel::{bounded, Receiver, Sender};
use el_data::{MiniBatch, SyntheticDataset};
use el_dlrm::embedding_bag::{EmbeddingBag, SparseGrad};
use el_tensor::Matrix as TMatrix;
use el_tensor::Matrix;
use std::time::Duration;

/// How the server serves hosted tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// EL-Rec style: ship deduplicated unique rows; the worker pools them
    /// and pushes aggregated per-row gradients. Compatible with pipelining
    /// through the embedding cache.
    UniqueRows,
    /// Reference-DLRM style: the CPU performs the full `EmbeddingBag`
    /// forward (pooling) and backward; pooled `batch x dim` activations and
    /// gradients cross the bus. Strictly sequential — this is the paper's
    /// DLRM (CPU+GPU) baseline.
    PooledEmbeddings,
}

/// Rows pre-fetched for one batch, stamped with the server's progress.
///
/// Carries the mini-batch itself: the server doubles as the data loader
/// (the NVTabular role in the paper's setup), so batch generation is part
/// of the host stage the pipeline overlaps with device compute.
#[derive(Clone, Debug)]
pub struct PrefetchedBatch {
    /// Sequence number of the batch these rows serve.
    pub batch_seq: u64,
    /// Number of gradient batches the server had applied when gathering —
    /// the staleness stamp the embedding cache synchronizes against.
    pub applied_through: u64,
    /// The training batch itself.
    pub batch: MiniBatch,
    /// Per hosted table: `(table id, unique sorted indices, rows)`
    /// (`UniqueRows` mode).
    pub tables: Vec<(usize, Vec<u32>, Matrix)>,
    /// Per hosted table: `(table id, pooled batch x dim embeddings)`
    /// (`PooledEmbeddings` mode).
    pub pooled: Vec<(usize, TMatrix)>,
}

impl PrefetchedBatch {
    /// Bytes of embedding payload (the H2D traffic this transfer costs).
    pub fn payload_bytes(&self) -> usize {
        let unique: usize =
            self.tables.iter().map(|(_, idx, rows)| idx.len() * 4 + rows.footprint_bytes()).sum();
        let pooled: usize = self.pooled.iter().map(|(_, m)| m.footprint_bytes()).sum();
        unique + pooled
    }
}

/// Gradients pushed back for one batch.
#[derive(Clone, Debug)]
pub struct GradientPush {
    /// Sequence number of the batch that produced these gradients.
    pub batch_seq: u64,
    /// Per hosted table: `(table id, aggregated sparse gradient)`
    /// (`UniqueRows` mode).
    pub tables: Vec<(usize, SparseGrad)>,
    /// Per hosted table: `(table id, pooled-embedding gradient)`
    /// (`PooledEmbeddings` mode; the server re-derives per-row updates).
    pub pooled: Vec<(usize, TMatrix)>,
}

impl GradientPush {
    /// Bytes of gradient payload (D2H traffic).
    pub fn payload_bytes(&self) -> usize {
        let unique: usize =
            self.tables.iter().map(|(_, g)| g.indices.len() * 4 + g.values.len() * 4).sum();
        let pooled: usize = self.pooled.iter().map(|(_, m)| m.footprint_bytes()).sum();
        unique + pooled
    }
}

/// The host-side parameter server.
pub struct HostServer {
    /// Hosted tables: `(table id in the model, table)`.
    pub tables: Vec<(usize, EmbeddingBag)>,
    /// SGD learning rate applied to pushed gradients.
    pub lr: f32,
    /// Gradient batches applied so far.
    pub applied: u64,
    /// Communication accounting (what the PCIe link would carry).
    pub meter: CommMeter,
    /// Measured CPU time spent gathering and applying (the host-side cost
    /// that stays at CPU speed in the simulated-device model).
    pub cpu_time: Duration,
    /// Measured CPU time spent generating batches (the data-loader role —
    /// NVTabular in the paper's setup — reported separately because both
    /// the paper's baselines and EL-Rec use the same loader).
    pub gen_time: Duration,
    /// Serving strategy.
    pub mode: ServerMode,
}

/// Outcome of a completed server run.
pub struct ServerReport {
    /// The server with final table state.
    pub server: HostServer,
}

impl HostServer {
    /// A server hosting the given tables.
    pub fn new(tables: Vec<(usize, EmbeddingBag)>, lr: f32) -> Self {
        Self {
            tables,
            lr,
            applied: 0,
            meter: CommMeter::new(),
            cpu_time: Duration::ZERO,
            gen_time: Duration::ZERO,
            mode: ServerMode::UniqueRows,
        }
    }

    /// Switches the serving strategy (builder style).
    pub fn with_mode(mut self, mode: ServerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Serves batch `seq` from every hosted table: unique rows
    /// (`UniqueRows`) or CPU-pooled embeddings (`PooledEmbeddings`).
    pub fn gather(&mut self, batch: MiniBatch, seq: u64) -> PrefetchedBatch {
        let t0 = thread_cpu_time();
        let mut tables = Vec::new();
        let mut pooled = Vec::new();
        match self.mode {
            ServerMode::UniqueRows => {
                tables = self
                    .tables
                    .iter()
                    .map(|(t, bag)| {
                        let field = &batch.fields[*t];
                        let mut unique: Vec<u32> = field.indices.clone();
                        unique.sort_unstable();
                        unique.dedup();
                        let rows = bag.gather_rows(&unique);
                        (*t, unique, rows)
                    })
                    .collect();
            }
            ServerMode::PooledEmbeddings => {
                pooled = self
                    .tables
                    .iter()
                    .map(|(t, bag)| {
                        let field = &batch.fields[*t];
                        (*t, bag.forward(&field.indices, &field.offsets))
                    })
                    .collect();
            }
        }
        let pf = PrefetchedBatch {
            batch_seq: seq,
            applied_through: self.applied,
            batch,
            tables,
            pooled,
        };
        self.meter.h2d(pf.payload_bytes());
        self.cpu_time += thread_cpu_time() - t0;
        pf
    }

    /// Applies one pushed gradient batch with SGD.
    pub fn apply(&mut self, push: &GradientPush) {
        let t0 = thread_cpu_time();
        assert_eq!(push.batch_seq, self.applied, "gradient batches must arrive in order");
        self.meter.d2h(push.payload_bytes());
        for (t, grad) in &push.tables {
            let bag = &mut self
                .tables
                .iter_mut()
                .find(|(id, _)| id == t)
                .unwrap_or_else(|| panic!("gradient for unknown hosted table {t}"))
                .1;
            bag.apply_sparse_grad(grad, self.lr);
        }
        self.applied += 1;
        self.cpu_time += thread_cpu_time() - t0;
    }

    /// Applies a pooled-gradient push (`PooledEmbeddings` mode): the full
    /// `EmbeddingBag` backward runs on the CPU, exactly like the reference
    /// DLRM baseline.
    pub fn apply_pooled(&mut self, push: &GradientPush, batch: &MiniBatch) {
        let t0 = thread_cpu_time();
        assert_eq!(push.batch_seq, self.applied, "gradient batches must arrive in order");
        self.meter.d2h(push.payload_bytes());
        let lr = self.lr;
        for (t, d_pooled) in &push.pooled {
            let bag = &mut self
                .tables
                .iter_mut()
                .find(|(id, _)| id == t)
                .unwrap_or_else(|| panic!("gradient for unknown hosted table {t}"))
                .1;
            let field = &batch.fields[*t];
            bag.backward_sgd(&field.indices, &field.offsets, d_pooled, lr);
        }
        self.applied += 1;
        self.cpu_time += thread_cpu_time() - t0;
    }

    /// Runs the serving loop for `count` batches of `batch_size` starting
    /// at `first`, pre-fetching through `prefetch_tx` and applying from
    /// `grad_rx`. With `pipelined == false` the server blocks on every
    /// batch's gradients before gathering the next (the Figure 16
    /// "sequential" baseline).
    #[allow(clippy::too_many_arguments)] // serving-loop wiring: queues + schedule
    pub fn run(
        mut self,
        dataset: &SyntheticDataset,
        first: u64,
        count: u64,
        batch_size: usize,
        prefetch_tx: Sender<PrefetchedBatch>,
        grad_rx: Receiver<GradientPush>,
        pipelined: bool,
    ) -> ServerReport {
        assert!(
            !(pipelined && self.mode == ServerMode::PooledEmbeddings),
            "the pooled-embedding (reference DLRM) mode has no staleness protocol; \
             run it sequentially"
        );
        for k in 0..count {
            if pipelined {
                // opportunistically absorb any pending gradients
                while let Ok(push) = grad_rx.try_recv() {
                    self.apply(&push);
                }
            }
            let t0 = thread_cpu_time();
            let batch = dataset.batch(first + k, batch_size);
            self.gen_time += thread_cpu_time() - t0;
            let batch_copy = (self.mode == ServerMode::PooledEmbeddings).then(|| batch.clone());
            let pf = self.gather(batch, k);
            if prefetch_tx.send(pf).is_err() {
                break; // worker gone
            }
            if !pipelined {
                match grad_rx.recv() {
                    Ok(push) => match &batch_copy {
                        Some(b) => self.apply_pooled(&push, b),
                        None => self.apply(&push),
                    },
                    Err(_) => break,
                }
            }
        }
        drop(prefetch_tx);
        // Drain the tail so every update lands.
        while self.applied < count {
            match grad_rx.recv() {
                Ok(push) => self.apply(&push),
                Err(_) => break,
            }
        }
        ServerReport { server: self }
    }
}

/// Creates the bounded pre-fetch queue and the gradient queue of Figure 9.
///
/// The pre-fetch capacity is the paper's queue length: 1 degenerates the
/// pipeline to sequential execution.
pub fn make_queues(
    prefetch_depth: usize,
) -> (
    Sender<PrefetchedBatch>,
    Receiver<PrefetchedBatch>,
    Sender<GradientPush>,
    Receiver<GradientPush>,
) {
    let (ptx, prx) = bounded(prefetch_depth.max(1));
    let (gtx, grx) = bounded(prefetch_depth.max(1) * 2);
    (ptx, prx, gtx, grx)
}

/// Sum-pools pre-fetched unique rows into per-sample embeddings — the
/// worker-side substitute for a local `EmbeddingBag::forward` when the
/// table lives on the host.
pub fn pool_prefetched(indices: &[u32], offsets: &[u32], unique: &[u32], rows: &Matrix) -> Matrix {
    let dim = rows.cols();
    let batch = offsets.len() - 1;
    let mut out = Matrix::zeros(batch, dim);
    for s in 0..batch {
        let dst = out.row_mut(s);
        for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
            let slot = unique.binary_search(&i).expect("index missing from prefetch");
            for (d, v) in dst.iter_mut().zip(rows.row(slot)) {
                *d += v;
            }
        }
    }
    out
}

/// Aggregates a pooled-embedding gradient into per-unique-row gradients —
/// the worker-side push payload builder.
pub fn aggregate_to_unique(
    indices: &[u32],
    offsets: &[u32],
    unique: &[u32],
    d_out: &Matrix,
) -> SparseGrad {
    let dim = d_out.cols();
    let mut values = vec![0.0f32; unique.len() * dim];
    for s in 0..d_out.rows() {
        let g = d_out.row(s);
        for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
            let slot = unique.binary_search(&i).expect("index missing from prefetch");
            for (v, gv) in values[slot * dim..(slot + 1) * dim].iter_mut().zip(g) {
                *v += gv;
            }
        }
    }
    SparseGrad { indices: unique.to_vec(), values, dim }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_data::DatasetSpec;
    use rand::SeedableRng;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::new(DatasetSpec::toy(2, 50, 10_000), 3)
    }

    fn server() -> HostServer {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let tables = vec![
            (0usize, EmbeddingBag::new(50, 8, 0.2, &mut rng)),
            (1usize, EmbeddingBag::new(50, 8, 0.2, &mut rng)),
        ];
        HostServer::new(tables, 0.1)
    }

    #[test]
    fn gather_returns_unique_sorted_rows() {
        let mut s = server();
        let batch = dataset().batch(0, 16);
        let pf = s.gather(batch, 0);
        assert_eq!(pf.tables.len(), 2);
        for (t, unique, rows) in &pf.tables {
            assert!(unique.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
            assert_eq!(rows.rows(), unique.len());
            let bag = &s.tables.iter().find(|(id, _)| id == t).unwrap().1;
            for (r, &i) in unique.iter().enumerate() {
                assert_eq!(rows.row(r), bag.weight.row(i as usize));
            }
        }
        assert!(s.meter.h2d_bytes > 0);
    }

    #[test]
    fn apply_updates_rows_in_order() {
        let mut s = server();
        let before = s.tables[0].1.weight.row(7).to_vec();
        let push = GradientPush {
            batch_seq: 0,
            tables: vec![(0, SparseGrad { indices: vec![7], values: vec![1.0; 8], dim: 8 })],
            pooled: vec![],
        };
        s.apply(&push);
        let after = s.tables[0].1.weight.row(7);
        for (b, a) in before.iter().zip(after) {
            assert!((b - 0.1 - a).abs() < 1e-6);
        }
        assert_eq!(s.applied, 1);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_push_panics() {
        let mut s = server();
        let push = GradientPush { batch_seq: 5, tables: vec![], pooled: vec![] };
        s.apply(&push);
    }

    #[test]
    fn pool_prefetched_matches_dense_bag() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let bag = EmbeddingBag::new(20, 4, 0.3, &mut rng);
        let indices = [3u32, 7, 3, 11];
        let offsets = [0u32, 2, 4];
        let want = bag.forward(&indices, &offsets);

        let unique = vec![3u32, 7, 11];
        let rows = bag.gather_rows(&unique);
        let got = pool_prefetched(&indices, &offsets, &unique, &rows);
        assert!(got.max_abs_diff(&want) < 1e-6);
    }

    #[test]
    fn aggregate_matches_sparse_grad() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bag = EmbeddingBag::new(20, 4, 0.3, &mut rng);
        let indices = [3u32, 7, 3, 11];
        let offsets = [0u32, 2, 4];
        let d_out = Matrix::uniform(2, 4, 1.0, &mut rng);
        let want = bag.sparse_grad(&indices, &offsets, &d_out);

        let unique = vec![3u32, 7, 11];
        let got = aggregate_to_unique(&indices, &offsets, &unique, &d_out);
        assert_eq!(got.indices, want.indices);
        for (a, b) in got.values.iter().zip(&want.values) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn run_loop_round_trips_with_a_fake_worker() {
        let ds = dataset();
        let (ptx, prx, gtx, grx) = make_queues(2);
        let srv = server();
        let before = srv.tables[0].1.weight.clone();

        let handle = std::thread::spawn({
            let ds = ds.clone();
            move || srv.run(&ds, 0, 4, 8, ptx, grx, true)
        });

        // fake worker: push a unit gradient for everything prefetched
        for _ in 0..4 {
            let pf = prx.recv().unwrap();
            let tables = pf
                .tables
                .iter()
                .map(|(t, unique, rows)| {
                    (
                        *t,
                        SparseGrad {
                            indices: unique.clone(),
                            values: vec![1.0; rows.len()],
                            dim: rows.cols(),
                        },
                    )
                })
                .collect();
            gtx.send(GradientPush { batch_seq: pf.batch_seq, tables, pooled: vec![] }).unwrap();
        }
        drop(gtx);
        let report = handle.join().unwrap();
        assert_eq!(report.server.applied, 4);
        // weights moved
        assert!(report.server.tables[0].1.weight.max_abs_diff(&before) > 0.0);
    }
}
