//! Replicated parameter shards: primary/backup groups over the sharded
//! tier (DESIGN.md §15).
//!
//! Each `HostServer` shard becomes a K-member [`ReplicaGroup`]: one
//! primary plus K-1 backups fed by a sequenced [`GradientLog`]. The
//! primary's already-stamped, exactly-once [`HostServer::apply_checked`]
//! intake is appended to every alive backup under the *same* stamp domain,
//! so replication is idempotent and primary and backups are byte-identical
//! at every applied watermark — which is what makes promotion free: a
//! promoted backup resumes from its own watermark and the min-stamp stitch
//! of the sharded gather path (DESIGN.md §14) already tolerates the skew.
//!
//! The module also provides the clock-agnostic failure-detection pieces
//! the simulator and the trainer share: [`HeartbeatConfig`] (typed
//! heartbeat interval / suspicion timeout with deterministic seeded
//! jitter) and [`FailureDetector`] (a last-heard watermark over abstract
//! `u64` ticks, so virtual-clock simulation and wall-clock serving use the
//! same arithmetic).

use crate::ckpt::ServerCheckpoint;
use crate::server::{ApplyOutcome, GradientPush, HostServer, PrefetchedBatch, ServerError};
use el_data::MiniBatch;
use std::collections::VecDeque;
use std::fmt;

/// SplitMix64 — the one-instruction-wide seed mixer used for deterministic
/// jitter (same constants as `el_sim::clock::splitmix64`; duplicated here
/// because el-sim depends on this crate, not the other way around).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Replication knobs for the sharded parameter tier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Members per shard group (primary + backups). `1` is the
    /// unreplicated degenerate: no log, no failover.
    pub replicas: u32,
    /// Ticks between primary heartbeats (before jitter).
    pub heartbeat_every: u64,
    /// Ticks of heartbeat silence before a primary is suspected. Clamped
    /// to at least `heartbeat_every + max_jitter + 1` (see
    /// [`HeartbeatConfig::min_suspicion`]) so one maximally jittered gap
    /// can never trip it.
    pub suspicion_after: u64,
    /// Gradient-log retention: when the log holds this many entries a
    /// snapshot is refreshed and the log trimmed, bounding catch-up memory.
    pub log_capacity: usize,
    /// Deterministic failover drill schedule: `(shard, watermark)` pairs —
    /// the shard's primary is killed (and a backup promoted) right after
    /// its applied count reaches the watermark. Used by the failover tests
    /// to prove promotion never changes trained bytes.
    pub kill_primary_at: Vec<(u32, u64)>,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            heartbeat_every: 8,
            suspicion_after: 30,
            log_capacity: 64,
            kill_primary_at: Vec::new(),
        }
    }
}

impl ReplicationConfig {
    /// Reads `EL_REPLICAS` / `EL_HEARTBEAT_TICKS` / `EL_SUSPECT_TICKS`
    /// overrides on top of the defaults. Unset or unparsable values keep
    /// the default; `replicas` and `heartbeat_every` are clamped to at
    /// least 1, and `suspicion_after` to at least
    /// [`HeartbeatConfig::min_suspicion`] of the heartbeat interval.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("EL_REPLICAS") {
            if let Ok(n) = v.trim().parse::<u32>() {
                cfg.replicas = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("EL_HEARTBEAT_TICKS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                cfg.heartbeat_every = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("EL_SUSPECT_TICKS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                cfg.suspicion_after = n;
            }
        }
        cfg.suspicion_after =
            cfg.suspicion_after.max(HeartbeatConfig::min_suspicion(cfg.heartbeat_every));
        cfg
    }

    /// The heartbeat schedule this config implies.
    pub fn heartbeat(&self, seed: u64) -> HeartbeatConfig {
        HeartbeatConfig {
            every: self.heartbeat_every,
            suspicion_after: self
                .suspicion_after
                .max(HeartbeatConfig::min_suspicion(self.heartbeat_every)),
            jitter: HeartbeatConfig::max_jitter(self.heartbeat_every),
            seed,
        }
    }
}

/// Typed failures of the replication layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicaError {
    /// Every member of the group is dead; the shard cannot be served.
    NoAliveMembers,
    /// A rank outside the group was addressed.
    UnknownRank {
        /// The rank asked for.
        rank: u32,
        /// Members in the group.
        members: u32,
    },
    /// The addressed member is dead (kill or catch-up on a corpse).
    DeadMember(u32),
    /// Catch-up needed log entries older than the retained snapshot — the
    /// caller must re-seed from a full checkpoint instead.
    LogTrimmed {
        /// First sequence the rejoiner needed.
        needed: u64,
        /// Oldest sequence the log still holds.
        base: u64,
    },
    /// A member's intake failed (protocol bug surfaced as data).
    Server(ServerError),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::NoAliveMembers => write!(f, "no alive members left in the group"),
            ReplicaError::UnknownRank { rank, members } => {
                write!(f, "rank {rank} outside the {members}-member group")
            }
            ReplicaError::DeadMember(r) => write!(f, "member {r} is dead"),
            ReplicaError::LogTrimmed { needed, base } => {
                write!(f, "gradient log trimmed: need seq {needed}, log starts at {base}")
            }
            ReplicaError::Server(e) => write!(f, "member intake failed: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<ServerError> for ReplicaError {
    fn from(e: ServerError) -> Self {
        ReplicaError::Server(e)
    }
}

/// Bounded sequenced log of applied gradient pushes, replayed to catch a
/// rejoining replica up from a snapshot watermark.
pub struct GradientLog {
    base: u64,
    entries: VecDeque<GradientPush>,
    capacity: usize,
}

impl GradientLog {
    /// An empty log whose first entry will be `base`.
    pub fn new(base: u64, capacity: usize) -> Self {
        Self { base, entries: VecDeque::new(), capacity: capacity.max(1) }
    }

    /// Oldest retained sequence number.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Sequence number the next append must carry.
    pub fn next_seq(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Whether the log is at its retention capacity.
    pub fn full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends the push applied at `next_seq`. Out-of-sequence appends are
    /// a protocol bug reported as a typed error.
    pub fn append(&mut self, push: GradientPush) -> Result<(), ReplicaError> {
        if push.batch_seq != self.next_seq() {
            return Err(ReplicaError::Server(ServerError::GradientGap {
                got: push.batch_seq,
                expected: self.next_seq(),
            }));
        }
        self.entries.push_back(push);
        Ok(())
    }

    /// Drops entries below `watermark` (a snapshot now covers them).
    pub fn truncate_below(&mut self, watermark: u64) {
        while self.base < watermark {
            if self.entries.pop_front().is_none() {
                self.base = watermark;
                return;
            }
            self.base += 1;
        }
    }

    /// Entries from `watermark` on, or a typed error when the log no
    /// longer reaches back that far. The iterator spans both halves of
    /// the ring, so retention settings whose trims wrap the underlying
    /// allocation replay exactly like ones that don't.
    pub fn entries_from(
        &self,
        watermark: u64,
    ) -> Result<impl Iterator<Item = &GradientPush> + '_, ReplicaError> {
        if watermark < self.base {
            return Err(ReplicaError::LogTrimmed { needed: watermark, base: self.base });
        }
        let skip = (watermark - self.base) as usize;
        Ok(self.entries.iter().skip(skip))
    }
}

/// One shard's replica group: lockstep primary + backups over the same
/// exactly-once stamp domain.
pub struct ReplicaGroup {
    members: Vec<Option<HostServer>>,
    primary: usize,
    log: GradientLog,
    snapshot: ServerCheckpoint,
    shard: u32,
    num_shards: u32,
    failovers: u64,
}

/// Clones a server's durable state (tables, lr, applied) into a fresh
/// member with its own meters.
fn clone_member(server: &HostServer) -> HostServer {
    let mut m = HostServer::new(server.tables.clone(), server.lr);
    m.applied = server.applied;
    m
}

impl ReplicaGroup {
    /// Wraps `server` (shard `shard` of `num_shards`) in a group of
    /// `replicas` byte-identical members. The initial snapshot is taken
    /// immediately, so catch-up is possible from the first batch on.
    pub fn new(
        server: HostServer,
        replicas: u32,
        shard: u32,
        num_shards: u32,
        log_capacity: usize,
    ) -> Self {
        let replicas = replicas.max(1);
        let snapshot = ServerCheckpoint::capture_shard(&server, shard, num_shards);
        let mut members = Vec::with_capacity(replicas as usize);
        for _ in 1..replicas {
            members.push(Some(clone_member(&server)));
        }
        members.insert(0, Some(server));
        let base = snapshot.applied;
        Self {
            members,
            primary: 0,
            log: GradientLog::new(base, log_capacity),
            snapshot,
            shard,
            num_shards,
            failovers: 0,
        }
    }

    /// Current primary rank.
    pub fn primary_rank(&self) -> u32 {
        self.primary as u32
    }

    /// Number of members (alive or dead).
    pub fn members(&self) -> u32 {
        self.members.len() as u32
    }

    /// Number of alive members.
    pub fn alive(&self) -> u32 {
        self.members.iter().filter(|m| m.is_some()).count() as u32
    }

    /// Promotions performed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The primary's applied watermark (0 if the whole group is dead).
    pub fn applied(&self) -> u64 {
        self.members[self.primary].as_ref().map_or(0, |s| s.applied)
    }

    /// Borrows the primary.
    pub fn primary(&self) -> Result<&HostServer, ReplicaError> {
        self.members[self.primary].as_ref().ok_or(ReplicaError::NoAliveMembers)
    }

    /// Mutably borrows the primary (for gather-side meter accounting —
    /// gathers read the primary only, so backups stay byte-identical).
    pub fn primary_mut(&mut self) -> Result<&mut HostServer, ReplicaError> {
        self.members[self.primary].as_mut().ok_or(ReplicaError::NoAliveMembers)
    }

    /// Borrows a member by rank (alive or not).
    pub fn member(&self, rank: u32) -> Result<Option<&HostServer>, ReplicaError> {
        self.members
            .get(rank as usize)
            .map(|m| m.as_ref())
            .ok_or(ReplicaError::UnknownRank { rank, members: self.members() })
    }

    /// Gathers batch `seq` through the primary (stamped with its applied
    /// watermark, exactly like an unreplicated shard).
    pub fn gather(&mut self, batch: MiniBatch, seq: u64) -> Result<PrefetchedBatch, ReplicaError> {
        let primary = self.members[self.primary].as_mut().ok_or(ReplicaError::NoAliveMembers)?;
        Ok(primary.gather(batch, seq))
    }

    /// Applies one push through the whole group: exactly-once intake at
    /// the primary, then the stamped push goes to the log and to every
    /// alive backup (idempotent over the same stamp domain). Duplicates
    /// are absorbed at the primary and never re-replicated. A backup
    /// whose intake rejects a lockstep push has diverged from the stamp
    /// domain; it is killed (it can rejoin via [`ReplicaGroup::catch_up`])
    /// rather than aborting mid-replication, which would leave the
    /// primary ahead of the log and the remaining backups.
    pub fn apply_checked(&mut self, push: &GradientPush) -> Result<ApplyOutcome, ReplicaError> {
        // Refresh the snapshot from the *pre-push* primary before a full
        // log would trim away the entry this push is about to append.
        if self.log.full() {
            self.checkpoint();
        }
        let rank = self.primary;
        let primary = self.members[rank].as_mut().ok_or(ReplicaError::NoAliveMembers)?;
        let outcome = primary.apply_checked(push)?;
        if outcome == ApplyOutcome::Duplicate {
            return Ok(outcome);
        }
        // Log before replicating: the log and the primary share the stamp
        // domain, so this append cannot gap once the primary accepted the
        // push, and a backup failure below never strands an unlogged seq.
        self.log.append(push.clone())?;
        for (r, member) in self.members.iter_mut().enumerate() {
            if r == rank {
                continue;
            }
            // Lockstep keeps backups at the primary's watermark, so this
            // is Applied (or Duplicate right after a catch-up); an Err is
            // a diverged member, removed so the group stays consistent.
            if member.as_mut().is_some_and(|b| b.apply_checked(push).is_err()) {
                *member = None;
            }
        }
        Ok(outcome)
    }

    /// Refreshes the retained snapshot from the primary's *pre-push* state
    /// and trims the log below it, bounding replay length. No-op when the
    /// group is dead.
    pub fn checkpoint(&mut self) {
        if let Some(primary) = self.members[self.primary].as_ref() {
            self.snapshot = ServerCheckpoint::capture_shard(primary, self.shard, self.num_shards);
            self.log.truncate_below(self.snapshot.applied);
        }
    }

    /// Kills the current primary and promotes the next alive rank
    /// (cyclically). Because replication is lockstep, the promoted backup
    /// is byte-identical to the dead primary at the same watermark —
    /// training continues without a cold restart. Returns the new primary
    /// rank.
    pub fn kill_primary(&mut self) -> Result<u32, ReplicaError> {
        self.members[self.primary] = None;
        let n = self.members.len();
        for step in 1..n {
            let r = (self.primary + step) % n;
            if self.members[r].is_some() {
                self.primary = r;
                self.failovers += 1;
                return Ok(r as u32);
            }
        }
        Err(ReplicaError::NoAliveMembers)
    }

    /// Kills a backup by rank (killing the primary through this is a
    /// typed error — use [`ReplicaGroup::kill_primary`], which promotes).
    pub fn kill_backup(&mut self, rank: u32) -> Result<(), ReplicaError> {
        let idx = rank as usize;
        if idx >= self.members.len() {
            return Err(ReplicaError::UnknownRank { rank, members: self.members() });
        }
        if idx == self.primary {
            return Err(ReplicaError::DeadMember(rank));
        }
        if self.members[idx].take().is_none() {
            return Err(ReplicaError::DeadMember(rank));
        }
        Ok(())
    }

    /// Revives a dead member through the catch-up path: restore the
    /// retained snapshot, then replay the gradient log from the snapshot
    /// watermark. The rejoined member lands byte-identical to the primary
    /// and resumes receiving lockstep appends.
    pub fn catch_up(&mut self, rank: u32) -> Result<(), ReplicaError> {
        let idx = rank as usize;
        if idx >= self.members.len() {
            return Err(ReplicaError::UnknownRank { rank, members: self.members() });
        }
        if self.members[idx].is_some() {
            return Ok(()); // already alive: nothing to do
        }
        let mut revived = self.snapshot.clone().restore();
        for push in self.log.entries_from(revived.applied)? {
            revived.apply_checked(push)?;
        }
        self.members[idx] = Some(revived);
        Ok(())
    }

    /// Whether every alive member is byte-identical (same watermark, same
    /// table bytes) — the replication invariant the failover tests assert.
    pub fn verify_consistent(&self) -> bool {
        let Ok(primary) = self.primary() else { return false };
        self.members.iter().flatten().all(|m| {
            m.applied == primary.applied
                && m.tables.len() == primary.tables.len()
                && m.tables.iter().zip(&primary.tables).all(|((ia, a), (ib, b))| {
                    ia == ib && a.weight.as_slice() == b.weight.as_slice()
                })
        })
    }

    /// Consumes the group, returning the final primary (the state the
    /// trainer merges).
    pub fn into_primary(mut self) -> Result<HostServer, ReplicaError> {
        self.members[self.primary].take().ok_or(ReplicaError::NoAliveMembers)
    }
}

/// Heartbeat schedule with deterministic seeded jitter: interval `every`
/// plus `splitmix64(seed ^ n) % (jitter + 1)` for the n-th beat — the same
/// seed always yields the same schedule, so seeded sim replays stay
/// bit-for-bit while distinct shards decorrelate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Base ticks between heartbeats.
    pub every: u64,
    /// Ticks of silence before suspicion.
    pub suspicion_after: u64,
    /// Maximum jitter added to each interval.
    pub jitter: u64,
    /// Jitter seed (mix in the shard/rank identity).
    pub seed: u64,
}

impl HeartbeatConfig {
    /// Maximum jitter a beat interval of `every` ticks carries (half the
    /// interval, at least one tick).
    pub fn max_jitter(every: u64) -> u64 {
        (every / 2).max(1)
    }

    /// Minimum safe suspicion timeout for a beat interval of `every`
    /// ticks: one full interval plus its maximum jitter plus one tick,
    /// so a single maximally jittered heartbeat gap can never trip the
    /// detector on its own.
    pub fn min_suspicion(every: u64) -> u64 {
        every + Self::max_jitter(every) + 1
    }

    /// Delay before the `n`-th heartbeat.
    pub fn delay(&self, n: u64) -> u64 {
        self.every + splitmix64(self.seed ^ n) % (self.jitter + 1)
    }
}

/// Clock-agnostic failure detector over abstract `u64` ticks: records the
/// last time a heartbeat was heard and reports suspicion after a typed
/// timeout. Works identically under the simulator's virtual clock and a
/// wall-clock tick source.
#[derive(Clone, Copy, Debug)]
pub struct FailureDetector {
    suspicion_after: u64,
    last_heard: u64,
}

impl FailureDetector {
    /// A detector that considers `now` the moment it last heard from the
    /// peer (grace on creation and on failover).
    pub fn new(suspicion_after: u64, now: u64) -> Self {
        Self { suspicion_after: suspicion_after.max(1), last_heard: now }
    }

    /// Records a heartbeat (monotone: a late-delivered old beat never
    /// moves the watermark backwards).
    pub fn record_heartbeat(&mut self, now: u64) {
        self.last_heard = self.last_heard.max(now);
    }

    /// Ticks since the peer was last heard.
    pub fn silent_for(&self, now: u64) -> u64 {
        now.saturating_sub(self.last_heard)
    }

    /// `Some(silent_for)` once silence reaches the suspicion timeout.
    pub fn suspected(&self, now: u64) -> Option<u64> {
        let silent = self.silent_for(now);
        (silent >= self.suspicion_after).then_some(silent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use el_dlrm::embedding_bag::{EmbeddingBag, SparseGrad};
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn test_server(seed: u64) -> HostServer {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tables = vec![
            (1usize, EmbeddingBag::new(40, 8, 0.2, &mut rng)),
            (2usize, EmbeddingBag::new(30, 8, 0.2, &mut rng)),
        ];
        HostServer::new(tables, 0.05)
    }

    fn push_for(seq: u64) -> GradientPush {
        let h = splitmix64(seq.wrapping_mul(0x9E37));
        let idx = (h % 30) as u32;
        GradientPush {
            batch_seq: seq,
            tables: vec![
                (1, SparseGrad { indices: vec![idx], values: vec![0.5; 8], dim: 8 }),
                (2, SparseGrad { indices: vec![idx / 2], values: vec![-0.25; 8], dim: 8 }),
            ],
            pooled: vec![],
        }
    }

    fn digest(server: &HostServer) -> Vec<Vec<f32>> {
        server.tables.iter().map(|(_, b)| b.weight.as_slice().to_vec()).collect()
    }

    #[test]
    fn lockstep_replication_keeps_members_byte_identical() {
        let mut group = ReplicaGroup::new(test_server(1), 3, 0, 1, 16);
        for seq in 0..10 {
            assert_eq!(group.apply_checked(&push_for(seq)).unwrap(), ApplyOutcome::Applied);
            assert!(group.verify_consistent(), "diverged at seq {seq}");
        }
        // duplicates are absorbed once, never re-applied anywhere
        assert_eq!(group.apply_checked(&push_for(3)).unwrap(), ApplyOutcome::Duplicate);
        assert!(group.verify_consistent());
        assert_eq!(group.applied(), 10);
    }

    #[test]
    fn promotion_is_byte_identical_to_the_never_failed_run() {
        let mut plain = test_server(2);
        let mut group = ReplicaGroup::new(test_server(2), 2, 0, 1, 32);
        for seq in 0..6 {
            plain.apply_checked(&push_for(seq)).unwrap();
            group.apply_checked(&push_for(seq)).unwrap();
        }
        let new_primary = group.kill_primary().unwrap();
        assert_eq!(new_primary, 1);
        assert_eq!(group.applied(), 6, "promoted backup resumes at the same watermark");
        for seq in 6..12 {
            plain.apply_checked(&push_for(seq)).unwrap();
            group.apply_checked(&push_for(seq)).unwrap();
        }
        assert_eq!(digest(group.primary().unwrap()), digest(&plain));
        assert_eq!(group.failovers(), 1);
    }

    #[test]
    fn catch_up_replays_snapshot_plus_log() {
        let mut group = ReplicaGroup::new(test_server(3), 3, 0, 1, 64);
        for seq in 0..4 {
            group.apply_checked(&push_for(seq)).unwrap();
        }
        group.kill_backup(2).unwrap();
        for seq in 4..9 {
            group.apply_checked(&push_for(seq)).unwrap();
        }
        group.catch_up(2).unwrap();
        assert!(group.verify_consistent(), "rejoined member must match the primary");
        // and the rejoined member keeps receiving lockstep appends
        group.apply_checked(&push_for(9)).unwrap();
        assert!(group.verify_consistent());
    }

    #[test]
    fn catch_up_beyond_retention_is_a_typed_error() {
        // capacity 2: the log trims aggressively, but checkpoints refresh
        // the snapshot, so catch-up still succeeds from the snapshot
        let mut group = ReplicaGroup::new(test_server(4), 2, 0, 1, 2);
        group.kill_backup(1).unwrap();
        for seq in 0..8 {
            group.apply_checked(&push_for(seq)).unwrap();
        }
        group.catch_up(1).unwrap();
        assert!(group.verify_consistent());
        // a log asked for pre-base entries reports LogTrimmed
        let log = GradientLog::new(5, 4);
        assert_eq!(
            log.entries_from(2).err(),
            Some(ReplicaError::LogTrimmed { needed: 2, base: 5 })
        );
    }

    #[test]
    fn catch_up_survives_log_ring_wraparound() {
        // A non-power-of-two retention (3) makes the VecDeque ring wrap
        // after the first trims, so entries_from must span both halves
        // of the ring. Exercise catch-up at every stop point well past
        // several wraps, for several awkward capacities.
        for capacity in [3usize, 5, 6, 7] {
            for stop in 1u64..16 {
                let mut group = ReplicaGroup::new(test_server(7), 2, 0, 1, capacity);
                group.kill_backup(1).unwrap();
                for seq in 0..stop {
                    group.apply_checked(&push_for(seq)).unwrap();
                }
                group.catch_up(1).unwrap_or_else(|e| {
                    panic!("catch_up failed at stop {stop}, capacity {capacity}: {e}")
                });
                assert!(
                    group.verify_consistent(),
                    "rejoined member diverged at stop {stop}, capacity {capacity}"
                );
            }
        }
    }

    #[test]
    fn diverged_backup_is_killed_not_poisoning_the_group() {
        let mut group = ReplicaGroup::new(test_server(8), 3, 0, 1, 16);
        for seq in 0..3 {
            group.apply_checked(&push_for(seq)).unwrap();
        }
        // Force a stamp-domain divergence on backup 1: the next lockstep
        // push is stamped ahead of its watermark, so its intake reports a
        // gap instead of applying.
        group.members[1].as_mut().unwrap().applied -= 1;
        assert_eq!(group.apply_checked(&push_for(3)).unwrap(), ApplyOutcome::Applied);
        assert_eq!(group.alive(), 2, "the diverged backup must be killed");
        assert!(group.verify_consistent(), "survivors stay byte-identical");
        // The group keeps making progress and the dead member can rejoin.
        group.apply_checked(&push_for(4)).unwrap();
        group.catch_up(1).unwrap();
        assert!(group.verify_consistent());
        group.apply_checked(&push_for(5)).unwrap();
        assert!(group.verify_consistent());
        assert_eq!(group.applied(), 6);
    }

    #[test]
    fn suspicion_clamp_covers_a_maximally_jittered_gap() {
        assert_eq!(HeartbeatConfig::max_jitter(8), 4);
        assert_eq!(HeartbeatConfig::min_suspicion(8), 13);
        assert_eq!(HeartbeatConfig::min_suspicion(1), 3);
        // A user-set timeout of heartbeat_every + 1 must be raised past
        // interval + max jitter, or every jittered beat would look late.
        let cfg = ReplicationConfig {
            heartbeat_every: 8,
            suspicion_after: 9,
            ..ReplicationConfig::default()
        };
        let hb = cfg.heartbeat(0);
        assert_eq!(hb.suspicion_after, 13);
        assert!((0..64).all(|n| hb.delay(n) < hb.suspicion_after));
    }

    #[test]
    fn killing_everyone_is_a_typed_error() {
        let mut group = ReplicaGroup::new(test_server(5), 2, 0, 1, 8);
        group.kill_primary().unwrap();
        assert_eq!(group.kill_primary(), Err(ReplicaError::NoAliveMembers));
        assert!(group.primary().is_err());
    }

    #[test]
    fn kill_backup_rejects_primary_and_unknown_ranks() {
        let mut group = ReplicaGroup::new(test_server(6), 2, 0, 1, 8);
        assert_eq!(group.kill_backup(0), Err(ReplicaError::DeadMember(0)));
        assert!(matches!(group.kill_backup(7), Err(ReplicaError::UnknownRank { rank: 7, .. })));
        group.kill_backup(1).unwrap();
        assert_eq!(group.kill_backup(1), Err(ReplicaError::DeadMember(1)));
    }

    #[test]
    fn failure_detector_suspects_after_typed_timeout() {
        let mut det = FailureDetector::new(30, 100);
        assert_eq!(det.suspected(129), None);
        assert_eq!(det.suspected(130), Some(30));
        det.record_heartbeat(125);
        assert_eq!(det.suspected(130), None);
        assert_eq!(det.silent_for(140), 15);
        // a late old beat never regresses the watermark
        det.record_heartbeat(60);
        assert_eq!(det.silent_for(140), 15);
    }

    #[test]
    fn heartbeat_jitter_is_deterministic_and_bounded() {
        let hb = HeartbeatConfig { every: 8, suspicion_after: 30, jitter: 4, seed: 0xE1 };
        let a: Vec<u64> = (0..32).map(|n| hb.delay(n)).collect();
        let b: Vec<u64> = (0..32).map(|n| hb.delay(n)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().all(|&d| (8..=12).contains(&d)));
        let other = HeartbeatConfig { seed: 0xE2, ..hb };
        assert_ne!(a, (0..32).map(|n| other.delay(n)).collect::<Vec<_>>());
    }

    #[test]
    fn from_env_defaults_without_vars() {
        let cfg = ReplicationConfig::from_env();
        assert!(cfg.replicas >= 1);
        assert!(cfg.suspicion_after > cfg.heartbeat_every);
    }

    proptest! {
        /// Satellite: promotion at an *arbitrary* applied-watermark prefix
        /// yields final tables byte-equal to the never-failed run — the
        /// lockstep invariant that makes failover free, for any kill
        /// point, group size, and log retention.
        #[test]
        fn promotion_at_any_watermark_is_byte_identical(
            kill_at in 0u64..20,
            replicas in 2u32..4,
            log_capacity in 1usize..16,
            model_seed in 0u64..1_000,
        ) {
            let total = 20u64;
            let mut plain = test_server(model_seed);
            let mut group =
                ReplicaGroup::new(test_server(model_seed), replicas, 0, 1, log_capacity);
            for seq in 0..total {
                plain.apply_checked(&push_for(seq)).unwrap();
                group.apply_checked(&push_for(seq)).unwrap();
                if seq + 1 == kill_at {
                    group.kill_primary().unwrap();
                }
            }
            if kill_at == 0 {
                group.kill_primary().unwrap();
            }
            prop_assert!(group.verify_consistent());
            prop_assert_eq!(digest(group.primary().unwrap()), digest(&plain));
        }
    }
}
