//! The corruption matrix (DESIGN.md §11).
//!
//! A valid training checkpoint truncated at *every* byte boundary and
//! bit-flipped at *every* byte position must surface as a typed
//! [`CkptError`] — never a panic, never a silently wrong model — and a
//! store holding an older valid checkpoint must fall back to it no
//! matter which corruption hit the newest file.

use el_dlrm::checkpoint::{CkptError, DlrmCheckpoint};
use el_dlrm::{DlrmConfig, DlrmModel, OptimizerKind};
use el_pipeline::ckpt::{verify_bytes, CkptStore, MemStorage, Storage, TrainingCheckpoint};
use rand::SeedableRng;
use std::sync::Arc;

/// A deliberately tiny model so the full byte-granular matrix stays fast.
fn tiny_ckpt(next_batch: u64) -> TrainingCheckpoint {
    let cfg = DlrmConfig {
        num_dense: 2,
        table_cardinalities: vec![12],
        dim: 2,
        bottom_hidden: vec![4],
        top_hidden: vec![4],
        tt_threshold: usize::MAX,
        tt_rank: 4,
        lr: 0.05,
        optimizer: OptimizerKind::Sgd,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let model = DlrmModel::new(&cfg, &mut rng);
    TrainingCheckpoint {
        model: DlrmCheckpoint::capture(&model),
        server: None,
        next_batch,
        workers: Vec::new(),
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = tiny_ckpt(3).to_framed_bytes();
    assert!(TrainingCheckpoint::from_framed_bytes(&bytes).is_ok(), "baseline must be valid");
    for len in 0..bytes.len() {
        match TrainingCheckpoint::from_framed_bytes(&bytes[..len]) {
            Err(CkptError::Corrupt(_)) => {}
            Err(e) => panic!("truncation to {len} bytes: wrong error kind: {e}"),
            Ok(_) => panic!("truncation to {len} bytes decoded successfully"),
        }
        assert!(verify_bytes(&bytes[..len]).is_err(), "verify accepted truncation to {len}");
    }
}

#[test]
fn every_single_byte_flip_is_a_typed_error() {
    let bytes = tiny_ckpt(3).to_framed_bytes();
    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0x40;
        match TrainingCheckpoint::from_framed_bytes(&mutated) {
            Err(CkptError::Corrupt(_)) => {}
            Err(e) => panic!("flip at byte {pos}: wrong error kind: {e}"),
            Ok(_) => panic!("flip at byte {pos} decoded successfully"),
        }
        assert!(verify_bytes(&mutated).is_err(), "verify accepted flip at byte {pos}");
    }
}

/// Saves an older and a newer checkpoint, returns the store handle, the
/// shared storage, and the newer file's name and bytes.
fn two_checkpoint_store() -> (CkptStore<Arc<MemStorage>>, Arc<MemStorage>, String, Vec<u8>) {
    let storage = Arc::new(MemStorage::new());
    let mut store = CkptStore::open(Arc::clone(&storage), 4).unwrap();
    store.save(&tiny_ckpt(3)).unwrap();
    let newest = store.save(&tiny_ckpt(7)).unwrap();
    let bytes = storage.read_file(&newest).unwrap();
    (store, storage, newest, bytes)
}

#[test]
fn store_falls_back_to_previous_valid_at_every_truncation() {
    let (store, storage, newest, bytes) = two_checkpoint_store();
    for len in 0..bytes.len() {
        storage.corrupt_file(&newest, bytes[..len].to_vec());
        let (name, ckpt) = store
            .latest_valid()
            .unwrap_or_else(|e| panic!("truncation to {len} bytes lost recovery: {e}"));
        assert_ne!(name, newest, "truncation to {len} bytes: corrupted file won");
        assert_eq!(ckpt.next_batch, 3, "truncation to {len} bytes recovered the wrong state");
    }
}

#[test]
fn store_falls_back_to_previous_valid_at_every_flip() {
    let (store, storage, newest, bytes) = two_checkpoint_store();
    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0x01;
        storage.corrupt_file(&newest, mutated);
        let (name, ckpt) = store
            .latest_valid()
            .unwrap_or_else(|e| panic!("flip at byte {pos} lost recovery: {e}"));
        assert_ne!(name, newest, "flip at byte {pos}: corrupted file won");
        assert_eq!(ckpt.next_batch, 3, "flip at byte {pos} recovered the wrong state");
    }
    // restoring the original bytes restores the newest checkpoint
    storage.corrupt_file(&newest, bytes);
    assert_eq!(store.latest_valid().unwrap().1.next_batch, 7);
}

#[test]
fn manifest_corruption_never_affects_recovery() {
    let (store, storage, _, _) = two_checkpoint_store();
    // The manifest is advisory: recovery scans actual files, so wrecking
    // it (or replacing it with hostile JSON) must change nothing.
    for garbage in [&b"\x00\xff\x00\xff"[..], b"{\"entries\": \"lies\"}", b""] {
        storage.corrupt_file("MANIFEST.json", garbage.to_vec());
        assert!(store.read_manifest().is_none(), "corrupt manifest must read as absent");
        assert_eq!(store.latest_valid().unwrap().1.next_batch, 7);
    }
}

#[test]
fn corruption_of_every_file_reports_no_valid_checkpoint() {
    let (store, storage, _, _) = two_checkpoint_store();
    for name in store.names_newest_first().unwrap() {
        let bytes = storage.read_file(&name).unwrap();
        storage.corrupt_file(&name, bytes[..bytes.len() / 2].to_vec());
    }
    match store.latest_valid() {
        Err(CkptError::NoValidCheckpoint) => {}
        Err(e) => panic!("wrong error kind: {e}"),
        Ok((name, _)) => panic!("recovered from fully corrupted store: {name}"),
    }
}
