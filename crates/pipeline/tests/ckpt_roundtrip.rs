//! Round-trip property (DESIGN.md §11): capture → save → load → capture
//! is byte-identical across optimizers (SGD / Adagrad with live
//! accumulators), table placements (dense / TT-factorized / hosted) and
//! training prefixes. What resumes after a crash is bit-for-bit the
//! state that was checkpointed — including TT cores, hosted-table server
//! state and optimizer accumulators.

use el_data::{DatasetSpec, SyntheticDataset};
use el_dlrm::checkpoint::DlrmCheckpoint;
use el_dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer, OptimizerKind};
use el_pipeline::ckpt::{CkptStore, MemStorage};
use el_pipeline::server::HostServer;
use el_pipeline::{PipelineConfig, PipelineTrainer};
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::Arc;

/// The trainer-test topology: table 0 large (dense or TT by threshold),
/// tables 1 and 2 hosted on the parameter server.
fn setup(
    seed: u64,
    optimizer: OptimizerKind,
    tt_threshold: usize,
) -> (DlrmModel, HostServer, SyntheticDataset) {
    let mut spec = DatasetSpec::toy(3, 200, 1_000_000);
    spec.num_dense = 4;
    spec.table_cardinalities = vec![400, 200, 200];
    let dataset = SyntheticDataset::new(spec, 11);

    let cfg = DlrmConfig {
        num_dense: 4,
        table_cardinalities: vec![400, 200, 200],
        dim: 8,
        bottom_hidden: vec![16],
        top_hidden: vec![16],
        tt_threshold,
        tt_rank: 8,
        lr: 0.05,
        optimizer,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut model = DlrmModel::new(&cfg, &mut rng);

    let mut host = Vec::new();
    for t in [1usize, 2] {
        let dense = match std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim: 8 })
        {
            EmbeddingLayer::Dense(bag) => bag,
            _ => unreachable!(),
        };
        host.push((t, dense));
    }
    (model, HostServer::new(host, 0.05), dataset)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn capture_save_load_capture_is_byte_identical(
        seed in 0u64..1_000,
        adagrad in bool::ANY,
        tt in bool::ANY,
        cut in 1u64..6,
    ) {
        let optimizer = if adagrad {
            OptimizerKind::Adagrad { eps: 1e-8 }
        } else {
            OptimizerKind::Sgd
        };
        // threshold 300 factorizes table 0 (cardinality 400) into TT cores
        let tt_threshold = if tt { 300 } else { usize::MAX };
        let (model, server, dataset) = setup(seed, optimizer, tt_threshold);
        let config = PipelineConfig {
            batch_size: 64,
            first_batch: 0,
            num_batches: cut,
            prefetch_depth: 4,
            pipelined: true,
            overlap_analysis: true,
        };
        let report = PipelineTrainer::train(model, server, &dataset, &config);
        prop_assert_eq!(report.completed_batches, cut);

        // capture → framed bytes
        let ckpt = PipelineTrainer::capture(&report.model, &report.host_tables, 0.05, cut);
        let framed = ckpt.to_framed_bytes();

        // save through the store, load back via the recovery scan
        let storage = Arc::new(MemStorage::new());
        let mut store = CkptStore::open(Arc::clone(&storage), 2).unwrap();
        store.save(&ckpt).unwrap();
        let (_, loaded) = store.latest_valid().unwrap();

        // the loaded checkpoint re-frames to the exact same bytes:
        // model (TT cores and accumulators included), server tables,
        // stamps and cursors all survived bit-for-bit
        prop_assert_eq!(
            loaded.to_framed_bytes(),
            framed,
            "save → load was not byte-identical"
        );

        // restore → capture closes the loop on the model payload
        prop_assert_eq!(loaded.next_batch, cut);
        let server = loaded.server.as_ref().expect("hosted tables were captured");
        prop_assert_eq!(server.tables.len(), 2);
        prop_assert_eq!(server.applied, cut);
        let model_bytes = loaded.model.to_bytes();
        let restored = loaded.model.restore().expect("captured state must restore");
        prop_assert_eq!(
            DlrmCheckpoint::capture(&restored).to_bytes(),
            model_bytes,
            "restore → capture was not byte-identical"
        );
    }

    #[test]
    fn framed_bytes_survive_a_durable_crash(
        seed in 0u64..1_000,
        cut in 1u64..4,
    ) {
        let (model, server, dataset) = setup(seed, OptimizerKind::Sgd, usize::MAX);
        let config = PipelineConfig {
            batch_size: 64,
            first_batch: 0,
            num_batches: cut,
            prefetch_depth: 4,
            pipelined: true,
            overlap_analysis: true,
        };
        let report = PipelineTrainer::train(model, server, &dataset, &config);
        let ckpt = PipelineTrainer::capture(&report.model, &report.host_tables, 0.05, cut);
        let framed = ckpt.to_framed_bytes();

        let storage = Arc::new(MemStorage::new());
        let mut store = CkptStore::open(Arc::clone(&storage), 2).unwrap();
        store.save(&ckpt).unwrap();
        // power loss: the atomic protocol already made the save durable
        storage.crash();
        let store = CkptStore::open(Arc::clone(&storage), 2).unwrap();
        let (_, recovered) = store.latest_valid().unwrap();
        prop_assert_eq!(
            recovered.to_framed_bytes(),
            framed,
            "post-crash recovery was not byte-identical"
        );
    }

    #[test]
    fn sim_checkpoints_round_trip_through_the_same_store(
        applied in 0u64..100,
        rows in 4usize..40,
        dim in 1usize..8,
    ) {
        // The simulator's payload flows through the identical framed
        // container and store; its round trip is part of the same
        // property (see el-sim's recovery tests for the full scenario).
        use el_pipeline::ckpt::{encode_frames, decode_frames, Section};
        let mut rng = rand::rngs::StdRng::seed_from_u64(applied ^ 0xD1D1);
        let bag = el_dlrm::embedding_bag::EmbeddingBag::new(rows, dim, 0.2, &mut rng);
        let sections = vec![Section {
            name: "tables".into(),
            payload: serde_json::to_vec(&el_pipeline::ckpt::HostedTableCheckpoint {
                id: 0,
                table: bag,
            }).unwrap(),
        }];
        let bytes = encode_frames(&sections);
        let back = decode_frames(&bytes).unwrap();
        prop_assert_eq!(back, sections);
    }
}
