//! Replicated-training determinism: trained bytes must be a pure
//! function of `(model seed, dataset, config)` — identical across rayon
//! pool sizes AND across replica counts, *including* a leg that kills
//! the shard-0 primary mid-run and promotes a backup. The thread-count
//! cases re-exec this test binary (following
//! `crates/pipeline/tests/shard_determinism.rs`) because a pool's size
//! is fixed at first use within a process; the replica counts ride
//! along in the same matrix, pinning the tentpole claim that
//! replication and failover, like sharding, never change the trained
//! bytes.

use el_data::{DatasetSpec, SyntheticDataset};
use el_dlrm::{DlrmConfig, DlrmModel, EmbeddingLayer, OptimizerKind};
use el_pipeline::server::HostServer;
use el_pipeline::{
    PipelineConfig, PipelineReport, PipelineTrainer, ReplicationConfig, ShardConfig,
};
use rand::SeedableRng;
use std::process::Command;

/// The shared training universe: three tables, two of them hosted.
fn setup(seed: u64) -> (DlrmModel, HostServer, SyntheticDataset) {
    let mut spec = DatasetSpec::toy(3, 200, 1_000_000);
    spec.num_dense = 4;
    spec.table_cardinalities = vec![400, 200, 200];
    let dataset = SyntheticDataset::new(spec, 11);

    let cfg = DlrmConfig {
        num_dense: 4,
        table_cardinalities: vec![400, 200, 200],
        dim: 8,
        bottom_hidden: vec![16],
        top_hidden: vec![16],
        tt_threshold: usize::MAX,
        tt_rank: 8,
        lr: 0.05,
        optimizer: OptimizerKind::Sgd,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut model = DlrmModel::new(&cfg, &mut rng);

    let mut host = Vec::new();
    for t in [1usize, 2] {
        let dense = match std::mem::replace(&mut model.tables[t], EmbeddingLayer::Hosted { dim: 8 })
        {
            EmbeddingLayer::Dense(bag) => bag,
            _ => unreachable!(),
        };
        host.push((t, dense));
    }
    (model, HostServer::new(host, 0.05), dataset)
}

/// Trains with `replicas` copies per shard. The replicated legs also run
/// a failover drill — the shard-0 primary dies at watermark 5 — so the
/// matrix pins that promotion itself leaves the bytes unchanged.
fn train(replicas: u32) -> PipelineReport {
    let (model, server, dataset) = setup(6);
    let config = PipelineConfig {
        batch_size: 64,
        first_batch: 0,
        num_batches: 12,
        prefetch_depth: 4,
        pipelined: true,
        overlap_analysis: false,
    };
    let shard_cfg = ShardConfig { num_shards: 3, rows_per_range: 16, placement_seed: 0xE1 };
    let kills = if replicas > 1 { vec![(0, 5)] } else { Vec::new() };
    let repl = ReplicationConfig {
        replicas,
        log_capacity: 4,
        kill_primary_at: kills,
        ..ReplicationConfig::default()
    };
    PipelineTrainer::try_train_replicated(model, server, &dataset, &config, &shard_cfg, &repl)
        .expect("unique-rows replicated training is servable")
}

/// FNV-1a over the loss trajectory and every trained host-table byte —
/// any schedule-, layout-, or failover-dependent update would perturb it.
fn train_hash(report: &PipelineReport) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for loss in &report.losses {
        eat(&loss.to_le_bytes());
    }
    for (id, bag) in &report.host_tables {
        eat(&(*id as u64).to_le_bytes());
        for v in bag.weight.as_slice() {
            eat(&v.to_le_bytes());
        }
    }
    h
}

/// Child body: trains with the replica count named in the environment
/// and prints the hash for the parent to compare. Runs only when
/// re-exec'd with `EL_REPLICA_CHILD` set.
#[test]
fn determinism_child() {
    let Ok(replicas) = std::env::var("EL_REPLICA_CHILD") else {
        return; // not a child: the matrix test below drives this
    };
    let report = train(replicas.parse().expect("EL_REPLICA_CHILD is a replica count"));
    assert_eq!(report.completed_batches, 12);
    println!("train-hash={:#018x}", train_hash(&report));
}

/// Re-execs this binary with `RAYON_NUM_THREADS` and the replica count
/// pinned, returning the hash the child printed.
fn child_hash(threads: &str, replicas: u32) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .args(["determinism_child", "--exact", "--nocapture"])
        .env("EL_REPLICA_CHILD", replicas.to_string())
        .env("RAYON_NUM_THREADS", threads)
        .output()
        .expect("spawning determinism child failed");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "child (RAYON_NUM_THREADS={threads}, replicas={replicas}) failed: {}\n{stdout}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr),
    );
    stdout
        .split("train-hash=")
        .nth(1)
        .expect("child must print its training hash")
        .split_whitespace()
        .next()
        .expect("hash value follows the marker")
        .to_string()
}

#[test]
fn replicated_training_is_thread_and_replica_count_invariant() {
    let mut hashes = Vec::new();
    for threads in ["1", "4"] {
        for replicas in [1u32, 2] {
            hashes.push((threads, replicas, child_hash(threads, replicas)));
        }
    }
    let (_, _, reference) = &hashes[0];
    for (threads, replicas, hash) in &hashes {
        assert_eq!(
            hash, reference,
            "trained bytes depend on the schedule: RAYON_NUM_THREADS={threads}, replicas={replicas}"
        );
    }
    // and the matrix matches this process's own run (drill included)
    assert_eq!(*reference, format!("{:#018x}", train_hash(&train(2))));
}
