//! Lookup plans — the CPU analogue of EL-Rec's *parallel pointer
//! preparation* (paper Algorithm 1).
//!
//! Before a batch touches the TT cores, EL-Rec scans its indices, decides
//! which intermediate products are *inevitable* (the `Buf_flag` dedup of
//! Algorithm 1) and emits pointer lists for one batched-GEMM launch per
//! chain level. [`LookupPlan::build`] performs the same analysis:
//!
//! * every lookup index is decomposed into TT digits (paper Eq. 3);
//! * for each chain depth `t` the set of *prefixes* `index / prod_{l>t} m_l`
//!   is collected — when `dedup` is on, duplicates collapse to a single
//!   slot, which is exactly the intermediate-result reuse of §III-A (and,
//!   on the last level, the unique-index set that in-advance gradient
//!   aggregation of §III-B operates on);
//! * with `dedup` off the plan keeps one slot per lookup, reproducing the
//!   TT-Rec baseline the paper compares against.
//!
//! The plan also precomputes the two groupings the backward pass needs for
//! conflict-free parallelism: items grouped by their **parent** slot
//! (children are contiguous because slots are sorted) and items grouped by
//! their **digit** (each digit owns one core slice).

use el_tensor::shard::{self, AtomicWriter};
use rayon::prelude::*;

/// Lookup count (nnz) below which [`LookupPlan::par_build_into`] delegates
/// to the sequential builder — fork/join overhead beats the parallel win on
/// small batches.
pub const PAR_BUILD_CUTOFF: usize = 4096;

/// Compressed sparse row structure: `items[offsets[g]..offsets[g+1]]` are
/// the members of group `g`.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    /// Group boundaries, `groups + 1` entries.
    pub offsets: Vec<u32>,
    /// Group members.
    pub items: Vec<u32>,
}

/// Grow-only length adjustment that never reallocates in steady state and
/// never zero-fills elements the caller is about to overwrite.
#[inline]
fn ensure_len_u32(v: &mut Vec<u32>, len: usize) {
    if v.len() < len {
        v.resize(len, 0);
    } else {
        v.truncate(len);
    }
}

/// `u64` twin of [`ensure_len_u32`].
#[inline]
fn ensure_len_u64(v: &mut Vec<u64>, len: usize) {
    if v.len() < len {
        v.resize(len, 0);
    } else {
        v.truncate(len);
    }
}

impl Csr {
    /// Members of group `g`.
    #[inline]
    pub fn group(&self, g: usize) -> &[u32] {
        &self.items[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Builds a CSR from `(group, item)` assignments given the group count.
    pub fn from_assignments(groups: usize, assignments: &[u32]) -> Csr {
        let mut csr = Csr::default();
        csr.rebuild(groups, assignments, &mut Vec::new());
        csr
    }

    /// Rebuilds in place from `(group, item)` assignments, reusing the
    /// offset/item allocations; `cursor` is caller-provided scratch so the
    /// counting sort needs no allocation either.
    pub fn rebuild(&mut self, groups: usize, assignments: &[u32], cursor: &mut Vec<u32>) {
        self.offsets.clear();
        self.offsets.resize(groups + 1, 0);
        for &g in assignments {
            self.offsets[g as usize + 1] += 1;
        }
        for i in 1..self.offsets.len() {
            self.offsets[i] += self.offsets[i - 1];
        }
        cursor.clear();
        cursor.extend_from_slice(&self.offsets[..groups]);
        ensure_len_u32(&mut self.items, assignments.len());
        for (item, &g) in assignments.iter().enumerate() {
            let slot = &mut cursor[g as usize];
            self.items[*slot as usize] = item as u32;
            *slot += 1;
        }
    }
}

/// One level of the TT multiplication chain.
///
/// Level `t` (0-based) holds the distinct index prefixes of depth `t + 1`;
/// its slot `s` corresponds to the partial product
/// `P_{t+1} = G_1[i_1] x ... x G_{t+1}[i_{t+1}]` for that prefix.
#[derive(Clone, Debug, Default)]
pub struct Level {
    /// Prefix value of each slot (sorted; unique iff the plan deduplicates).
    pub values: Vec<u64>,
    /// Slot of the parent prefix in the previous level (empty at level 0).
    pub parent: Vec<u32>,
    /// TT digit `i_{t+1}` of each slot.
    pub digit: Vec<u32>,
    /// Children of each previous-level slot, as a contiguous range
    /// `child_offsets[p]..child_offsets[p+1]` (empty at level 0).
    pub child_offsets: Vec<u32>,
    /// Slots grouped by digit — one group per core slice, so parallel
    /// core-gradient accumulation is write-disjoint.
    pub digit_groups: Csr,
}

impl Level {
    /// Number of slots at this level.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the level has no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Reusable scratch for [`LookupPlan::build_into`], so steady-state plan
/// analysis allocates nothing once its buffers have grown to the working
/// batch size.
#[derive(Clone, Debug, Default)]
pub struct PlanScratch {
    /// Lookup positions in index-sorted order.
    order: Vec<u32>,
    /// Parent prefix value per slot of the level being processed.
    parent_values: Vec<u64>,
    /// Counting-sort cursor for [`Csr::rebuild`].
    cursor: Vec<u32>,
    /// Per-shard histograms for the parallel counting sorts.
    part_hist: Vec<u32>,
    /// Per-part new-slot counts (then exclusive prefixes) for the parallel
    /// dedup scans.
    chunk_base: Vec<u32>,
    /// Bucket boundaries of the radix-partitioned parallel sort.
    bucket_offsets: Vec<u32>,
}

impl PlanScratch {
    /// Bytes currently held by the scratch buffers.
    pub fn scratch_bytes(&self) -> usize {
        let u = std::mem::size_of::<u32>();
        (self.order.capacity()
            + self.cursor.capacity()
            + self.part_hist.capacity()
            + self.chunk_base.capacity()
            + self.bucket_offsets.capacity())
            * u
            + self.parent_values.capacity() * std::mem::size_of::<u64>()
    }
}

/// A fully-analyzed batch of embedding lookups.
#[derive(Clone, Debug, Default)]
pub struct LookupPlan {
    /// Row-dimension factors `m_k` the indices were decomposed against.
    pub dims: Vec<usize>,
    /// Number of samples in the batch.
    pub batch_size: usize,
    /// Total number of lookups (nnz).
    pub nnz: usize,
    /// Whether identical prefixes share a slot (Eff-TT) or not (TT-Rec).
    pub dedup: bool,
    /// Per lookup position: slot in the last level holding its row.
    pub lookup_slot: Vec<u32>,
    /// Per lookup position: owning sample.
    pub sample_of_lookup: Vec<u32>,
    /// Per-sample lookup ranges (copy of the CSR offsets of the field).
    pub sample_offsets: Vec<u32>,
    /// Last-level slot -> lookup positions; drives in-advance gradient
    /// aggregation.
    pub slot_lookups: Csr,
    /// Chain levels, `levels[t]` at depth `t + 1`; `levels[d-1]` slots are
    /// the (unique) rows of the batch.
    pub levels: Vec<Level>,
}

impl LookupPlan {
    /// Analyzes a batch given as CSR `(indices, offsets)` against row
    /// factors `dims`.
    ///
    /// # Panics
    /// Panics if an index is out of the factorized capacity, or the CSR
    /// structure is malformed.
    pub fn build(indices: &[u32], offsets: &[u32], dims: &[usize], dedup: bool) -> LookupPlan {
        let mut plan = LookupPlan::default();
        plan.build_into(indices, offsets, dims, dedup, &mut PlanScratch::default());
        plan
    }

    /// In-place variant of [`LookupPlan::build`]: re-analyzes a batch into
    /// `self`, reusing every buffer the previous analysis left behind.
    ///
    /// Together with a caller-held [`PlanScratch`] this makes steady-state
    /// pointer preparation allocation-free — the training hot loop builds
    /// one plan per batch, so the plan object cycles through the workspace
    /// instead of being reallocated.
    ///
    /// # Panics
    /// Same contract as [`LookupPlan::build`].
    // CONTRACT: zero-alloc
    pub fn build_into(
        &mut self,
        indices: &[u32],
        offsets: &[u32],
        dims: &[usize],
        dedup: bool,
        scratch: &mut PlanScratch,
    ) {
        let d = dims.len();
        assert!(d >= 2, "TT tables need at least two cores");
        assert!(!offsets.is_empty() && offsets[0] == 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap() as usize, // PANIC-OK: non-empty asserted above
            indices.len(),
            "offsets must cover all indices"
        );
        let capacity: u64 = dims.iter().map(|&m| m as u64).product();
        let nnz = indices.len();
        let batch_size = offsets.len() - 1;

        self.dims.clear();
        self.dims.extend_from_slice(dims);
        self.batch_size = batch_size;
        self.nnz = nnz;
        self.dedup = dedup;
        self.sample_offsets.clear();
        self.sample_offsets.extend_from_slice(offsets);

        ensure_len_u32(&mut self.sample_of_lookup, nnz);
        for s in 0..batch_size {
            for j in offsets[s]..offsets[s + 1] {
                self.sample_of_lookup[j as usize] = s as u32;
            }
        }

        // Sort lookups by (index value, position) so duplicates (and shared
        // prefixes) are adjacent. The composite key is a *total* order, so
        // every correct sort — including the bucketed parallel one in
        // [`LookupPlan::par_build_into`] — produces this exact permutation.
        // `order[r]` is the lookup position at sorted rank r.
        let order = &mut scratch.order;
        order.clear();
        order.extend(0..nnz as u32);
        order.sort_unstable_by_key(|&j| (indices[j as usize], j));

        if self.levels.len() != d {
            self.levels.clear();
            self.levels.resize_with(d, Level::default);
        }

        // Last level first: one slot per distinct index (dedup) or per
        // lookup (no dedup); record each lookup's slot.
        ensure_len_u32(&mut self.lookup_slot, nnz);
        {
            let last = &mut self.levels[d - 1];
            last.values.clear();
            for &j in order.iter() {
                let v = indices[j as usize] as u64;
                assert!(v < capacity, "index {v} exceeds factorized capacity {capacity}");
                let is_new = !dedup || last.values.last() != Some(&v);
                if is_new {
                    last.values.push(v);
                }
                self.lookup_slot[j as usize] = (last.values.len() - 1) as u32;
            }
        }

        let num_slots = self.levels[d - 1].values.len();
        self.slot_lookups.rebuild(num_slots, &self.lookup_slot, &mut scratch.cursor);

        // Build levels top-down from the sorted distinct values. At depth t
        // the prefix list of the (t+1)-deep level divided by m_{t+1} gives
        // the parent prefixes; equal prefixes collapse when deduplicating.
        for t in (0..d).rev() {
            let m_t = dims[t] as u64;
            let (head, tail) = self.levels.split_at_mut(t);
            let cur = &mut tail[0];

            cur.digit.clear();
            cur.digit.extend(cur.values.iter().map(|&v| (v % m_t) as u32));

            let parent_values = &mut scratch.parent_values;
            parent_values.clear();
            parent_values.extend(cur.values.iter().map(|&v| v / m_t));

            if t == 0 {
                cur.parent.clear();
                cur.child_offsets.clear();
            } else {
                // Parent slots: parents are sorted because children are.
                cur.parent.clear();
                let mut distinct = 0usize;
                let mut prev: Option<u64> = None;
                for &pv in parent_values.iter() {
                    let is_new = !dedup || prev != Some(pv);
                    if is_new {
                        distinct += 1;
                        prev = Some(pv);
                    }
                    cur.parent.push((distinct - 1) as u32);
                }
                cur.child_offsets.clear();
                cur.child_offsets.resize(distinct + 1, 0);
                for &p in &cur.parent {
                    cur.child_offsets[p as usize + 1] += 1;
                }
                for i in 1..cur.child_offsets.len() {
                    cur.child_offsets[i] += cur.child_offsets[i - 1];
                }
                // The shallower level's value list: deduped parent prefixes.
                let prev_level = &mut head[t - 1];
                prev_level.values.clear();
                if dedup {
                    let mut last: Option<u64> = None;
                    for &pv in parent_values.iter() {
                        if last != Some(pv) {
                            prev_level.values.push(pv);
                            last = Some(pv);
                        }
                    }
                } else {
                    prev_level.values.extend_from_slice(parent_values);
                }
            }
            cur.digit_groups.rebuild(dims[t], &cur.digit, &mut scratch.cursor);
        }
    }

    /// Rayon-parallel variant of [`LookupPlan::build_into`] — the paper's
    /// Algorithm 1 run as a *parallel* pointer-preparation kernel.
    ///
    /// Produces a plan **bit-identical** to the sequential builder for any
    /// input: the sequential sort key `(value, position)` is a total order,
    /// so the bucketed parallel sort necessarily lands on the same
    /// permutation, and every other plan field is a deterministic function
    /// of that permutation (dedup boundaries, prefix sums and stable
    /// counting sorts do not depend on how work was sharded).
    ///
    /// Below [`PAR_BUILD_CUTOFF`] lookups — or on a single-thread pool, or
    /// for non-monotone offsets — the sequential path is used directly, so
    /// this is never slower where parallelism cannot pay.
    ///
    /// # Panics
    /// Same contract as [`LookupPlan::build`].
    // CONTRACT: zero-alloc
    pub fn par_build_into(
        &mut self,
        indices: &[u32],
        offsets: &[u32],
        dims: &[usize],
        dedup: bool,
        scratch: &mut PlanScratch,
    ) {
        let monotone = offsets.windows(2).all(|w| w[0] <= w[1]);
        if indices.len() < PAR_BUILD_CUTOFF || rayon::current_num_threads() <= 1 || !monotone {
            self.build_into(indices, offsets, dims, dedup, scratch);
        } else {
            self.par_build_impl(indices, offsets, dims, dedup, scratch);
        }
    }

    /// The parallel build without the size cutoff (exercised directly by the
    /// equivalence proptests; requires monotone offsets).
    pub(crate) fn par_build_impl(
        &mut self,
        indices: &[u32],
        offsets: &[u32],
        dims: &[usize],
        dedup: bool,
        scratch: &mut PlanScratch,
    ) {
        let d = dims.len();
        assert!(d >= 2, "TT tables need at least two cores");
        assert!(!offsets.is_empty() && offsets[0] == 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap() as usize, // PANIC-OK: non-empty asserted above
            indices.len(),
            "offsets must cover all indices"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let capacity: u64 = dims.iter().map(|&m| m as u64).product();
        let nnz = indices.len();
        let batch_size = offsets.len() - 1;

        self.dims.clear();
        self.dims.extend_from_slice(dims);
        self.batch_size = batch_size;
        self.nnz = nnz;
        self.dedup = dedup;
        self.sample_offsets.clear();
        self.sample_offsets.extend_from_slice(offsets);

        // Parallel CSR expansion: each sample's (disjoint) lookup range gets
        // its sample id.
        ensure_len_u32(&mut self.sample_of_lookup, nnz);
        {
            let w = AtomicWriter::new(&mut self.sample_of_lookup[..]);
            let parts = shard::num_parts(batch_size, 64);
            (0..parts).into_par_iter().for_each(|p| {
                for s in shard::part_range(batch_size, parts, p) {
                    for j in offsets[s] as usize..offsets[s + 1] as usize {
                        w.set(j, s as u32);
                    }
                }
            });
        }

        // Radix-partitioned sort: stable-partition positions into buckets
        // monotone in the index value, then sort each bucket by the total
        // key (value, position) — together equal to one global sort.
        const BUCKETS: usize = 256;
        let bucket_of = |j: usize| -> u32 {
            let v = indices[j] as u128;
            (((v * BUCKETS as u128) / capacity.max(1) as u128) as u32).min(BUCKETS as u32 - 1)
        };
        shard::sharded_counting_sort(
            nnz,
            BUCKETS,
            bucket_of,
            &mut scratch.bucket_offsets,
            &mut scratch.order,
            &mut scratch.part_hist,
        );
        shard::for_each_segment_mut(&mut scratch.order, &scratch.bucket_offsets, &|_, seg| {
            seg.sort_unstable_by_key(|&j| (indices[j as usize], j));
        });

        // Out-of-capacity indices sort to a suffix; report the first
        // violating rank exactly like the sequential scan would.
        let viol = scratch.order.partition_point(|&j| (indices[j as usize] as u64) < capacity);
        if viol < nnz {
            let v = indices[scratch.order[viol] as usize] as u64;
            // PANIC-OK: documented contract panic — mirrors the sequential builder.
            panic!("index {v} exceeds factorized capacity {capacity}");
        }

        if self.levels.len() != d {
            self.levels.clear();
            self.levels.resize_with(d, Level::default);
        }

        // Last level, lookup_slot and the slot_lookups boundaries in one
        // parallel dedup scan over the sorted ranks.
        ensure_len_u32(&mut self.lookup_slot, nnz);
        let num_slots = {
            let order = &scratch.order[..nnz];
            let last = &mut self.levels[d - 1];
            ensure_len_u64(&mut last.values, nnz);
            ensure_len_u32(&mut self.slot_lookups.offsets, nnz + 1);
            let vw = AtomicWriter::new(&mut last.values[..]);
            let lw = AtomicWriter::new(&mut self.lookup_slot[..]);
            let ow = AtomicWriter::new(&mut self.slot_lookups.offsets[..]);
            par_scan_emit(
                nnz,
                &mut scratch.chunk_base,
                |r| !dedup || indices[order[r] as usize] != indices[order[r - 1] as usize],
                |r, slot, new| {
                    let j = order[r] as usize;
                    lw.set(j, slot);
                    if new {
                        vw.set(slot as usize, indices[j] as u64);
                        ow.set(slot as usize, r as u32);
                    }
                },
            )
        };
        self.levels[d - 1].values.truncate(num_slots);
        self.slot_lookups.offsets.truncate(num_slots + 1);
        self.slot_lookups.offsets[num_slots] = nnz as u32;
        // Within an equal-value run, ranks ascend by position — exactly the
        // visit order of the sequential cursor scatter, so the sorted order
        // *is* the slot_lookups item list.
        ensure_len_u32(&mut self.slot_lookups.items, nnz);
        self.slot_lookups.items.copy_from_slice(&scratch.order[..nnz]);

        for t in (0..d).rev() {
            let m_t = dims[t] as u64;
            let (head, tail) = self.levels.split_at_mut(t);
            let cur = &mut tail[0];
            let len = cur.values.len();

            // Elementwise digit / parent-prefix maps.
            ensure_len_u32(&mut cur.digit, len);
            ensure_len_u64(&mut scratch.parent_values, len);
            {
                let dw = AtomicWriter::new(&mut cur.digit[..]);
                let pw = AtomicWriter::new(&mut scratch.parent_values[..]);
                let values = &cur.values;
                let parts = shard::num_parts(len, 1024);
                (0..parts).into_par_iter().for_each(|p| {
                    for i in shard::part_range(len, parts, p) {
                        let v = values[i];
                        dw.set(i, (v % m_t) as u32);
                        pw.set(i, v / m_t);
                    }
                });
            }

            if t == 0 {
                cur.parent.clear();
                cur.child_offsets.clear();
            } else {
                // Parent slots, child ranges and the shallower level's
                // values fall out of one dedup scan over the parent
                // prefixes (sorted because the children are).
                let parent_values = &scratch.parent_values[..len];
                ensure_len_u32(&mut cur.parent, len);
                ensure_len_u32(&mut cur.child_offsets, len + 1);
                let prev = &mut head[t - 1];
                ensure_len_u64(&mut prev.values, len);
                let distinct = {
                    let rw = AtomicWriter::new(&mut cur.parent[..]);
                    let cw = AtomicWriter::new(&mut cur.child_offsets[..]);
                    let pv = AtomicWriter::new(&mut prev.values[..]);
                    par_scan_emit(
                        len,
                        &mut scratch.chunk_base,
                        |r| !dedup || parent_values[r] != parent_values[r - 1],
                        |r, slot, new| {
                            rw.set(r, slot);
                            if new {
                                cw.set(slot as usize, r as u32);
                                pv.set(slot as usize, parent_values[r]);
                            }
                        },
                    )
                };
                cur.child_offsets.truncate(distinct + 1);
                cur.child_offsets[distinct] = len as u32;
                prev.values.truncate(distinct);
            }

            // Sharded Csr::rebuild: stable counting sort by digit.
            let digit = &cur.digit;
            shard::sharded_counting_sort(
                len,
                dims[t],
                |i| digit[i],
                &mut cur.digit_groups.offsets,
                &mut cur.digit_groups.items,
                &mut scratch.part_hist,
            );
        }
    }

    /// Number of row slots (unique rows when deduplicating).
    pub fn num_rows(&self) -> usize {
        self.levels.last().map_or(0, Level::len)
    }

    /// Total GEMM tasks the forward chain will execute — the work metric the
    /// reuse optimization reduces (levels beyond the first each cost one
    /// task per slot).
    pub fn forward_tasks(&self) -> usize {
        self.levels.iter().skip(1).map(Level::len).sum()
    }
}

/// Parallel run-length scan. Position `0` is always *new*; position `r > 0`
/// is new iff `is_new(r)`. Every position's slot is `(#new <= r) - 1`, and
/// `emit(r, slot, new)` is called exactly once per position (in parallel,
/// sharded over deterministic part ranges whose choice cannot affect the
/// emitted values). Returns the slot count.
///
/// `chunk_base` is grow-only scratch for the per-part prefix.
fn par_scan_emit<N, E>(len: usize, chunk_base: &mut Vec<u32>, is_new: N, emit: E) -> usize
where
    N: Fn(usize) -> bool + Sync,
    E: Fn(usize, u32, bool) + Sync,
{
    if len == 0 {
        return 0;
    }
    let parts = shard::num_parts(len, 1024);
    ensure_len_u32(chunk_base, parts);
    chunk_base.par_chunks_mut(1).enumerate().for_each(|(p, c)| {
        let mut cnt = 0u32;
        for r in shard::part_range(len, parts, p) {
            if r == 0 || is_new(r) {
                cnt += 1;
            }
        }
        c[0] = cnt;
    });
    let mut total = 0u32;
    for slot in chunk_base.iter_mut().take(parts) {
        let c = *slot;
        *slot = total;
        total += c;
    }
    let base = &chunk_base[..parts];
    (0..parts).into_par_iter().for_each(|p| {
        // Number of slots opened before this part; rank 0 is always new, so
        // `count` is at least 1 before the first emit of any part.
        let mut count = base[p];
        for r in shard::part_range(len, parts, p) {
            let new = r == 0 || is_new(r);
            if new {
                count += 1;
            }
            emit(r, count - 1, new);
        }
    });
    total as usize
}

/// Asserts every field of two plans is identical (the bit-for-bit
/// equivalence contract between the sequential and parallel builders).
#[cfg(test)]
pub(crate) fn assert_plans_identical(a: &LookupPlan, b: &LookupPlan) {
    assert_eq!(a.dims, b.dims);
    assert_eq!(a.batch_size, b.batch_size);
    assert_eq!(a.nnz, b.nnz);
    assert_eq!(a.dedup, b.dedup);
    assert_eq!(a.lookup_slot, b.lookup_slot, "lookup_slot");
    assert_eq!(a.sample_of_lookup, b.sample_of_lookup, "sample_of_lookup");
    assert_eq!(a.sample_offsets, b.sample_offsets, "sample_offsets");
    assert_eq!(a.slot_lookups.offsets, b.slot_lookups.offsets, "slot_lookups offsets");
    assert_eq!(a.slot_lookups.items, b.slot_lookups.items, "slot_lookups items");
    assert_eq!(a.levels.len(), b.levels.len());
    for (t, (x, y)) in a.levels.iter().zip(&b.levels).enumerate() {
        assert_eq!(x.values, y.values, "level {t} values");
        assert_eq!(x.parent, y.parent, "level {t} parent");
        assert_eq!(x.digit, y.digit, "level {t} digit");
        assert_eq!(x.child_offsets, y.child_offsets, "level {t} child_offsets");
        assert_eq!(x.digit_groups.offsets, y.digit_groups.offsets, "level {t} digit offsets");
        assert_eq!(x.digit_groups.items, y.digit_groups.items, "level {t} digit items");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_plan(dedup: bool) -> LookupPlan {
        // dims 2x2x2, indices span two samples
        LookupPlan::build(&[5, 4, 5, 0], &[0, 2, 4], &[2, 2, 2], dedup)
    }

    #[test]
    fn dedup_collapses_duplicates() {
        let p = simple_plan(true);
        assert_eq!(p.num_rows(), 3); // {0, 4, 5}
        assert_eq!(p.levels[2].values, vec![0, 4, 5]);
        // lookup 0 and 2 share the slot of value 5
        assert_eq!(p.lookup_slot[0], p.lookup_slot[2]);
    }

    #[test]
    fn no_dedup_keeps_every_lookup() {
        let p = simple_plan(false);
        assert_eq!(p.num_rows(), 4);
        assert_ne!(p.lookup_slot[0], p.lookup_slot[2]);
    }

    #[test]
    fn prefix_levels_share_slots() {
        let p = simple_plan(true);
        // values {0,4,5}: depth-2 prefixes {0,2,2} -> dedup {0,2}
        assert_eq!(p.levels[1].values, vec![0, 2]);
        // depth-1 prefixes {0,1}
        assert_eq!(p.levels[0].values, vec![0, 1]);
        // 4 = (1,0,0), 5 = (1,0,1): same depth-2 parent
        assert_eq!(p.levels[2].parent, vec![0, 1, 1]);
    }

    #[test]
    fn digits_match_mixed_radix_decomposition() {
        let p = simple_plan(true);
        // last level digits: value % 2 for {0,4,5}
        assert_eq!(p.levels[2].digit, vec![0, 0, 1]);
        // level 1 digits for {0, 2}: (0/1)%2... depth-2 prefix of 2 has digit 0
        assert_eq!(p.levels[1].digit, vec![0, 0]);
        assert_eq!(p.levels[0].digit, vec![0, 1]);
    }

    #[test]
    fn child_ranges_are_contiguous_and_complete() {
        let p = simple_plan(true);
        let lvl = &p.levels[2];
        assert_eq!(lvl.child_offsets, vec![0, 1, 3]);
        for (slot, &parent) in lvl.parent.iter().enumerate() {
            let range = lvl.child_offsets[parent as usize]..lvl.child_offsets[parent as usize + 1];
            assert!(range.contains(&(slot as u32)));
        }
    }

    #[test]
    fn digit_groups_partition_slots() {
        let p = simple_plan(true);
        for lvl in &p.levels {
            let mut seen = vec![false; lvl.len()];
            for g in 0..lvl.digit_groups.num_groups() {
                for &item in lvl.digit_groups.group(g) {
                    assert_eq!(lvl.digit[item as usize] as usize, g);
                    assert!(!seen[item as usize]);
                    seen[item as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn slot_lookups_inverts_lookup_slot() {
        for dedup in [true, false] {
            let p = simple_plan(dedup);
            for slot in 0..p.num_rows() {
                for &j in p.slot_lookups.group(slot) {
                    assert_eq!(p.lookup_slot[j as usize] as usize, slot);
                }
            }
            let total: usize = (0..p.num_rows()).map(|s| p.slot_lookups.group(s).len()).sum();
            assert_eq!(total, p.nnz);
        }
    }

    #[test]
    fn sample_of_lookup_matches_offsets() {
        let p = simple_plan(true);
        assert_eq!(p.sample_of_lookup, vec![0, 0, 1, 1]);
    }

    #[test]
    fn reuse_reduces_forward_tasks() {
        let dense = LookupPlan::build(&[1, 1, 1, 1, 2, 3], &[0, 6], &[2, 2, 2], false);
        let dedup = LookupPlan::build(&[1, 1, 1, 1, 2, 3], &[0, 6], &[2, 2, 2], true);
        assert!(dedup.forward_tasks() < dense.forward_tasks());
    }

    #[test]
    #[should_panic(expected = "exceeds factorized capacity")]
    fn out_of_range_index_panics() {
        let _ = LookupPlan::build(&[8], &[0, 1], &[2, 2, 2], true);
    }

    #[test]
    fn empty_batch_is_fine() {
        let p = LookupPlan::build(&[], &[0], &[2, 2, 2], true);
        assert_eq!(p.batch_size, 0);
        assert_eq!(p.num_rows(), 0);
        assert_eq!(p.forward_tasks(), 0);
    }

    /// A skewed synthetic batch: hot head plus a pseudo-random tail.
    fn skewed_batch(nnz: usize, rows: u32, samples: usize) -> (Vec<u32>, Vec<u32>) {
        let indices: Vec<u32> = (0..nnz)
            .map(|i| {
                if i % 3 == 0 {
                    (i % 7) as u32
                } else {
                    ((i as u64 * 48271) % rows as u64) as u32
                }
            })
            .collect();
        let per = nnz / samples;
        let mut offsets: Vec<u32> = (0..samples as u32).map(|s| s * per as u32).collect();
        offsets.push(nnz as u32);
        (indices, offsets)
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let (indices, offsets) = skewed_batch(9000, 500, 64);
        let dims = vec![8usize, 8, 8];
        for dedup in [true, false] {
            let seq = LookupPlan::build(&indices, &offsets, &dims, dedup);
            let mut par = LookupPlan::default();
            par.par_build_impl(&indices, &offsets, &dims, dedup, &mut PlanScratch::default());
            assert_plans_identical(&seq, &par);
        }
    }

    #[test]
    fn parallel_build_recycles_into_dirty_plan() {
        // A parallel rebuild into a plan that previously analyzed a larger,
        // differently-shaped batch must fully overwrite the stale state.
        let dims = vec![8usize, 8, 8];
        let (big_i, big_o) = skewed_batch(12_000, 400, 32);
        let (small_i, small_o) = skewed_batch(5000, 90, 16);
        let mut scratch = PlanScratch::default();
        let mut par = LookupPlan::default();
        par.par_build_impl(&big_i, &big_o, &dims, false, &mut scratch);
        par.par_build_impl(&small_i, &small_o, &[4, 8, 16], true, &mut scratch);
        let seq = LookupPlan::build(&small_i, &small_o, &[4, 8, 16], true);
        assert_plans_identical(&seq, &par);
    }

    #[test]
    #[should_panic(expected = "exceeds factorized capacity")]
    fn parallel_build_rejects_out_of_capacity() {
        let mut indices = vec![3u32; 5000];
        indices[4321] = 512; // capacity of 8x8x8
        let offsets = vec![0u32, 5000];
        let mut par = LookupPlan::default();
        par.par_build_impl(&indices, &offsets, &[8, 8, 8], true, &mut PlanScratch::default());
    }

    #[test]
    fn par_build_into_small_batches_take_sequential_path() {
        // Below the cutoff the wrapper must still produce the right plan.
        let p = {
            let mut plan = LookupPlan::default();
            plan.par_build_into(
                &[5, 4, 5, 0],
                &[0, 2, 4],
                &[2, 2, 2],
                true,
                &mut PlanScratch::default(),
            );
            plan
        };
        assert_plans_identical(&p, &simple_plan(true));
    }

    #[test]
    fn four_core_plans_work() {
        let p = LookupPlan::build(&[10, 11, 26, 10], &[0, 4], &[3, 3, 3, 3], true);
        assert_eq!(p.levels.len(), 4);
        assert_eq!(p.num_rows(), 3);
        // 10 = (0,1,0,1), 11 = (0,1,0,2), 26 = (0,2,2,2)
        assert_eq!(p.levels[3].values, vec![10, 11, 26]);
        assert_eq!(p.levels[2].values, vec![3, 8]);
        assert_eq!(p.levels[1].values, vec![1, 2]);
        assert_eq!(p.levels[0].values, vec![0]);
    }
}
