//! Consolidated stage timing for the training hot path.
//!
//! EL-Rec's §V argument is about *where* a train step spends its time —
//! batch analysis (pointer preparation) versus the forward GEMM chain
//! versus backward — so [`TtWorkspace`](crate::TtWorkspace) carries a
//! [`StageTimers`] record updated by the kernels through this module.
//!
//! All `Instant::now()` calls of the library hot loops live here (enforced
//! by `cargo xtask lint`'s `instant-now` rule), behind one runtime switch:
//! [`set_timing_enabled`]`(false)` turns every probe into a no-op, so the
//! counters cost nothing when nobody is reading them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static TIMING_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables stage timing (cheap relaxed flag).
pub fn set_timing_enabled(on: bool) {
    TIMING_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether stage timing is currently enabled.
pub fn timing_enabled() -> bool {
    TIMING_ENABLED.load(Ordering::Relaxed)
}

/// An in-flight stage measurement; resolves into a counter on
/// [`StageProbe::accumulate`].
#[must_use]
pub struct StageProbe(Option<Instant>);

/// Starts a stage probe (no-op while timing is disabled).
pub fn probe() -> StageProbe {
    StageProbe(timing_enabled().then(Instant::now))
}

impl StageProbe {
    /// Adds the elapsed nanoseconds since the probe started to `counter`.
    pub fn accumulate(self, counter: &mut u64) {
        if let Some(t0) = self.0 {
            *counter += t0.elapsed().as_nanos() as u64;
        }
    }
}

/// Cumulative per-stage wall time of one workspace, in nanoseconds.
///
/// `analysis_ns` counts pointer preparation — including any time spent
/// waiting on a plan prefetcher, so overlap shows up as analysis time
/// *shrinking* relative to the inline build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimers {
    /// Batch analysis: plan build or prefetcher hand-off wait.
    pub analysis_ns: u64,
    /// Forward chain GEMMs + pooling.
    pub forward_ns: u64,
    /// Backward aggregation, chain and core-gradient passes.
    pub backward_ns: u64,
    /// Forward passes measured.
    pub batches: u64,
}

impl StageTimers {
    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = StageTimers::default();
    }

    /// Sum of all stage counters.
    pub fn total_ns(&self) -> u64 {
        self.analysis_ns + self.forward_ns + self.backward_ns
    }

    /// Accumulates another record into this one.
    pub fn merge(&mut self, other: &StageTimers) {
        self.analysis_ns += other.analysis_ns;
        self.forward_ns += other.forward_ns;
        self.backward_ns += other.backward_ns;
        self.batches += other.batches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers both switch states: tests run concurrently and the
    // flag is global, so splitting would race.
    #[test]
    fn probes_follow_the_global_switch() {
        set_timing_enabled(true);
        let mut ns = 0u64;
        let p = probe();
        std::hint::black_box((0..10_000u64).sum::<u64>());
        p.accumulate(&mut ns);
        assert!(ns > 0);

        set_timing_enabled(false);
        assert!(!timing_enabled());
        let mut off = 0u64;
        probe().accumulate(&mut off);
        assert_eq!(off, 0);
        set_timing_enabled(true);
    }

    #[test]
    fn timers_merge_and_reset() {
        let mut a = StageTimers { analysis_ns: 1, forward_ns: 2, backward_ns: 3, batches: 1 };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_ns(), 12);
        assert_eq!(a.batches, 2);
        a.reset();
        assert_eq!(a, StageTimers::default());
    }
}
