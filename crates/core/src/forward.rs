//! Eff-TT forward pass (paper §III-A).
//!
//! The lookup of a whole batch proceeds in three stages:
//!
//! 1. **Pointer preparation** — [`LookupPlan::build`] decides which partial
//!    products are inevitable (Algorithm 1's `Buf_flag` dedup) and lays out
//!    slot/parent/digit tables;
//! 2. **Chained batched GEMM** — one [`batched_gemm`] launch per chain
//!    level computes every inevitable partial product into the level
//!    buffers; the buffer of level `d-2` is the paper's *reuse buffer*
//!    (product of the first cores), the last level holds the decompressed
//!    unique rows;
//! 3. **Pooling** — per-sample sum of its rows (the `EmbeddingBag` sum
//!    semantics), parallel over samples.
//!
//! With [`ForwardStrategy::Naive`] the plan keeps one slot per lookup, so
//! every chain is recomputed — the TT-Rec behaviour the paper's Figure 17
//! uses as its baseline.

use crate::bag::{TtEmbeddingBag, TtWorkspace};
use crate::config::ForwardStrategy;
use crate::plan::LookupPlan;
use el_tensor::batched::{batched_gemm, batched_gemm_seq, GemmBatch};
use el_tensor::gemm::gemm_nn;
use el_tensor::Matrix;
use rayon::prelude::*;

use std::cell::RefCell;

std::thread_local! {
    /// Recycled fused-pooling scratch: the inverted slot -> sample CSR
    /// (`starts`, `cursor`, `samples`) plus one stack-sized product row
    /// (`prod`), so the steady-state forward allocates nothing.
    static FUSED_POOL_SCRATCH: std::cell::RefCell<FusedPoolScratch> =
        RefCell::new(FusedPoolScratch::default());
}

/// Scratch buffers for [`TtEmbeddingBag::fused_pool_into`].
#[derive(Default)]
struct FusedPoolScratch {
    /// CSR row starts of the inverted slot -> sample map (`len = slots+1`).
    starts: Vec<u32>,
    /// Per-slot write cursors while filling `samples`.
    cursor: Vec<u32>,
    /// Sample ids referencing each slot, with multiplicity (`len = lookups`).
    samples: Vec<u32>,
    /// One decompressed embedding row (`len = dim`).
    prod: Vec<f32>,
}

impl TtEmbeddingBag {
    /// Looks up and sum-pools a batch given in CSR form, storing the plan
    /// and partial products in `ws` for the subsequent backward pass.
    ///
    /// Returns a `batch_size x dim` matrix of pooled embeddings.
    pub fn forward(&self, indices: &[u32], offsets: &[u32], ws: &mut TtWorkspace) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(indices, offsets, ws, &mut out);
        out
    }

    /// [`TtEmbeddingBag::forward`] into a caller-owned output matrix.
    ///
    /// `out` is reshaped (and zeroed) in place; together with the recycled
    /// plan and level buffers in `ws` this makes the steady-state forward
    /// pass allocation-free — the training loop passes the same `out` and
    /// `ws` every batch and nothing reallocates once capacities have grown
    /// to the batch shape.
    // CONTRACT: zero-alloc
    pub fn forward_into(
        &self,
        indices: &[u32],
        offsets: &[u32],
        ws: &mut TtWorkspace,
        out: &mut Matrix,
    ) {
        for &i in indices {
            assert!((i as usize) < self.num_rows(), "index {i} out of {} rows", self.num_rows());
        }
        let dedup = self.options.forward == ForwardStrategy::Reuse;
        // Recycle whichever plan object is idle; the builders reuse all of
        // its internal vectors.
        let analysis = crate::timing::probe();
        let mut plan = ws.plan.take().or_else(|| ws.alt_plan.take()).unwrap_or_default();
        // A prefetched plan is used only after verifying it was built from
        // exactly this batch; any miss falls back to the inline build, so
        // overlap cannot change results.
        let prefetched = match &ws.prefetcher {
            Some(pf) => pf.take(&mut plan, indices, offsets, &self.cores.row_dims, dedup),
            None => false,
        };
        if !prefetched {
            if self.options.parallel_analysis {
                plan.par_build_into(
                    indices,
                    offsets,
                    &self.cores.row_dims,
                    dedup,
                    &mut ws.plan_scratch,
                );
            } else {
                plan.build_into(
                    indices,
                    offsets,
                    &self.cores.row_dims,
                    dedup,
                    &mut ws.plan_scratch,
                );
            }
        }
        analysis.accumulate(&mut ws.timers.analysis_ns);

        let fwd = crate::timing::probe();
        if self.options.fused_pooling {
            // Fused path (tensor-side lookup+GEMM fusion): compute levels up
            // to the reuse buffer only, then pool the final chain level
            // directly inside the packed A-panel loader — the `(slots x
            // dim)` last-level buffer is never materialized. The backward
            // pass never reads that buffer either (its deepest chain pass
            // consumes `levels[d-2]`), so training works unchanged.
            let d = self.order();
            self.compute_levels_upto(&plan, &mut ws.levels, &mut ws.batch, d - 1);
            self.fused_pool_into(&plan, &ws.levels, out);
        } else {
            self.compute_levels(&plan, &mut ws.levels, &mut ws.batch);
            self.pool_into(&plan, ws.levels.last().map_or(&[][..], |b| &b[..]), out);
        }
        fwd.accumulate(&mut ws.timers.forward_ns);
        ws.timers.batches += 1;
        ws.plan = Some(plan);
    }

    /// Queues analysis of a *future* batch on the workspace's prefetcher so
    /// it overlaps the current batch's compute (paper §V). A no-op without
    /// an installed prefetcher; returns whether the batch was queued.
    pub fn prefetch_plan(&self, indices: &[u32], offsets: &[u32], ws: &TtWorkspace) -> bool {
        let dedup = self.options.forward == ForwardStrategy::Reuse;
        match &ws.prefetcher {
            Some(pf) => pf.prefetch(
                indices,
                offsets,
                &self.cores.row_dims,
                dedup,
                self.options.parallel_analysis,
            ),
            None => false,
        }
    }

    /// Decompresses individual rows (one lookup per output row, no
    /// pooling). Convenience wrapper used by tests and the cache layer.
    pub fn lookup_rows(&self, indices: &[u32], ws: &mut TtWorkspace) -> Matrix {
        let offsets: Vec<u32> = (0..=indices.len() as u32).collect();
        self.forward(indices, &offsets, ws)
    }

    /// Executes the chained batched GEMMs for `plan` into `bufs`.
    ///
    /// `bufs[t]` receives the level-`t` partial products; `bufs[0]` is left
    /// empty because level 0 aliases core-0 slices directly (no compute is
    /// needed for a single core).
    pub(crate) fn compute_levels(
        &self,
        plan: &LookupPlan,
        bufs: &mut Vec<Vec<f32>>,
        batch: &mut GemmBatch,
    ) {
        self.compute_levels_upto(plan, bufs, batch, self.order());
    }

    /// [`Self::compute_levels`] truncated to the levels `1..end`. The fused
    /// pooling path passes `end = d - 1` so the last chain level — the
    /// decompressed unique rows — is pooled inside the GEMM kernel instead
    /// of being materialized here.
    pub(crate) fn compute_levels_upto(
        &self,
        plan: &LookupPlan,
        bufs: &mut Vec<Vec<f32>>,
        batch: &mut GemmBatch,
        end: usize,
    ) {
        let d = self.order();
        debug_assert!(end <= d);
        bufs.resize_with(d, Vec::new);
        bufs[0].clear();

        for t in 1..end {
            let level = &plan.levels[t];
            let width = self.level_width(t);
            // m/k/n of every GEMM at this level (uniform — the batched
            // contract of cublasGemmBatchedEx).
            let m = self.prod_n(t - 1);
            let k = self.cores.ranks[t];
            let n = self.cores.col_dims[t] * self.cores.ranks[t + 1];

            batch.reset(m, n, k);
            batch.tasks.reserve(level.len());
            let parent_width =
                if t == 1 { self.cores.slice_len(0) } else { self.level_width(t - 1) };
            let slice_t = self.cores.slice_len(t);
            for slot in 0..level.len() {
                let a_off = if t == 1 {
                    // level-0 slot aliases a core-0 slice selected by digit
                    let p = level.parent[slot] as usize;
                    plan.levels[0].digit[p] as usize * parent_width
                } else {
                    level.parent[slot] as usize * parent_width
                };
                let b_off = level.digit[slot] as usize * slice_t;
                batch.push(a_off, b_off, slot * width);
            }

            let (prev, cur) = split_levels(bufs, t);
            // Every slot is written by exactly one beta = 0 task covering
            // its full width, so the buffer needs sizing, not zeroing.
            debug_assert_eq!(m * n, width);
            ensure_len_f32(cur, level.len() * width);
            let a_arena: &[f32] = if t == 1 { &self.cores.cores[0] } else { &prev[..] };
            if self.options.deterministic {
                batched_gemm_seq(batch, a_arena, &self.cores.cores[t], cur);
            } else {
                batched_gemm(batch, a_arena, &self.cores.cores[t], cur);
            }
        }
    }

    /// Fused pooling: sum-pool the *final chain level* straight out of the
    /// GEMM that produces it (paper §III-A taken one step further — the
    /// decompressed unique rows never hit memory).
    ///
    /// Each unique last-level slot's product `P_{d-2}[parent] *
    /// G_{d-1}[digit]` is computed once into a cache-resident scratch row
    /// and immediately scattered into every sample that references the
    /// slot, via an inverted slot -> sample CSR rebuilt per batch from the
    /// plan. Deduplication is preserved (each unique row is decompressed
    /// exactly once, like the materialized path) but the `uniques x dim`
    /// buffer round-trip is gone: the only `dim`-wide traffic is the
    /// accumulation into the output rows themselves. The pass is
    /// sequential — inline scatter trades thread-parallelism for zero
    /// materialization — and therefore deterministic.
    // CONTRACT: zero-alloc
    fn fused_pool_into(&self, plan: &LookupPlan, bufs: &[Vec<f32>], out: &mut Matrix) {
        let d = self.order();
        let t = d - 1;
        let level = &plan.levels[t];
        let u = level.len();
        let m = self.prod_n(t - 1);
        let k = self.cores.ranks[t];
        let n_b = self.cores.col_dims[t] * self.cores.ranks[t + 1];
        let dim = self.dim();
        debug_assert_eq!(m * n_b, dim);
        let parent_width = if t == 1 { self.cores.slice_len(0) } else { self.level_width(t - 1) };
        let slice_t = self.cores.slice_len(t);
        let a_arena: &[f32] = if t == 1 { &self.cores.cores[0] } else { &bufs[t - 1][..] };
        let core_t = &self.cores.cores[t];
        let level0_digits = &plan.levels[0].digit;

        out.reset_zeroed(plan.batch_size, dim);
        let out_rows = out.as_mut_slice();
        FUSED_POOL_SCRATCH.with(|cell| {
            let scr = &mut *cell.borrow_mut();
            // Invert lookup_slot into slot -> referencing samples (with
            // multiplicity): counting sort, O(lookups + slots).
            scr.starts.clear();
            scr.starts.resize(u + 1, 0);
            for &slot in &plan.lookup_slot {
                scr.starts[slot as usize + 1] += 1;
            }
            for i in 0..u {
                scr.starts[i + 1] += scr.starts[i];
            }
            scr.cursor.clear();
            scr.cursor.extend_from_slice(&scr.starts[..u]);
            resize_u32(&mut scr.samples, plan.lookup_slot.len());
            for s in 0..plan.batch_size {
                let lo = plan.sample_offsets[s] as usize;
                let hi = plan.sample_offsets[s + 1] as usize;
                for &slot in &plan.lookup_slot[lo..hi] {
                    let cur = &mut scr.cursor[slot as usize];
                    scr.samples[*cur as usize] = s as u32;
                    *cur += 1;
                }
            }

            resize_f32(&mut scr.prod, dim);
            for slot in 0..u {
                let refs = &scr.samples[scr.starts[slot] as usize..scr.starts[slot + 1] as usize];
                if refs.is_empty() {
                    continue;
                }
                let a_off = if t == 1 {
                    let p = level.parent[slot] as usize;
                    level0_digits[p] as usize * parent_width
                } else {
                    level.parent[slot] as usize * parent_width
                };
                let b_off = level.digit[slot] as usize * slice_t;
                gemm_nn(
                    m,
                    n_b,
                    k,
                    1.0,
                    &a_arena[a_off..a_off + m * k],
                    &core_t[b_off..b_off + slice_t],
                    0.0,
                    &mut scr.prod,
                );
                for &sample in refs {
                    let dst = &mut out_rows[sample as usize * dim..(sample as usize + 1) * dim];
                    for (o, &v) in dst.iter_mut().zip(&scr.prod) {
                        *o += v;
                    }
                }
            }
        });
    }

    /// Sum-pools decompressed rows into per-sample embeddings.
    fn pool_into(&self, plan: &LookupPlan, rows: &[f32], out: &mut Matrix) {
        let n = self.dim();
        out.reset_zeroed(plan.batch_size, n);
        out.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(s, dst)| {
            let lo = plan.sample_offsets[s] as usize;
            let hi = plan.sample_offsets[s + 1] as usize;
            for &slot in &plan.lookup_slot[lo..hi] {
                let src = &rows[slot as usize * n..(slot as usize + 1) * n];
                for (d, v) in dst.iter_mut().zip(src) {
                    *d += v;
                }
            }
        });
    }
}

/// Splits the level buffers at `t`, returning `(&bufs[t-1], &mut bufs[t])`.
fn split_levels(bufs: &mut [Vec<f32>], t: usize) -> (&Vec<f32>, &mut Vec<f32>) {
    let (lo, hi) = bufs.split_at_mut(t);
    (&lo[t - 1], &mut hi[0])
}

/// Sizes a `u32` scratch to exactly `len` elements, recycling capacity.
fn resize_u32(buf: &mut Vec<u32>, len: usize) {
    buf.clear();
    buf.resize(len, 0);
}

/// Sizes an `f32` scratch to exactly `len` elements, recycling capacity.
fn resize_f32(buf: &mut Vec<f32>, len: usize) {
    buf.clear();
    buf.resize(len, 0.0);
}

/// Sizes `buf` to exactly `len` elements without reallocating on shrink;
/// growth within capacity only zero-fills the gap (which the batched GEMM
/// overwrites anyway).
fn ensure_len_f32(buf: &mut Vec<f32>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    } else {
        buf.truncate(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{TtConfig, TtOptions};
    use rand::SeedableRng;

    fn bag(rows: usize, dim: usize, rank: usize, seed: u64) -> TtEmbeddingBag {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        TtEmbeddingBag::new(&TtConfig::new(rows, dim, rank), &mut rng)
    }

    /// Oracle: pool by decompressing each row via the reference chain.
    fn pool_reference(bag: &TtEmbeddingBag, indices: &[u32], offsets: &[u32]) -> Matrix {
        let n = bag.dim();
        let mut out = Matrix::zeros(offsets.len() - 1, n);
        let mut row = vec![0.0f32; n];
        for s in 0..offsets.len() - 1 {
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                bag.cores().reconstruct_row(i as usize, &mut row);
                for (d, v) in out.row_mut(s).iter_mut().zip(&row) {
                    *d += v;
                }
            }
        }
        out
    }

    #[test]
    fn reuse_forward_matches_reference() {
        let bag = bag(60, 8, 4, 1);
        let indices = [3u32, 17, 3, 59, 0, 17, 17];
        let offsets = [0u32, 2, 2, 5, 7];
        let mut ws = TtWorkspace::new();
        let got = bag.forward(&indices, &offsets, &mut ws);
        let want = pool_reference(&bag, &indices, &offsets);
        assert!(got.max_abs_diff(&want) < 1e-5, "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn naive_forward_matches_reuse_forward() {
        let b = bag(100, 16, 8, 2);
        let indices: Vec<u32> = (0..64).map(|i| (i * 7) % 100).collect();
        let offsets: Vec<u32> = (0..=16).map(|s| s * 4).collect();
        let mut ws = TtWorkspace::new();

        let mut naive = bag(100, 16, 8, 2);
        naive.options =
            TtOptions { forward: crate::config::ForwardStrategy::Naive, ..TtOptions::default() };
        let a = b.forward(&indices, &offsets, &mut ws);
        let c = naive.forward(&indices, &offsets, &mut ws);
        assert!(a.max_abs_diff(&c) < 1e-5);
    }

    #[test]
    fn empty_samples_produce_zero_rows() {
        let b = bag(50, 8, 4, 3);
        let mut ws = TtWorkspace::new();
        let out = b.forward(&[7], &[0, 0, 1, 1], &mut ws);
        assert_eq!(out.rows(), 3);
        assert!(out.row(0).iter().all(|&x| x == 0.0));
        assert!(out.row(2).iter().all(|&x| x == 0.0));
        assert!(out.row(1).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn duplicate_indices_add_up() {
        let b = bag(50, 8, 4, 4);
        let mut ws = TtWorkspace::new();
        let once = b.forward(&[11], &[0, 1], &mut ws);
        let thrice = b.forward(&[11, 11, 11], &[0, 3], &mut ws);
        let mut scaled = once.clone();
        scaled.scale(3.0);
        assert!(thrice.max_abs_diff(&scaled) < 1e-5);
    }

    #[test]
    fn lookup_rows_decompresses_each_index() {
        let b = bag(30, 8, 4, 5);
        let mut ws = TtWorkspace::new();
        let rows = b.lookup_rows(&[1, 2, 1], &mut ws);
        assert_eq!(rows.rows(), 3);
        assert_eq!(rows.row(0), rows.row(2));
        let mut expect = vec![0.0f32; 8];
        b.reconstruct_row(2, &mut expect);
        for (a, e) in rows.row(1).iter().zip(&expect) {
            assert!((a - e).abs() < 1e-5);
        }
    }

    #[test]
    fn deterministic_mode_matches_parallel() {
        let mut b = bag(80, 16, 8, 6);
        let indices: Vec<u32> = (0..200).map(|i| (i * 13) % 80).collect();
        let offsets: Vec<u32> = (0..=50).map(|s| s * 4).collect();
        let mut ws = TtWorkspace::new();
        let par = b.forward(&indices, &offsets, &mut ws);
        b.options.deterministic = true;
        let seq = b.forward(&indices, &offsets, &mut ws);
        assert_eq!(par.as_slice(), seq.as_slice());
    }

    #[test]
    fn fused_pooling_matches_materialize_then_pool() {
        // Duplicate lookups, shared digits across samples, empty samples —
        // everything the digit-grouping in fused_pool_into must handle.
        let b = bag(60, 16, 6, 30);
        let mut fused = bag(60, 16, 6, 30);
        fused.options.fused_pooling = true;
        let indices: Vec<u32> = (0..48).map(|i| (i * 11) % 60).collect();
        let mut offsets: Vec<u32> = (0..=12).map(|s| s * 4).collect();
        offsets[3] = offsets[2]; // one empty sample
        let mut ws = TtWorkspace::new();
        let want = b.forward(&indices, &offsets, &mut ws);
        let got = fused.forward(&indices, &offsets, &mut ws);
        assert!(got.max_abs_diff(&want) < 1e-5, "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn fused_pooling_matches_reference_on_order_2_and_4() {
        for (order, rows, dim) in [(2usize, 36, 16), (4, 81, 16)] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(31 + order as u64);
            let cfg = TtConfig::with_order(rows, dim, 6, order);
            let mut b = TtEmbeddingBag::new(&cfg, &mut rng);
            b.options.fused_pooling = true;
            let indices: Vec<u32> = (0..20).map(|i| (i * 7) % rows as u32).collect();
            let offsets: Vec<u32> = (0..=5).map(|s| s * 4).collect();
            let mut ws = TtWorkspace::new();
            let got = b.forward(&indices, &offsets, &mut ws);
            let want = pool_reference(&b, &indices, &offsets);
            assert!(
                got.max_abs_diff(&want) < 1e-5,
                "order {order}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn fused_pooling_forward_supports_backward() {
        // The fused forward skips materializing the last level; backward
        // must still produce the same updated cores as the unfused pipeline.
        let indices: Vec<u32> = (0..30).map(|i| (i * 7) % 40).collect();
        let offsets: Vec<u32> = (0..=6).map(|s| s * 5).collect();
        let run = |fused_pooling: bool| {
            let mut b = bag(40, 8, 4, 32);
            b.options.deterministic = true;
            b.options.fused_pooling = fused_pooling;
            let mut ws = TtWorkspace::new();
            let out = b.forward(&indices, &offsets, &mut ws);
            b.backward_sgd(&out, &mut ws, 0.05);
            b.cores().cores.clone()
        };
        let fused = run(true);
        let plain = run(false);
        for (f, u) in fused.iter().zip(&plain) {
            for (x, y) in f.iter().zip(u) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn fused_pooling_composes_with_naive_forward() {
        let mut b = bag(50, 16, 8, 33);
        b.options.forward = crate::config::ForwardStrategy::Naive;
        b.options.fused_pooling = true;
        let indices: Vec<u32> = (0..24).map(|i| (i * 5) % 50).collect();
        let offsets: Vec<u32> = (0..=6).map(|s| s * 4).collect();
        let mut ws = TtWorkspace::new();
        let got = b.forward(&indices, &offsets, &mut ws);
        let want = pool_reference(&b, &indices, &offsets);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_lookup_panics() {
        let b = bag(10, 4, 2, 7);
        let mut ws = TtWorkspace::new();
        // capacity may exceed 10; logical bound must still reject 10
        let _ = b.forward(&[10], &[0, 1], &mut ws);
    }

    #[test]
    fn four_core_table_forward_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let cfg = TtConfig::with_order(81, 16, 6, 4);
        let b = TtEmbeddingBag::new(&cfg, &mut rng);
        let indices = [0u32, 80, 40, 40, 13];
        let offsets = [0u32, 3, 5];
        let mut ws = TtWorkspace::new();
        let got = b.forward(&indices, &offsets, &mut ws);
        let want = pool_reference(&b, &indices, &offsets);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn order_two_table_forward_matches_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let cfg = TtConfig::with_order(36, 16, 4, 2);
        let b = TtEmbeddingBag::new(&cfg, &mut rng);
        let indices = [0u32, 35, 17];
        let offsets = [0u32, 3];
        let mut ws = TtWorkspace::new();
        let got = b.forward(&indices, &offsets, &mut ws);
        let want = pool_reference(&b, &indices, &offsets);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }
}
