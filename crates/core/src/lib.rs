//! # el-core — the Eff-TT table
//!
//! The primary contribution of *EL-Rec* (SC 2022): a tensor-train
//! compressed embedding table whose kernels are designed around the
//! computation patterns of DLRM embedding primitives.
//!
//! * [`TtEmbeddingBag`] is the drop-in replacement for
//!   `nn.EmbeddingBag(mode="sum")`: CSR `(indices, offsets)` in, pooled
//!   embeddings out, with TT cores as the only trainable state.
//! * Forward uses **two-level intermediate-result reuse** (paper §III-A):
//!   a [`plan::LookupPlan`] deduplicates shared index prefixes (Algorithm
//!   1's pointer preparation) and one batched GEMM per chain level fills
//!   the reuse buffer.
//! * Backward uses **in-advance gradient aggregation** and the **fused
//!   TT-core update** (paper §III-B), cutting chain-rule work from
//!   per-lookup to per-unique-index and eliminating the gradient
//!   round-trip through memory.
//! * Every optimization is individually switchable through [`TtOptions`],
//!   which is how the Figure 14/17/18 ablation benches disable one
//!   technique at a time; `TtOptions::tt_rec_baseline()` reproduces the
//!   TT-Rec comparison point.
//!
//! ```
//! use el_core::{TtConfig, TtEmbeddingBag, TtWorkspace};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! // a 1M-row, dim-64 table compressed to three rank-32 TT cores
//! let mut table = TtEmbeddingBag::new(&TtConfig::new(1_000_000, 64, 32), &mut rng);
//! let mut ws = TtWorkspace::new();
//!
//! // one batch: two samples, multi-hot indices in CSR form
//! let indices = [12u32, 999_999, 12, 7];
//! let offsets = [0u32, 2, 4];
//! let pooled = table.forward(&indices, &offsets, &mut ws);
//! assert_eq!((pooled.rows(), pooled.cols()), (2, 64));
//!
//! // gradient step (here: gradient = output, i.e. shrink the embeddings)
//! table.backward_sgd(&pooled, &mut ws, 0.01);
//! ```

#![forbid(unsafe_code)]

pub mod backward;
pub mod bag;
pub mod config;
pub mod forward;
pub mod inference;
pub mod plan;
pub mod prefetch;
pub mod quantized;
pub mod timing;

pub use bag::{ReuseStats, TtEmbeddingBag, TtWorkspace};
pub use config::{BackwardStrategy, ForwardStrategy, TtConfig, TtOptions};
pub use inference::{InferencePrecision, TtInferenceSession};
pub use plan::{Csr, Level, LookupPlan, PAR_BUILD_CUTOFF};
pub use prefetch::PlanPrefetcher;
pub use quantized::{Bf16EmbeddingBag, QuantizedEmbeddingBag};
pub use timing::{set_timing_enabled, StageTimers};

#[cfg(test)]
mod proptests;
