//! Double-buffered plan prefetching — paper §V's overlap of host-side
//! pointer preparation with device compute, in CPU terms: batch `i+1`'s
//! [`LookupPlan`] is built on the rayon pool while batch `i`'s
//! forward/backward GEMMs run.
//!
//! A [`PlanPrefetcher`] owns one coordinator thread and a small state
//! machine of recycled `Job` buffers (std `mpsc` channels allocate per
//! send, so hand-off goes through a `Mutex`/`Condvar` pair instead — the
//! steady-state prefetch cycle allocates nothing once buffers have grown).
//! The coordinator itself only shepherds jobs; the actual build fans out
//! onto the shared rayon pool through `par_build_into`.
//!
//! Correctness is unconditional: the consumer hands the *actual* batch to
//! [`PlanPrefetcher::take`], which verifies it against the job's private
//! input copy and reports a miss on any difference — the caller then builds
//! inline. A hit returns a plan bit-identical to an inline build, so
//! enabling overlap can never change training results.

use crate::plan::{LookupPlan, PlanScratch};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One analysis job: a private copy of the batch plus the plan being
/// rebuilt. Jobs cycle through the spare pool so their buffers are reused.
#[derive(Default)]
struct Job {
    indices: Vec<u32>,
    offsets: Vec<u32>,
    dims: Vec<usize>,
    dedup: bool,
    parallel: bool,
    plan: LookupPlan,
}

#[derive(Default)]
struct Slots {
    /// Job queued by the consumer, not yet picked up by the coordinator.
    request: Option<Job>,
    /// Finished job awaiting hand-off.
    ready: Option<Job>,
    /// A build panicked; the consumer must observe this as a miss.
    ready_failed: bool,
    /// Recycled job buffers (bounded by the queue depth of two).
    spare: Vec<Job>,
    /// Jobs queued but not yet taken (at most two: one ready, one queued).
    pending: u32,
    shutdown: bool,
}

struct Shared {
    slots: Mutex<Slots>,
    cv: Condvar,
}

fn lock(m: &Mutex<Slots>) -> MutexGuard<'_, Slots> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a>(cv: &Condvar, g: MutexGuard<'a, Slots>) -> MutexGuard<'a, Slots> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// Builds lookup plans one batch ahead of the training loop.
pub struct PlanPrefetcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl Default for PlanPrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanPrefetcher {
    /// Spawns the coordinator thread (builds run on the shared rayon pool).
    pub fn new() -> Self {
        let shared = Arc::new(Shared { slots: Mutex::new(Slots::default()), cv: Condvar::new() });
        let for_worker = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("plan-prefetch".into())
            .spawn(move || worker_loop(&for_worker))
            .expect("spawning the plan prefetch coordinator failed"); // PANIC-OK: startup-only OS failure
        PlanPrefetcher { shared, worker: Some(worker) }
    }

    /// Queues analysis of a future batch. Returns `false` (and queues
    /// nothing) when the queue is full — the consumer will then simply
    /// build that batch inline, so dropping a prefetch is always safe.
    ///
    /// A full queue means `pending >= 2`. An *occupied request slot* with
    /// `pending < 2` is different: the coordinator simply has not claimed
    /// the previous request yet, and will within its next loop turn — so
    /// this call waits that transient out instead of dropping. Dropping
    /// here would desynchronize the caller's prefetch/take FIFO and turn
    /// every later take into a miss that discards a fully built plan.
    pub fn prefetch(
        &self,
        indices: &[u32],
        offsets: &[u32],
        dims: &[usize],
        dedup: bool,
        parallel: bool,
    ) -> bool {
        let mut g = lock(&self.shared.slots);
        loop {
            if g.shutdown || g.pending >= 2 {
                return false;
            }
            if g.request.is_none() {
                break;
            }
            g = wait(&self.shared.cv, g);
        }
        let mut job = g.spare.pop().unwrap_or_default();
        job.indices.clear();
        job.indices.extend_from_slice(indices);
        job.offsets.clear();
        job.offsets.extend_from_slice(offsets);
        job.dims.clear();
        job.dims.extend_from_slice(dims);
        job.dedup = dedup;
        job.parallel = parallel;
        g.request = Some(job);
        g.pending += 1;
        self.shared.cv.notify_all();
        true
    }

    /// Claims the oldest prefetched plan *if* it was built from exactly
    /// `(indices, offsets, dims, dedup)`; on a hit the plan is swapped into
    /// `plan` (the previous contents go back into the recycling pool) and
    /// `true` is returned. Any mismatch, build panic, or empty queue is a
    /// miss: `false`, with `plan` untouched.
    ///
    /// Blocks until the pending build finishes — that wait is the residual
    /// (non-overlapped) analysis cost and is what the stage timers record.
    // CONTRACT: zero-alloc
    pub fn take(
        &self,
        plan: &mut LookupPlan,
        indices: &[u32],
        offsets: &[u32],
        dims: &[usize],
        dedup: bool,
    ) -> bool {
        let mut job = {
            let mut g = lock(&self.shared.slots);
            if g.pending == 0 {
                return false;
            }
            loop {
                if let Some(job) = g.ready.take() {
                    g.pending -= 1;
                    self.shared.cv.notify_all();
                    break job;
                }
                if g.ready_failed {
                    g.ready_failed = false;
                    g.pending -= 1;
                    self.shared.cv.notify_all();
                    return false;
                }
                if g.shutdown {
                    return false;
                }
                g = wait(&self.shared.cv, g);
            }
        };
        let hit = job.dedup == dedup
            && job.dims == dims
            && job.offsets == offsets
            && job.indices == indices;
        if hit {
            std::mem::swap(&mut job.plan, plan);
        }
        lock(&self.shared.slots).spare.push(job);
        hit
    }

    /// Number of queued-but-unclaimed prefetches (0, 1 or 2).
    pub fn pending(&self) -> usize {
        lock(&self.shared.slots).pending as usize
    }
}

impl Drop for PlanPrefetcher {
    fn drop(&mut self) {
        {
            let mut g = lock(&self.shared.slots);
            g.shutdown = true;
            self.shared.cv.notify_all();
        }
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = PlanScratch::default();
    loop {
        // Wait for a job.
        let mut job = {
            let mut g = lock(&shared.slots);
            loop {
                if g.shutdown {
                    return;
                }
                if let Some(job) = g.request.take() {
                    // A producer may be waiting for the request slot.
                    shared.cv.notify_all();
                    break job;
                }
                g = wait(&shared.cv, g);
            }
        };
        // Build outside the lock; the parallel builder fans out onto the
        // rayon pool. A panic (e.g. an out-of-capacity index) is converted
        // into a miss — the consumer's inline rebuild will then surface the
        // same panic with its proper message on the training thread.
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if job.parallel {
                job.plan.par_build_into(
                    &job.indices,
                    &job.offsets,
                    &job.dims,
                    job.dedup,
                    &mut scratch,
                );
            } else {
                job.plan.build_into(&job.indices, &job.offsets, &job.dims, job.dedup, &mut scratch);
            }
        }))
        .is_ok();
        // Publish once the hand-off slot is free.
        let mut g = lock(&shared.slots);
        while g.ready.is_some() || g.ready_failed {
            if g.shutdown {
                return;
            }
            g = wait(&shared.cv, g);
        }
        if built {
            g.ready = Some(job);
        } else {
            g.ready_failed = true;
            g.spare.push(job);
        }
        shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize, rows: u32, shift: u64) -> (Vec<u32>, Vec<u32>) {
        let indices: Vec<u32> =
            (0..n).map(|i| ((i as u64 * 48271 + shift) % rows as u64) as u32).collect();
        (indices, vec![0, (n / 2) as u32, n as u32])
    }

    #[test]
    fn prefetched_plan_is_bit_identical_to_inline_build() {
        let pf = PlanPrefetcher::new();
        let dims = vec![8usize, 8, 8];
        let (indices, offsets) = batch(6000, 500, 0);
        assert!(pf.prefetch(&indices, &offsets, &dims, true, true));
        let mut got = LookupPlan::default();
        assert!(pf.take(&mut got, &indices, &offsets, &dims, true));
        let want = LookupPlan::build(&indices, &offsets, &dims, true);
        crate::plan::assert_plans_identical(&want, &got);
        assert_eq!(pf.pending(), 0);
    }

    #[test]
    fn queue_depth_two_pipelines_batches_in_order() {
        let pf = PlanPrefetcher::new();
        let dims = vec![8usize, 8, 8];
        let (i0, o0) = batch(5000, 400, 1);
        let (i1, o1) = batch(5000, 400, 2);
        assert!(pf.prefetch(&i0, &o0, &dims, true, true));
        // Second prefetch may race the coordinator picking up the first; it
        // is allowed to be dropped, in which case we re-queue after taking.
        let queued_second = pf.prefetch(&i1, &o1, &dims, true, true);
        let mut p0 = LookupPlan::default();
        assert!(pf.take(&mut p0, &i0, &o0, &dims, true));
        if !queued_second {
            assert!(pf.prefetch(&i1, &o1, &dims, true, true));
        }
        let mut p1 = LookupPlan::default();
        assert!(pf.take(&mut p1, &i1, &o1, &dims, true));
        crate::plan::assert_plans_identical(&LookupPlan::build(&i0, &o0, &dims, true), &p0);
        crate::plan::assert_plans_identical(&LookupPlan::build(&i1, &o1, &dims, true), &p1);
    }

    #[test]
    fn mismatched_batch_is_a_miss() {
        let pf = PlanPrefetcher::new();
        let dims = vec![8usize, 8, 8];
        let (indices, offsets) = batch(5000, 500, 3);
        assert!(pf.prefetch(&indices, &offsets, &dims, true, true));
        let mut other = indices.clone();
        other[17] ^= 1;
        let mut plan = LookupPlan::default();
        assert!(!pf.take(&mut plan, &other, &offsets, &dims, true));
        // dedup flag mismatch is a miss too
        assert!(pf.prefetch(&indices, &offsets, &dims, true, true));
        assert!(!pf.take(&mut plan, &indices, &offsets, &dims, false));
        // and the plan object was left untouched
        assert_eq!(plan.nnz, 0);
    }

    #[test]
    fn worker_panic_surfaces_as_miss_not_hang() {
        let pf = PlanPrefetcher::new();
        let dims = vec![2usize, 2, 2];
        let indices = vec![9u32; 5000]; // exceeds capacity 8
        let offsets = vec![0u32, 5000];
        assert!(pf.prefetch(&indices, &offsets, &dims, true, true));
        let mut plan = LookupPlan::default();
        assert!(!pf.take(&mut plan, &indices, &offsets, &dims, true));
        // prefetcher keeps working after a failed build
        let (good_i, good_o) = batch(4096, 8, 0);
        assert!(pf.prefetch(&good_i, &good_o, &dims, true, true));
        assert!(pf.take(&mut plan, &good_i, &good_o, &dims, true));
    }

    #[test]
    fn take_without_prefetch_returns_immediately() {
        let pf = PlanPrefetcher::new();
        let mut plan = LookupPlan::default();
        assert!(!pf.take(&mut plan, &[1], &[0, 1], &[2, 2, 2], true));
    }
}
