//! The Eff-TT embedding bag — EL-Rec's drop-in replacement for
//! `nn.EmbeddingBag`.
//!
//! [`TtEmbeddingBag`] owns the TT cores of one compressed embedding table
//! and exposes the same CSR `(indices, offsets)` lookup interface as the
//! PyTorch API it replaces (sum pooling). The forward and backward kernels
//! live in [`crate::forward`] and [`crate::backward`]; this module holds the
//! type, its construction and shared plumbing.

use crate::config::{TtConfig, TtOptions};
use crate::plan::{LookupPlan, PlanScratch};
use crate::prefetch::PlanPrefetcher;
use crate::timing::StageTimers;
use el_tensor::batched::{GemmBatch, GemmTask};
use el_tensor::tt::TtCores;
use rand::Rng;

/// Reusable scratch space for Eff-TT kernels.
///
/// Holds the lookup plan and the per-level partial-product buffers (the
/// *reuse buffer* of paper §III-A plus its gradient twin). Reusing one
/// workspace across batches avoids reallocation on the training hot loop.
#[derive(Default)]
pub struct TtWorkspace {
    /// Plan of the most recent forward pass.
    pub(crate) plan: Option<LookupPlan>,
    /// Spare plan cycled with `plan` when backward re-analyzes under a
    /// different dedup setting; keeping both retains their capacity.
    pub(crate) alt_plan: Option<LookupPlan>,
    /// Sort/cursor scratch for plan construction.
    pub(crate) plan_scratch: PlanScratch,
    /// Index reconstruction scratch for backward plan rebuilds.
    pub(crate) index_scratch: Vec<u32>,
    /// Task list reused by every chained-GEMM launch.
    pub(crate) batch: GemmBatch,
    /// Partial products per level; `levels[0]` stays empty (level 0 aliases
    /// core 0 slices).
    pub(crate) levels: Vec<Vec<f32>>,
    /// Gradient buffers per level.
    pub(crate) dlevels: Vec<Vec<f32>>,
    /// Core-gradient arenas for the unfused-update path.
    pub(crate) grads: Vec<Vec<f32>>,
    /// Overlapped-analysis prefetcher; `None` keeps analysis inline.
    pub(crate) prefetcher: Option<PlanPrefetcher>,
    /// Cumulative analysis/forward/backward wall time.
    pub(crate) timers: StageTimers,
}

impl TtWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a [`PlanPrefetcher`] so batch analysis can overlap compute.
    /// Idempotent; a prefetcher left idle changes nothing — it only acts on
    /// batches queued through [`TtEmbeddingBag::prefetch_plan`].
    pub fn enable_plan_prefetch(&mut self) {
        if self.prefetcher.is_none() {
            self.prefetcher = Some(PlanPrefetcher::new());
        }
    }

    /// Removes the prefetcher (joining its coordinator thread).
    pub fn disable_plan_prefetch(&mut self) {
        self.prefetcher = None;
    }

    /// The installed prefetcher, if overlap is enabled.
    pub fn plan_prefetcher(&self) -> Option<&PlanPrefetcher> {
        self.prefetcher.as_ref()
    }

    /// Cumulative stage timers (analysis vs forward vs backward).
    pub fn stage_timers(&self) -> StageTimers {
        self.timers
    }

    /// Zeroes the stage timers.
    pub fn reset_stage_timers(&mut self) {
        self.timers.reset();
    }

    /// The plan computed by the last forward pass, if any.
    pub fn plan(&self) -> Option<&LookupPlan> {
        self.plan.as_ref()
    }

    /// Core gradients produced by the latest
    /// [`TtEmbeddingBag::backward_grads`] call, one arena per core.
    pub fn grads(&self) -> &[Vec<f32>] {
        &self.grads
    }

    /// Reuse statistics of the last forward pass: how much work the
    /// Eff-TT optimizations removed for that batch.
    pub fn last_stats(&self) -> Option<ReuseStats> {
        let plan = self.plan.as_ref()?;
        let d = plan.levels.len();
        Some(ReuseStats {
            nnz: plan.nnz,
            unique_rows: plan.num_rows(),
            unique_prefixes: if d >= 2 { plan.levels[d - 2].len() } else { plan.num_rows() },
            gemm_tasks: plan.forward_tasks(),
            // without any dedup, every lookup runs d-1 chain GEMMs
            gemm_tasks_naive: plan.nnz * (d - 1),
        })
    }

    /// Bytes currently held by the reuse and gradient buffers.
    pub fn scratch_bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        (self.levels.iter().map(Vec::capacity).sum::<usize>()
            + self.dlevels.iter().map(Vec::capacity).sum::<usize>()
            + self.grads.iter().map(Vec::capacity).sum::<usize>())
            * f
            + self.batch.tasks.capacity() * std::mem::size_of::<GemmTask>()
            + self.index_scratch.capacity() * std::mem::size_of::<u32>()
            + self.plan_scratch.scratch_bytes()
    }
}

/// Work-reduction statistics of one analyzed batch (paper §III-A's reuse
/// and §III-B's aggregation, quantified).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReuseStats {
    /// Total lookups in the batch.
    pub nnz: usize,
    /// Distinct rows (what in-advance aggregation reduces backward work to).
    pub unique_rows: usize,
    /// Distinct reuse-buffer entries (first `d-1` cores' products).
    pub unique_prefixes: usize,
    /// Chain GEMM tasks the plan actually schedules.
    pub gemm_tasks: usize,
    /// Tasks a fully naive per-lookup schedule would run.
    pub gemm_tasks_naive: usize,
}

impl ReuseStats {
    /// Fraction of chain work eliminated by reuse (0 = none).
    pub fn work_saved(&self) -> f64 {
        if self.gemm_tasks_naive == 0 {
            return 0.0;
        }
        1.0 - self.gemm_tasks as f64 / self.gemm_tasks_naive as f64
    }
}

/// A TT-compressed embedding table with EL-Rec's efficient kernels.
pub struct TtEmbeddingBag {
    pub(crate) cores: TtCores,
    /// Logical row count (capacity may be padded above this).
    num_rows: usize,
    /// Kernel selection; public so ablation benches can flip strategies.
    pub options: TtOptions,
}

impl TtEmbeddingBag {
    /// Creates a randomly initialized table from a configuration.
    pub fn new(config: &TtConfig, rng: &mut impl Rng) -> Self {
        let cores = TtCores::random(
            config.row_dims.clone(),
            config.col_dims.clone(),
            config.ranks.clone(),
            config.init_std,
            rng,
        );
        Self { cores, num_rows: config.num_rows, options: TtOptions::default() }
    }

    /// Wraps pre-existing cores (e.g. from TT-SVD of a dense table).
    pub fn from_cores(cores: TtCores, num_rows: usize) -> Self {
        assert!(cores.row_capacity() >= num_rows, "cores cannot address all rows");
        Self { cores, num_rows, options: TtOptions::default() }
    }

    /// Overrides the kernel options (builder style).
    pub fn with_options(mut self, options: TtOptions) -> Self {
        self.options = options;
        self
    }

    /// Logical number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.cores.embedding_dim()
    }

    /// Number of TT cores.
    pub fn order(&self) -> usize {
        self.cores.order()
    }

    /// The underlying cores (read-only).
    pub fn cores(&self) -> &TtCores {
        &self.cores
    }

    /// Mutable access to the cores — used by the data-parallel trainer to
    /// install all-reduced parameters.
    pub fn cores_mut(&mut self) -> &mut TtCores {
        &mut self.cores
    }

    /// Parameter count across cores.
    pub fn param_count(&self) -> usize {
        self.cores.param_count()
    }

    /// Core footprint in bytes (the number Table III compares against the
    /// dense footprint).
    pub fn footprint_bytes(&self) -> usize {
        self.cores.footprint_bytes()
    }

    /// Compression ratio versus the logical dense table.
    pub fn compression_ratio(&self) -> f64 {
        self.cores.compression_ratio(self.num_rows)
    }

    /// Decompresses a single row (reference path; the batched kernels never
    /// call this).
    pub fn reconstruct_row(&self, index: usize, out: &mut [f32]) {
        assert!(index < self.num_rows, "row {index} out of {} rows", self.num_rows);
        self.cores.reconstruct_row(index, out);
    }

    /// `prod_{l<=t} n_l` — row count of the level-`t` partial product.
    #[inline]
    pub(crate) fn prod_n(&self, t: usize) -> usize {
        self.cores.col_dims[..=t].iter().product()
    }

    /// Element width of one slot in the level-`t` buffer.
    #[inline]
    pub(crate) fn level_width(&self, t: usize) -> usize {
        self.prod_n(t) * self.cores.ranks[t + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_from_config() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let bag = TtEmbeddingBag::new(&TtConfig::new(1000, 16, 8), &mut rng);
        assert_eq!(bag.num_rows(), 1000);
        assert_eq!(bag.dim(), 16);
        assert_eq!(bag.order(), 3);
        assert!(bag.compression_ratio() > 1.0);
    }

    #[test]
    fn level_widths_follow_col_dims_and_ranks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let bag = TtEmbeddingBag::new(&TtConfig::new(64, 8, 4), &mut rng);
        let d = bag.order();
        // last level holds full rows
        assert_eq!(bag.level_width(d - 1), bag.dim());
        // level 0 width equals core-0 slice length
        assert_eq!(bag.level_width(0), bag.cores().slice_len(0));
    }

    #[test]
    fn reconstruct_row_respects_logical_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bag = TtEmbeddingBag::new(&TtConfig::new(10, 4, 2), &mut rng);
        let mut row = vec![0.0; 4];
        bag.reconstruct_row(9, &mut row); // fine
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut row = vec![0.0; 4];
            bag.reconstruct_row(10, &mut row); // padded region: rejected
        }));
        assert!(r.is_err());
    }

    #[test]
    fn workspace_reports_scratch() {
        let ws = TtWorkspace::new();
        assert_eq!(ws.scratch_bytes(), 0);
        assert!(ws.plan().is_none());
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::config::TtConfig;
    use rand::SeedableRng;

    #[test]
    fn reuse_stats_quantify_dedup() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let bag = TtEmbeddingBag::new(&TtConfig::new(64, 8, 4), &mut rng);
        let mut ws = TtWorkspace::new();
        // heavy duplication: 8 lookups, 2 distinct rows sharing one prefix
        let _ = bag.forward(&[0, 1, 0, 1, 0, 1, 0, 1], &[0, 8], &mut ws);
        let stats = ws.last_stats().expect("forward ran");
        assert_eq!(stats.nnz, 8);
        assert_eq!(stats.unique_rows, 2);
        assert_eq!(stats.unique_prefixes, 1, "0 and 1 share the depth-2 prefix");
        assert!(stats.gemm_tasks < stats.gemm_tasks_naive);
        assert!(stats.work_saved() > 0.7, "saved {}", stats.work_saved());
    }

    #[test]
    fn stats_absent_before_any_forward() {
        assert!(TtWorkspace::new().last_stats().is_none());
    }
}
