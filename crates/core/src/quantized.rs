//! Quantized embedding tables — the *other* compression direction.
//!
//! The paper's §I splits embedding compression into two families: low-bit
//! quantization (cheap lookups, "training with a quantized embedding table
//! often yields significant accuracy losses") and factorization (TT —
//! negligible accuracy loss, extra compute). To make that comparison
//! runnable, this module provides the quantization family:
//!
//! * [`QuantizedEmbeddingBag`] — int8 rows with per-row scale/zero-point
//!   (4x smaller than f32); training quantizes back after every sparse
//!   update, which is where the accuracy erosion comes from;
//! * [`Bf16EmbeddingBag`] — bfloat16 storage (2x smaller), the milder
//!   variant real systems deploy.
//!
//! The `extra_quantization_vs_tt` bench puts both against the Eff-TT table
//! on footprint and accuracy.

use el_tensor::Matrix;
use rand::Rng;

/// An int8-quantized embedding table with per-row affine parameters.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct QuantizedEmbeddingBag {
    /// Quantized rows, `rows x dim`.
    codes: Vec<i8>,
    /// Per-row scale.
    scales: Vec<f32>,
    /// Per-row zero point (float, asymmetric quantization).
    zeros: Vec<f32>,
    rows: usize,
    dim: usize,
}

impl QuantizedEmbeddingBag {
    /// Quantizes a freshly initialized table.
    pub fn new(rows: usize, dim: usize, scale: f32, rng: &mut impl Rng) -> Self {
        let dense = Matrix::uniform(rows, dim, scale, rng);
        Self::from_dense(&dense)
    }

    /// Quantizes an existing dense table row by row.
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, dim) = (dense.rows(), dense.cols());
        let mut codes = vec![0i8; rows * dim];
        let mut scales = vec![0.0f32; rows];
        let mut zeros = vec![0.0f32; rows];
        for r in 0..rows {
            let row = dense.row(r);
            let (s, z) = row_params(row);
            scales[r] = s;
            zeros[r] = z;
            for (c, &v) in row.iter().enumerate() {
                codes[r * dim + c] = quantize(v, s, z);
            }
        }
        Self { codes, scales, zeros, rows, dim }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Storage footprint in bytes (codes + per-row parameters).
    pub fn footprint_bytes(&self) -> usize {
        self.codes.len() + self.scales.len() * 8
    }

    /// Dequantizes row `r` into `out`.
    pub fn dequantize_row(&self, r: usize, out: &mut [f32]) {
        let (s, z) = (self.scales[r], self.zeros[r]);
        for (o, &q) in out.iter_mut().zip(&self.codes[r * self.dim..(r + 1) * self.dim]) {
            *o = q as f32 * s + z;
        }
    }

    /// Sum-pooled lookup (dequantize + add).
    pub fn forward(&self, indices: &[u32], offsets: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(offsets.len() - 1, self.dim);
        let mut row = vec![0.0f32; self.dim];
        for s in 0..offsets.len() - 1 {
            let dst = out.row_mut(s);
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                self.dequantize_row(i as usize, &mut row);
                for (d, v) in dst.iter_mut().zip(&row) {
                    *d += v;
                }
            }
        }
        out
    }

    /// Sparse SGD step in quantized space: dequantize the touched row,
    /// apply the gradient, re-quantize. The repeated round trip is the
    /// accuracy tax quantized *training* pays (paper §I).
    pub fn backward_sgd(&mut self, indices: &[u32], offsets: &[u32], d_out: &Matrix, lr: f32) {
        let dim = self.dim;
        let mut unique: Vec<u32> = indices.to_vec();
        unique.sort_unstable();
        unique.dedup();
        let mut grads = vec![0.0f32; unique.len() * dim];
        for s in 0..d_out.rows() {
            let g = d_out.row(s);
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                let slot = unique.binary_search(&i).expect("seen"); // PANIC-OK: `unique` built from these indices
                for (v, gv) in grads[slot * dim..(slot + 1) * dim].iter_mut().zip(g) {
                    *v += gv;
                }
            }
        }
        let mut row = vec![0.0f32; dim];
        for (slot, &i) in unique.iter().enumerate() {
            let r = i as usize;
            self.dequantize_row(r, &mut row);
            for (w, g) in row.iter_mut().zip(&grads[slot * dim..(slot + 1) * dim]) {
                *w -= lr * g;
            }
            let (s, z) = row_params(&row);
            self.scales[r] = s;
            self.zeros[r] = z;
            for (c, &v) in row.iter().enumerate() {
                self.codes[r * dim + c] = quantize(v, s, z);
            }
        }
    }
}

pub(crate) fn row_params(row: &[f32]) -> (f32, f32) {
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in row {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return (1e-8, if lo.is_finite() { lo } else { 0.0 });
    }
    // divisor 254 (not 255): the extremes land exactly on codes -127/+127,
    // so a dequantize -> requantize round trip is a fixed point and the
    // scale does not decay across training steps.
    ((hi - lo) / 254.0, (hi + lo) / 2.0)
}

#[inline]
pub(crate) fn quantize(v: f32, s: f32, z: f32) -> i8 {
    ((v - z) / s).round().clamp(-127.0, 127.0) as i8
}

/// bfloat16 helpers: truncate the f32 mantissa to 7 bits (round to nearest
/// even on the dropped bits).
#[inline]
pub fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    let rounding = 0x7fff + ((bits >> 16) & 1);
    ((bits + rounding) >> 16) as u16
}

/// bfloat16 to f32.
#[inline]
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// A bfloat16-storage embedding table (2x smaller than f32; the storage
/// format NVIDIA/Meta deploy for large tables).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Bf16EmbeddingBag {
    data: Vec<u16>,
    rows: usize,
    dim: usize,
}

impl Bf16EmbeddingBag {
    /// A randomly initialized bf16 table.
    pub fn new(rows: usize, dim: usize, scale: f32, rng: &mut impl Rng) -> Self {
        let data = (0..rows * dim).map(|_| f32_to_bf16(rng.gen_range(-scale..=scale))).collect();
        Self { data, rows, dim }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Storage footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.data.len() * 2
    }

    /// Sum-pooled lookup.
    pub fn forward(&self, indices: &[u32], offsets: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(offsets.len() - 1, self.dim);
        for s in 0..offsets.len() - 1 {
            let dst = out.row_mut(s);
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                let row = &self.data[i as usize * self.dim..(i as usize + 1) * self.dim];
                for (d, &q) in dst.iter_mut().zip(row) {
                    *d += bf16_to_f32(q);
                }
            }
        }
        out
    }

    /// Sparse SGD step with bf16 round-tripping.
    pub fn backward_sgd(&mut self, indices: &[u32], offsets: &[u32], d_out: &Matrix, lr: f32) {
        for s in 0..d_out.rows() {
            let g = d_out.row(s);
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                let row = &mut self.data[i as usize * self.dim..(i as usize + 1) * self.dim];
                for (q, gv) in row.iter_mut().zip(g) {
                    *q = f32_to_bf16(bf16_to_f32(*q) - lr * gv);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bf16_round_trip_error_is_bounded() {
        for v in [0.0f32, 1.0, -1.0, 0.1234, -3.5e-3, 1024.5] {
            let r = bf16_to_f32(f32_to_bf16(v));
            assert!((r - v).abs() <= v.abs() / 128.0 + 1e-30, "bf16 error too large: {v} -> {r}");
        }
    }

    #[test]
    fn int8_quantization_error_is_bounded_per_row() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let dense = Matrix::uniform(20, 16, 0.5, &mut rng);
        let q = QuantizedEmbeddingBag::from_dense(&dense);
        let mut row = vec![0.0f32; 16];
        for r in 0..20 {
            q.dequantize_row(r, &mut row);
            for (a, b) in row.iter().zip(dense.row(r)) {
                // one quantization step of a [-0.5, 0.5] row ~ 1/255
                assert!((a - b).abs() < 1.0 / 128.0, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn quantized_forward_approximates_dense() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let dense = Matrix::uniform(30, 8, 0.3, &mut rng);
        let q = QuantizedEmbeddingBag::from_dense(&dense);
        let indices = [1u32, 5, 1, 29];
        let offsets = [0u32, 2, 4];
        let got = q.forward(&indices, &offsets);
        // dense reference
        let mut want = Matrix::zeros(2, 8);
        for s in 0..2 {
            for &i in &indices[offsets[s] as usize..offsets[s + 1] as usize] {
                for (d, v) in want.row_mut(s).iter_mut().zip(dense.row(i as usize)) {
                    *d += v;
                }
            }
        }
        assert!(got.max_abs_diff(&want) < 0.05);
    }

    #[test]
    fn footprints_are_4x_and_2x_smaller() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let q = QuantizedEmbeddingBag::new(1000, 64, 0.1, &mut rng);
        let b = Bf16EmbeddingBag::new(1000, 64, 0.1, &mut rng);
        let dense_bytes = 1000 * 64 * 4;
        assert!(q.footprint_bytes() * 7 < dense_bytes * 2, "int8 ~4x smaller");
        assert_eq!(b.footprint_bytes() * 2, dense_bytes);
    }

    #[test]
    fn quantized_training_moves_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut q = QuantizedEmbeddingBag::new(10, 8, 0.3, &mut rng);
        let before = q.forward(&[3], &[0, 1]);
        let grad = Matrix::full(1, 8, 1.0);
        for _ in 0..5 {
            q.backward_sgd(&[3], &[0, 1], &grad, 0.05);
        }
        let after = q.forward(&[3], &[0, 1]);
        // gradient of +1 should push every coordinate down
        let moved = after.as_slice().iter().zip(before.as_slice()).filter(|(a, b)| a < b).count();
        assert!(moved >= 6, "most coordinates should decrease, moved {moved}");
    }

    #[test]
    fn constant_rows_quantize_safely() {
        let dense = Matrix::full(3, 4, 0.25);
        let q = QuantizedEmbeddingBag::from_dense(&dense);
        let mut row = vec![0.0f32; 4];
        q.dequantize_row(1, &mut row);
        for v in row {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }
}
